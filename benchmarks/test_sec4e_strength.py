"""S4E — §IV-E: generated password strength.

"The average generated password would comprise of roughly 9 lowercase
characters, 9 uppercase characters, 3 numerals, and 11 special
characters. Additionally, the password space is 94^32 or 1.38 × 10^63."
Reproduces both claims — analytically and over a generated sample —
and times the sample generation.
"""

from bench_utils import banner, row

from repro.core.protocol import generate_password
from repro.core.secrets import PhoneSecret
from repro.core.templates import PasswordPolicy
from repro.crypto.randomness import SeededRandomSource
from repro.eval.strength import (
    PAPER_COMPOSITION,
    composition_expectation,
    empirical_composition,
)


def _sample_passwords(count: int) -> list[str]:
    rng = SeededRandomSource(b"strength-bench")
    secret = PhoneSecret.generate(rng)
    return [
        generate_password(
            "user",
            f"site{i}.example",
            rng.token_bytes(32),
            rng.token_bytes(64),
            secret.entry_table,
        )
        for i in range(count)
    ]


def test_sec4e_strength(benchmark):
    passwords = benchmark(_sample_passwords, 100)
    empirical = empirical_composition(passwords)
    expected = composition_expectation()

    banner("§IV-E (reproduced) — Generated Password Strength")
    row("class", "paper", "analytic", "empirical(n=100)")
    for name, paper_value, analytic, measured in (
        ("lowercase", 9, expected.lowercase, empirical.lowercase),
        ("uppercase", 9, expected.uppercase, empirical.uppercase),
        ("numerals", 3, expected.digits, empirical.digits),
        ("special", 11, expected.special, empirical.special),
    ):
        row(name, paper_value, f"{analytic:.2f}", f"{measured:.2f}")
    policy = PasswordPolicy()
    row("password space 94^32", f"{float(policy.password_space()):.3e}")
    row("paper's figure", "1.38e+63")
    row("entropy (bits)", f"{policy.entropy_bits():.1f}")

    assert expected.rounded() == PAPER_COMPOSITION
    assert abs(float(policy.password_space()) - 1.38e63) / 1.38e63 < 0.01
    # Empirical sample tracks the analytic expectation.
    assert abs(empirical.special - expected.special) < 1.2
