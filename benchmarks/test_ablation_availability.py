"""A8 (ablation) — phone availability vs access to accounts (§VIII).

Sweeps the handset's duty cycle and the server's generation timeout,
measuring the fraction of password requests that succeed. Quantifies
the limitation the paper states qualitatively, and shows how much of it
GCM's store-and-forward plus server patience buys back.
"""

from bench_utils import banner

from repro.eval.availability import DutyCycle, run_availability_experiment

SCENARIOS = [
    # (label, duty cycle, generation timeout)
    ("always online", DutyCycle(1.0, 0.0), 10_000.0),
    ("90% / patient", DutyCycle(54_000.0, 6_000.0), 15_000.0),
    ("67% / patient", DutyCycle(8_000.0, 4_000.0), 15_000.0),
    ("67% / impatient", DutyCycle(8_000.0, 4_000.0), 2_000.0),
    ("40% / patient", DutyCycle(8_000.0, 12_000.0), 15_000.0),
    ("8% / patient", DutyCycle(5_000.0, 60_000.0), 15_000.0),
]


def run_all():
    results = []
    for label, duty_cycle, timeout in SCENARIOS:
        report = run_availability_experiment(
            duty_cycle,
            attempts=25,
            attempt_interval_ms=9_000.0,
            generation_timeout_ms=timeout,
            seed=f"a8|{label}",
        )
        results.append((label, report))
    return results


def test_ablation_availability(benchmark):
    results = benchmark(run_all)

    banner("ABLATION A8 — Phone Availability vs Generation Success (§VIII)")
    print(f"  {'scenario':<18s} {'phone avail':>12s} {'server wait':>12s} "
          f"{'success':>9s}")
    for label, report in results:
        print(
            f"  {label:<18s} {100 * report.duty_cycle.availability:>11.0f}% "
            f"{report.generation_timeout_ms / 1000:>10.0f}s "
            f"{100 * report.success_rate:>8.0f}%"
        )

    by_label = dict(results)
    assert by_label["always online"].success_rate == 1.0
    # Patience + store-and-forward masks moderate gaps entirely...
    assert by_label["67% / patient"].success_rate == 1.0
    # ...but not an impatient server...
    assert by_label["67% / impatient"].success_rate < 1.0
    # ...and nothing masks a mostly-dead phone: §VIII's limitation.
    assert by_label["8% / patient"].success_rate < 0.6
    # Success degrades monotonically with availability (patient column).
    patient = [
        by_label["always online"].success_rate,
        by_label["90% / patient"].success_rate,
        by_label["67% / patient"].success_rate,
        by_label["40% / patient"].success_rate,
        by_label["8% / patient"].success_rate,
    ]
    assert all(a >= b for a, b in zip(patient, patient[1:]))
