"""F3 — Figure 3: password-generation latency over Wi-Fi and 4G.

Runs the paper's experiment verbatim: user verification disabled, 100
trials per transport, latency measured from R-handed-to-GCM (t_start)
to password-computed (t_end). Prints mean/σ beside the published
numbers. The timed core is one full simulated generation round trip on
the Wi-Fi profile (simulator wall-time, not the simulated latency).
"""

from bench_utils import banner, row

from repro.eval.latency import PAPER_FIGURE_3, LatencyExperiment
from repro.net.profiles import CELLULAR_4G_PROFILE, WIFI_PROFILE
from repro.testbed import AmnesiaTestbed


def test_fig3_latency(benchmark):
    bed = AmnesiaTestbed(seed="fig3-bench", profile=WIFI_PROFILE)
    browser = bed.enroll("bench", "master-password-1")
    account_id = browser.add_account("bench", "dummy.example.com")

    def one_generation():
        return browser.generate_password(account_id)

    result = benchmark(one_generation)
    assert len(result["password"]) == 32

    banner("FIGURE 3 (reproduced) — Amnesia Latency, 100 trials per transport")
    print(f"  {'transport':<10s} {'paper mean':>12s} {'ours':>9s} "
          f"{'paper std':>11s} {'ours':>9s} {'p5':>8s} {'p95':>8s}")
    for name, profile in (("wifi", WIFI_PROFILE), ("4g", CELLULAR_4G_PROFILE)):
        stats = LatencyExperiment(profile, trials=100, seed=2016).run()
        paper = PAPER_FIGURE_3[name]
        print(
            f"  {name:<10s} {paper['mean_ms']:>10.1f}ms {stats.mean_ms:>7.1f}ms "
            f"{paper['std_ms']:>9.1f}ms {stats.std_ms:>7.1f}ms "
            f"{stats.percentile(5):>6.0f}ms {stats.percentile(95):>6.0f}ms"
        )
        assert abs(stats.mean_ms - paper["mean_ms"]) / paper["mean_ms"] < 0.08
    wifi = LatencyExperiment(WIFI_PROFILE, trials=100, seed=2016).run()
    cellular = LatencyExperiment(CELLULAR_4G_PROFILE, trials=100, seed=2016).run()
    row("shape check: wifi < 4g", wifi.mean_ms < cellular.mean_ms)
    assert wifi.mean_ms < cellular.mean_ms
