"""S3B — §III-B3: the token space.

"Since N = 5000 and each request R yields 16 e_i, there are 5000^16 or
1.53 × 10^59 unique T." Verifies the count and times Algorithm 1 — the
phone-side token computation whose cost the latency model embeds.
"""

from bench_utils import banner, row

from repro.core.params import DEFAULT_PARAMS
from repro.core.protocol import generate_request, generate_token
from repro.core.secrets import PhoneSecret
from repro.crypto.randomness import SeededRandomSource


def test_sec3b_tokenspace(benchmark):
    secret = PhoneSecret.generate(SeededRandomSource(b"tokenspace"))
    request = generate_request("alice", "mail.google.com", b"\x05" * 32)

    token = benchmark(generate_token, request, secret.entry_table)
    assert len(token) == 64

    banner("§III-B3 (reproduced) — Token Space")
    row("entry table size N", DEFAULT_PARAMS.entry_table_size)
    row("segments per request", DEFAULT_PARAMS.token_segments)
    row("token space N^16", f"{float(DEFAULT_PARAMS.token_space):.3e}")
    row("paper's figure", "1.53e+59")
    assert DEFAULT_PARAMS.token_space == 5000**16
    assert abs(float(DEFAULT_PARAMS.token_space) - 1.53e59) / 1.53e59 < 0.01
