"""A3 (ablation) — the attack-surface matrix.

Runs every §IV attack vector against Amnesia *and* every baseline
manager, mechanically reproducing the security comparison Table III
encodes as judgments. The timed core is the full matrix (dictionary
attacks really decrypt vaults; eavesdroppers really compare hashes).
"""

from bench_utils import banner

from repro.attacks.breach import server_breach_attack
from repro.attacks.eavesdrop import https_break_attack, rendezvous_eavesdrop_attack
from repro.attacks.report import attack_matrix
from repro.attacks.theft import client_compromise_attack, phone_theft_attack
from repro.baselines import (
    AmnesiaScheme,
    FirefoxLikeScheme,
    LastPassLikeScheme,
    PlainPasswordScheme,
    PwdHashLikeScheme,
    TapasLikeScheme,
)
from repro.client.user import UserModel

ACCOUNTS = [
    ("alice", "mail.google.com"),
    ("alice2", "www.facebook.com"),
    ("bob", "www.yahoo.com"),
]

ATTACKS = [
    server_breach_attack,
    phone_theft_attack,
    client_compromise_attack,
    https_break_attack,
    rendezvous_eavesdrop_attack,
]


def build_schemes():
    # Weak, dictionary-coverable master passwords: the realistic case the
    # paper's introduction motivates.
    schemes = [
        PlainPasswordScheme(UserModel("u", "", seed=3)),
        FirefoxLikeScheme(master_password="monkey123"),
        LastPassLikeScheme(master_password="Dragon1!"),
        TapasLikeScheme(),
        PwdHashLikeScheme(master_password="sunshine12"),
        AmnesiaScheme(master_password="charlie123"),
    ]
    for scheme in schemes:
        for username, domain in ACCOUNTS:
            scheme.add_account(username, domain)
    return schemes


def test_ablation_attacks(benchmark):
    outcomes = benchmark(lambda: attack_matrix(build_schemes(), ATTACKS))

    banner("ABLATION A3 — Attack Matrix (weak master passwords everywhere)")
    print(f"  {'vector':<22s} {'scheme':<16s} {'recovered':>10s} "
          f"{'MP?':>4s}  status")
    for outcome in outcomes:
        status = "BROKEN" if outcome.compromised else "safe"
        print(
            f"  {outcome.vector:<22s} {outcome.scheme:<16s} "
            f"{outcome.passwords_recovered}/{outcome.total_passwords:<8d} "
            f"{'yes' if outcome.master_password_recovered else 'no':>4s}  {status}"
        )

    by_key = {(o.scheme, o.vector): o for o in outcomes}
    # The paper's headline claims, mechanically:
    # 1. A server breach fully breaks the cloud vault with a weak MP...
    assert by_key[("LastPass", "server-breach")].passwords_recovered == 3
    # 2. ...but yields zero Amnesia passwords even though the same weak
    #    MP falls to the dictionary.
    amnesia_breach = by_key[("Amnesia", "server-breach")]
    assert amnesia_breach.master_password_recovered
    assert amnesia_breach.passwords_recovered == 0
    # 3. Phone theft breaks neither bilateral design.
    assert not by_key[("Amnesia", "phone-theft")].compromised
    assert not by_key[("Tapas", "phone-theft")].compromised
    # 4. Client compromise cracks the local browser vault.
    assert by_key[("Firefox (MP)", "client-compromise")].passwords_recovered == 3
    # 5. Broken HTTPS breaks everyone — Amnesia concedes this (§VI-A).
    for scheme in ("Password", "Firefox (MP)", "LastPass", "Tapas",
                   "PwdHash", "Amnesia"):
        assert by_key[(scheme, "https-break")].passwords_recovered == 3
    # 6. The rendezvous eavesdropper confirms nothing (σ blinding).
    assert "identified 0/3" in by_key[("Amnesia", "rendezvous-eavesdrop")].notes
