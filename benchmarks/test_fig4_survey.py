"""F4 — Figure 4 a–d: user-study survey results.

Prints the four panels (password reuse, length, creation technique,
change frequency) from the encoded dataset and validates each against
the published counts. The timed core is respondent-model synthesis —
drawing a 10k-person population with the published marginals.
"""

from bench_utils import banner

from repro.eval.survey import PAPER_SURVEY, RespondentModel


def _panel(title: str, distribution: dict[str, int]) -> None:
    print(f"\n  ({title})")
    peak = max(distribution.values()) if distribution else 1
    for label, count in distribution.items():
        bar = "#" * int(round(24 * count / peak)) if peak else ""
        print(f"    {label:<14s} {count:>3d}  {bar}")


def test_fig4_survey(benchmark):
    model = RespondentModel(seed=4)
    population = benchmark(model.population, 10_000)
    assert len(population) == 10_000

    banner("FIGURE 4 (reproduced) — Survey Results, n = 31")
    _panel("a) Password Reuse", PAPER_SURVEY.reuse)
    _panel("b) Password Length", PAPER_SURVEY.length)
    _panel("c) Password Creation Techniques", PAPER_SURVEY.technique)
    _panel("d) Password Change Frequency", PAPER_SURVEY.change)

    PAPER_SURVEY.validate()
    # Spot-check the published bars.
    assert PAPER_SURVEY.reuse["Mostly"] == 10
    assert PAPER_SURVEY.length["9~11"] == 16
    assert PAPER_SURVEY.technique["Personal Info"] == 20
    assert PAPER_SURVEY.change["Rarely"] == 14
    # Synthesised population tracks the published marginals.
    mostly = sum(1 for r in population if r.reuse == "Mostly")
    assert abs(mostly / 10_000 - 10 / 31) < 0.03
