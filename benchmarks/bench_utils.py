"""Shared helpers for the reproduction benchmarks (imported by each bench).

Every benchmark regenerates one of the paper's tables or figures and
prints it (run with ``-s`` to see the artefacts inline; the printed
rows also land in the captured-output section of failing runs). The
``benchmark`` fixture times the computational core of each experiment.
"""

from __future__ import annotations


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def row(label: str, *values: object) -> None:
    rendered = "  ".join(f"{v}" for v in values)
    print(f"  {label:<44s} {rendered}")
