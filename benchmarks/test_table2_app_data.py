"""T2 — Table II: application-side data layout.

Recreates the phone's ``Kp`` store — the 512-bit ``P_id`` plus the
N = 5000 table of 256-bit entries — and prints it in the paper's shape.
The timed core is a fresh application install (generating and persisting
the full entry table), the dominant phone-side setup cost.
"""

from bench_utils import banner, row

from repro.eval.tables import render_table_ii
from repro.phone.app import AmnesiaApp
from repro.phone.device import PhoneDevice
from repro.testbed import AmnesiaTestbed


def test_table2_app_data(benchmark):
    bed = AmnesiaTestbed(seed="table-2")

    def install_fresh() -> AmnesiaApp:
        bed.phone.install()
        return bed.phone

    app = benchmark(install_fresh)

    banner("TABLE II (reproduced) — Application Side Data")
    print(render_table_ii(app.database))
    row("entry count N", app.database.entry_count())
    row("entry size (bits)", len(app.database.entry(0)) * 8)
    row("P_id size (bits)", len(app.database.pid()) * 8)

    assert app.database.entry_count() == 5000
    assert len(app.database.pid()) == 64
    assert len(app.database.entry(4999)) == 32
