"""A7 (ablation) — cracking-model sweep over human vs generated corpora.

§IV-E argues generated passwords defeat dictionary attacks; §IX cites
Markov [4] and PCFG [3] cracking as the state of the art those attacks
build on. This ablation runs all three attacker models — raw dictionary
scan, Markov-ordered dictionary, and a PCFG guess stream — against a
human-habit corpus and an Amnesia-generated corpus, measuring the
fraction recovered within a guess budget.
"""

from bench_utils import banner

from repro.analysis.markov import CharMarkovModel
from repro.analysis.pcfg import PcfgModel
from repro.attacks.dictionary import candidate_dictionary
from repro.core.protocol import generate_password
from repro.core.secrets import PhoneSecret
from repro.crypto.randomness import SeededRandomSource
from repro.eval.habits import survey_population_users

GUESS_BUDGET = 20_000
TARGETS = 60


def build_corpora():
    users = survey_population_users(population=TARGETS, seed=77)
    human = [user.password_for("target.example") for user in users]
    rng = SeededRandomSource(b"cracking-ablation")
    secret = PhoneSecret.generate(rng)
    generated = [
        generate_password(
            f"user{i}", "target.example", rng.token_bytes(32),
            rng.token_bytes(64), secret.entry_table,
        )
        for i in range(TARGETS)
    ]
    return human, generated


def crack_rates():
    human, generated = build_corpora()
    training = list(candidate_dictionary())

    raw_guesses = set(training[:GUESS_BUDGET])
    markov = CharMarkovModel(order=2).train(training)
    from repro.analysis.markov import rank_candidates

    markov_guesses = set(rank_candidates(markov, training)[:GUESS_BUDGET])
    pcfg = PcfgModel().train(training)
    pcfg_guesses = set(pcfg.guesses(GUESS_BUDGET))

    def rate(corpus, guesses):
        return sum(1 for password in corpus if password in guesses) / len(corpus)

    return {
        ("dictionary", "human"): rate(human, raw_guesses),
        ("dictionary", "amnesia"): rate(generated, raw_guesses),
        ("markov-ordered", "human"): rate(human, markov_guesses),
        ("markov-ordered", "amnesia"): rate(generated, markov_guesses),
        ("pcfg", "human"): rate(human, pcfg_guesses),
        ("pcfg", "amnesia"): rate(generated, pcfg_guesses),
    }


def test_ablation_cracking(benchmark):
    rates = benchmark(crack_rates)

    banner(
        f"ABLATION A7 — Cracking Models, {GUESS_BUDGET} guesses, "
        f"{TARGETS} targets each"
    )
    print(f"  {'attacker model':<18s} {'human corpus':>13s} "
          f"{'amnesia corpus':>15s}")
    for model in ("dictionary", "markov-ordered", "pcfg"):
        print(
            f"  {model:<18s} {100 * rates[(model, 'human')]:>12.1f}% "
            f"{100 * rates[(model, 'amnesia')]:>14.1f}%"
        )

    # Human passwords fall to every model...
    assert rates[("dictionary", "human")] > 0.9
    assert rates[("markov-ordered", "human")] > 0.9
    assert rates[("pcfg", "human")] > 0.5
    # ...while not a single generated password falls to any of them.
    for model in ("dictionary", "markov-ordered", "pcfg"):
        assert rates[(model, "amnesia")] == 0.0
