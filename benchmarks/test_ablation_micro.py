"""A4 (ablation) — protocol micro-benchmarks and the §VIII bottleneck.

§VIII worries that "Amnesia's architecture forces the server to compute
a hash in order to generate the final password, which may be a
bottleneck". This bench times each derivation stage (R, T, p, P) in
isolation and then measures how the 10-thread pool behaves when many
browser generations block on phones concurrently — the actual
serialisation point of the design.
"""

import time

from bench_utils import banner, row

from repro.core.protocol import (
    generate_request,
    generate_token,
    intermediate_value,
    render_password,
)
from repro.core.secrets import PhoneSecret
from repro.crypto.randomness import SeededRandomSource
from repro.sim.latency import Constant
from repro.testbed import AmnesiaTestbed
from repro.web.http import HttpRequest


def _stage_timings() -> dict[str, float]:
    rng = SeededRandomSource(b"micro")
    secret = PhoneSecret.generate(rng)
    oid, seed = rng.token_bytes(64), rng.token_bytes(32)
    iterations = 2_000
    stages: dict[str, float] = {}

    start = time.perf_counter()
    for i in range(iterations):
        request = generate_request("user", f"site{i}.example", seed)
    stages["R = H(u||d||sigma)"] = time.perf_counter() - start

    request = generate_request("user", "site.example", seed)
    start = time.perf_counter()
    for __ in range(iterations):
        token = generate_token(request, secret.entry_table)
    stages["T = Algorithm 1"] = time.perf_counter() - start

    token = generate_token(request, secret.entry_table)
    start = time.perf_counter()
    for __ in range(iterations):
        intermediate = intermediate_value(token, oid, seed)
    stages["p = H(T||Oid||sigma)"] = time.perf_counter() - start

    intermediate = intermediate_value(token, oid, seed)
    start = time.perf_counter()
    for __ in range(iterations):
        render_password(intermediate)
    stages["P = template(p)"] = time.perf_counter() - start
    return {name: seconds / iterations * 1e6 for name, seconds in stages.items()}


def test_ablation_micro(benchmark):
    stages = benchmark(_stage_timings)

    banner("ABLATION A4 — Derivation Stage Cost (wall-clock per call)")
    for name, micros in stages.items():
        row(name, f"{micros:8.1f} us")
    # The server-side hash (§VIII's worry) is microseconds — three orders
    # of magnitude below the ~800 ms network pipeline.
    assert stages["p = H(T||Oid||sigma)"] < 1_000
    assert stages["P = template(p)"] < 2_000

    # Thread-pool serialisation on CPU-bound requests: 10 concurrent
    # /accounts requests, each costing 50 ms of server compute.
    completion = {}
    for pool_size in (1, 10):
        bed = AmnesiaTestbed(
            seed=f"pool-{pool_size}",
            thread_pool_size=pool_size,
            server_compute=Constant(50.0),
        )
        bed._laptop_stack.retry_timeout_ms = 60_000  # no client aborts
        browser = bed.enroll("alice", "master-password-1")
        done = []
        for __ in range(10):
            browser.http.send(
                HttpRequest("GET", "/accounts"),
                lambda r: done.append(bed.kernel.now),
            )
        start = bed.kernel.now
        bed.drive_until(lambda: len(done) == 10)
        completion[pool_size] = bed.kernel.now - start

    banner("ABLATION A4 — Thread-Pool Serialisation (10 concurrent requests)")
    row("pool = 1 thread (ms)", f"{completion[1]:.0f}")
    row("pool = 10 threads, paper (ms)", f"{completion[10]:.0f}")
    # A single thread serialises ten 50 ms computations (~500 ms); the
    # paper's ten threads overlap them.
    assert completion[1] > completion[10] * 4

    # Blocking-generation saturation: generations HOLD a pool thread while
    # waiting for the phone (CherryPy semantics), and the phone's /token
    # arrives on the same pool. With pool = 1, the token can never be
    # serviced and every generation dies at the server timeout — a
    # deadlock-until-timeout hazard the paper's 10-thread pool merely makes
    # unlikely, not impossible.
    verdicts = {}
    for pool_size in (1, 10):
        bed = AmnesiaTestbed(
            seed=f"saturate-{pool_size}",
            thread_pool_size=pool_size,
            generation_timeout_ms=3_000,
        )
        bed._laptop_stack.retry_timeout_ms = 60_000
        bed.phone.stack.retry_timeout_ms = 60_000
        browser = bed.enroll("alice", "master-password-1")
        ids = [browser.add_account("alice", f"s{i}.com") for i in range(2)]
        statuses = []
        for account_id in ids:
            browser.http.send(
                HttpRequest.json_request(
                    "POST", f"/accounts/{account_id}/generate", {}
                ),
                lambda r: statuses.append(r.status),
            )
        bed.drive_until(lambda: len(statuses) == 2)
        verdicts[pool_size] = sorted(statuses)

    banner("ABLATION A4 — Blocking-Generation Saturation (2 concurrent)")
    row("pool = 1: statuses", verdicts[1])
    row("pool = 10: statuses", verdicts[10])
    assert verdicts[1] == [503, 503]  # deadlocked until timeout
    assert verdicts[10] == [200, 200]
