"""S7b (extension) — measuring the uplift §VII-C only asserts.

"By using Amnesia, most people (27 out of 31) believe that they would
be increasing the security of their passwords." This bench *measures*
it: a 31-user population with the survey's habit marginals, attacked
with the same dictionary, before and after Amnesia.
"""

from bench_utils import banner, row

from repro.eval.habits import (
    measure_amnesia,
    measure_human_habits,
    survey_population_users,
)

POPULATION = 31
SITES = 8


def run_comparison():
    users = survey_population_users(population=POPULATION, seed=2016)
    human = measure_human_habits(users, sites_per_user=SITES)
    amnesia = measure_amnesia(population=POPULATION, sites_per_user=SITES,
                              seed=2016)
    return human, amnesia


def test_sec7_security_uplift(benchmark):
    human, amnesia = benchmark(run_comparison)

    banner("§VII-C (extension) — Measured Security Uplift, n = 31 x 8 sites")
    row("metric", "human habits", "with Amnesia")
    row("dictionary crack rate",
        f"{100 * human.dictionary_crack_rate:.1f}%",
        f"{100 * amnesia.dictionary_crack_rate:.1f}%")
    row("blast radius per cracked pw",
        f"{human.mean_blast_radius:.2f}", f"{amnesia.mean_blast_radius:.2f}")
    row("mean length", f"{human.mean_length:.1f}", f"{amnesia.mean_length:.1f}")
    row("mean entropy estimate (bits)",
        f"{human.mean_entropy_bits:.0f}", f"{amnesia.mean_entropy_bits:.0f}")

    # The belief holds, measurably:
    assert human.dictionary_crack_rate > 0.9
    assert amnesia.dictionary_crack_rate == 0.0
    assert human.mean_blast_radius > 1.5
    assert amnesia.mean_blast_radius == 0.0
    assert amnesia.mean_entropy_bits > 2 * human.mean_entropy_bits
