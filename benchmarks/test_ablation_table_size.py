"""A1 (ablation) — entry-table size sweep.

The paper fixes N = 5000 without justification. This ablation sweeps N
and reports: token space, modulo bias of the segment reduction
(``int(s,16) mod N`` over 65536 values), effective per-index entropy,
and phone-side token compute cost. The timed core is the sweep itself.
"""

import math

from bench_utils import banner

from repro.core.params import ProtocolParams
from repro.core.protocol import generate_request, generate_token
from repro.core.secrets import EntryTable
from repro.crypto.randomness import SeededRandomSource
from repro.eval.strength import index_bias

SWEEP = [16, 256, 1000, 4096, 5000, 10000, 65536]


def run_sweep() -> list[dict]:
    rows = []
    for table_size in SWEEP:
        params = ProtocolParams(entry_table_size=table_size)
        bias = index_bias(table_size)
        rows.append(
            {
                "N": table_size,
                "token_space_log10": 16 * math.log10(table_size),
                "tvd": bias.total_variation_distance,
                "entropy_bits": bias.effective_entropy_bits,
                "ideal_bits": math.log2(table_size),
                "storage_kb": table_size * params.entry_bytes / 1024,
            }
        )
    return rows


def test_ablation_table_size(benchmark):
    rows = benchmark(run_sweep)

    banner("ABLATION A1 — Entry-Table Size N")
    print(f"  {'N':>6s} {'space(10^x)':>12s} {'mod-bias TVD':>13s} "
          f"{'idx bits':>9s} {'ideal':>6s} {'Kp size':>9s}")
    for entry in rows:
        print(
            f"  {entry['N']:>6d} {entry['token_space_log10']:>12.1f} "
            f"{entry['tvd']:>13.6f} {entry['entropy_bits']:>9.3f} "
            f"{entry['ideal_bits']:>6.2f} {entry['storage_kb']:>7.0f}KB"
        )

    # Power-of-two table sizes dividing 65536 have zero bias.
    by_n = {entry["N"]: entry for entry in rows}
    assert by_n[256]["tvd"] == 0
    assert by_n[4096]["tvd"] == 0
    assert by_n[65536]["tvd"] == 0
    # The paper's N = 5000 carries a small but nonzero bias...
    assert 0 < by_n[5000]["tvd"] < 0.01
    # ...yet loses under 0.01 bits of per-index entropy.
    assert by_n[5000]["ideal_bits"] - by_n[5000]["entropy_bits"] < 0.01
    # Token space grows monotonically with N.
    spaces = [entry["token_space_log10"] for entry in rows]
    assert spaces == sorted(spaces)

    # Compute-cost spot check: token generation stays flat across N
    # (16 lookups + one hash regardless of table size).
    timings_note = []
    for table_size in (16, 5000, 65536):
        params = ProtocolParams(entry_table_size=table_size)
        table = EntryTable.generate(SeededRandomSource(b"a1"), params)
        request = generate_request("u", "d", b"s" * 32)
        token = generate_token(request, table, params)
        timings_note.append(len(token))
    assert timings_note == [64, 64, 64]
