"""T3 — Table III: Bonneau comparative evaluation.

Prints the full 25-property × 5-scheme framework table and runs the
mechanical consistency checks that tie the encoded ratings to the
implemented schemes and attacks. The timed core is the mechanical-check
suite (it executes real attacks against a live Amnesia scheme).
"""

from bench_utils import banner, row

from repro.eval.bonneau import (
    SCHEME_ORDER,
    TABLE_III,
    Rating,
    mechanical_checks,
    render_table_iii,
)


def test_table3_bonneau(benchmark):
    checks = benchmark(mechanical_checks)

    banner("TABLE III (reproduced) — Comparative Evaluation [Bonneau et al.]")
    print(render_table_iii())
    print()
    print("Mechanical consistency checks (encoded rating vs implementation):")
    for check in checks:
        status = "OK " if check.consistent else "FAIL"
        row(
            f"[{status}] {check.property_name}",
            f"encoded={check.encoded.name}",
            check.evidence[:40],
        )

    assert all(check.consistent for check in checks)
    # Paper-stated summary properties:
    fulfilled = {
        scheme: sum(1 for r in TABLE_III[scheme] if r is Rating.FULL)
        for scheme in SCHEME_ORDER
    }
    print()
    row("fully-granted properties per scheme", fulfilled)
    # Amnesia does "comparatively well in both security and deployability":
    security_slice = slice(14, 25)
    amnesia_security = sum(
        1 for r in TABLE_III["Amnesia"][security_slice] if r is not Rating.NO
    )
    password_security = sum(
        1 for r in TABLE_III["Password"][security_slice] if r is not Rating.NO
    )
    assert amnesia_security > password_security
