"""A2 (ablation) — password policy sweep.

§III-B4 lets users shrink the character set and length per site. This
ablation quantifies what those accommodations cost: entropy, password
space, and time-to-exhaust at a trillion guesses per second. The timed
core evaluates the full sweep.
"""

from bench_utils import banner

from repro.attacks.guessing import unthrottled_guessing_estimate
from repro.core.templates import PasswordPolicy

POLICIES = [
    ("paper default (94ch, len 32)", PasswordPolicy()),
    ("no specials (62ch, len 32)", PasswordPolicy.from_classes(special=False)),
    ("full len 16", PasswordPolicy.from_classes(length=16)),
    ("alnum len 16", PasswordPolicy.from_classes(length=16, special=False)),
    ("full len 12", PasswordPolicy.from_classes(length=12)),
    ("digits-only len 8 (PIN-like)",
     PasswordPolicy.from_classes(length=8, lowercase=False, uppercase=False,
                                 special=False)),
]


def run_sweep():
    rows = []
    for label, policy in POLICIES:
        estimate = unthrottled_guessing_estimate(
            float(policy.password_space()), label
        )
        rows.append((label, policy, estimate))
    return rows


def test_ablation_policy(benchmark):
    rows = benchmark(run_sweep)

    banner("ABLATION A2 — Per-Account Policy Cost")
    print(f"  {'policy':<32s} {'entropy':>9s} {'space':>11s} "
          f"{'years @ 1e12/s':>15s}")
    for label, policy, estimate in rows:
        print(
            f"  {label:<32s} {policy.entropy_bits():>7.1f}b "
            f"{estimate.space:>11.2e} {estimate.years_at_1e12_per_s:>15.2e}"
        )

    by_label = {label: (policy, estimate) for label, policy, estimate in rows}
    default_policy, default_estimate = by_label["paper default (94ch, len 32)"]
    pin_policy, pin_estimate = by_label["digits-only len 8 (PIN-like)"]
    # Default is beyond any conceivable guessing budget...
    assert default_estimate.years_at_1e12_per_s > 1e40
    # ...while an 8-digit PIN falls in well under a second.
    assert pin_estimate.years_at_1e12_per_s * 365.25 * 24 * 3600 < 1.0
    # Dropping specials costs about 32 * log2(94/62) ≈ 19 bits.
    no_special, __ = by_label["no specials (62ch, len 32)"]
    assert 18 < default_policy.entropy_bits() - no_special.entropy_bits() < 20
    # Entropy ordering is monotone in the sweep's intent.
    entropies = [policy.entropy_bits() for __, policy, ___ in rows]
    assert entropies == sorted(entropies, reverse=True)
