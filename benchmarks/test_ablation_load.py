"""A6 (ablation) — multi-user load vs the blocking thread pool.

The prototype was never load-tested ("at most used for latency tests
and our user study"); this ablation does it. A population of users
issues generations as a Poisson process while every in-flight
generation *holds* a server thread until its phone answers (§V-A's
CherryPy semantics). Sweeping the offered rate against pool sizes
locates the degradation point the paper's 10-thread default implies.
"""

from bench_utils import banner

from repro.eval.workload import WorkloadSpec, run_workload
from repro.net.profiles import WIFI_PROFILE

SCENARIOS = [
    # (label, users, mean interarrival ms, pool size)
    ("light / pool 10", 3, 6_000.0, 10),
    ("busy / pool 10", 6, 2_000.0, 10),
    ("busy / pool 4", 6, 2_000.0, 4),
    ("busy / pool 2", 6, 2_000.0, 2),
]


def run_all():
    results = []
    for label, users, interarrival, pool_size in SCENARIOS:
        spec = WorkloadSpec(
            users=users,
            accounts_per_user=2,
            duration_ms=60_000.0,
            mean_interarrival_ms=interarrival,
            seed=f"load|{label}",
        )
        result = run_workload(
            spec,
            profile=WIFI_PROFILE,
            thread_pool_size=pool_size,
            generation_timeout_ms=10_000.0,
        )
        results.append((label, result))
    return results


def test_ablation_load(benchmark):
    results = benchmark(run_all)

    banner("ABLATION A6 — Offered Load vs Blocking Thread Pool (Wi-Fi, 60 s)")
    print(f"  {'scenario':<18s} {'rate/s':>7s} {'issued':>7s} {'ok%':>6s} "
          f"{'mean':>8s} {'p95':>8s} {'peak busy':>10s} {'peak q':>7s}")
    for label, result in results:
        print(
            f"  {label:<18s} {result.spec.offered_rate_per_s:>7.2f} "
            f"{result.issued:>7d} {100 * result.completion_rate:>5.1f}% "
            f"{result.latency_mean_ms():>6.0f}ms {result.latency_p95_ms():>6.0f}ms "
            f"{result.pool_peak_busy:>10d} {result.pool_peak_queue:>7d}"
        )

    by_label = dict(results)
    # The paper's 10 threads absorb both the light and busy loads...
    assert by_label["light / pool 10"].completion_rate == 1.0
    assert by_label["busy / pool 10"].completion_rate == 1.0
    # ...while shrinking the pool under the same busy load degrades —
    # blocking generations starve the /token ingress (see A4).
    assert (
        by_label["busy / pool 2"].completion_rate
        < by_label["busy / pool 10"].completion_rate
    )
    # The 2-thread pool visibly saturates.
    assert by_label["busy / pool 2"].pool_peak_busy == 2
