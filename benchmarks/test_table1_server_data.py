"""T1 — Table I: server-side data layout.

Recreates the paper's example (Alice/gmail, Alice2/facebook, Bob/yahoo
under one Amnesia account) on a live server database and prints the
table. The timed core is the server-side state initialisation: user
signup plus three account provisions, the database work behind Table I.
"""

from bench_utils import banner

from repro.eval.tables import render_table_i
from repro.testbed import AmnesiaTestbed


def build_table_i_state() -> AmnesiaTestbed:
    bed = AmnesiaTestbed(seed="table-1")
    browser = bed.enroll("paper-user", "master-password-1")
    browser.add_account("Alice", "mail.google.com")
    browser.add_account("Alice2", "www.facebook.com")
    browser.add_account("Bob", "www.yahoo.com")
    return bed


def test_table1_server_data(benchmark):
    bed = build_table_i_state()
    table = benchmark(render_table_i, bed.server.database, "paper-user")

    banner("TABLE I (reproduced) — Server Side Data")
    print(table)

    user = bed.server.database.user_by_login("paper-user")
    accounts = bed.server.database.accounts_for_user(user.user_id)
    # The layout the paper prescribes:
    assert len(user.oid) == 64  # 512-bit O_id
    assert user.reg_id is not None  # registration id in plaintext
    assert user.pid_hash is not None and len(user.pid_hash) == 32  # H(Pid+salt)
    assert [(a.username, a.domain) for a in accounts] == [
        ("Alice", "mail.google.com"),
        ("Alice2", "www.facebook.com"),
        ("Bob", "www.yahoo.com"),
    ]
    assert all(len(a.seed) == 32 for a in accounts)  # 256-bit seeds
