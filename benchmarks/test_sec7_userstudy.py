"""S7 — §VII: user-study aggregates beyond Figure 4.

Demographics, hours online, account counts, usability percentages and
the Amnesia-preference split — every number the prose quotes, printed
beside the encoded dataset. The timed core is a 20k-respondent
Monte-Carlo of the preference rate (the sensitivity analysis the small
n = 31 pilot study motivates).
"""

from bench_utils import banner, row

from repro.eval.survey import PAPER_SURVEY, RespondentModel


def test_sec7_userstudy(benchmark):
    model = RespondentModel(seed=7)
    rate = benchmark(model.preference_rate, 20_000)

    banner("§VII (reproduced) — User Study Aggregates, n = 31")
    row("participants", PAPER_SURVEY.n)
    row("male / female", f"{PAPER_SURVEY.male} / {PAPER_SURVEY.n - PAPER_SURVEY.male}")
    row("age mean ± std (range)",
        f"{PAPER_SURVEY.age_mean} ± {PAPER_SURVEY.age_std} "
        f"({PAPER_SURVEY.age_min}-{PAPER_SURVEY.age_max})")
    row("hours online/day", PAPER_SURVEY.hours_online)
    row("<=10 accounts / 11-20", f"{PAPER_SURVEY.accounts_10_or_less} / "
        f"{PAPER_SURVEY.accounts_11_to_20}")
    row("believe Amnesia increases security",
        f"{PAPER_SURVEY.believe_amnesia_increases_security}/31")
    row("registration convenient",
        f"{PAPER_SURVEY.registering_convenient_pct():.1f}% (paper: 77.4%)")
    row("adding an account easy",
        f"{PAPER_SURVEY.adding_easy_pct():.1f}% (paper: 83.8%)")
    row("generating a password easy",
        f"{PAPER_SURVEY.generating_easy_pct():.1f}% (paper: 83.8%)")
    row("prefer Amnesia overall",
        f"{PAPER_SURVEY.prefer_amnesia_pct():.1f}% (paper: 70.9%)")
    row("non-PM users preferring Amnesia",
        f"{PAPER_SURVEY.non_pm_prefer_amnesia}/{PAPER_SURVEY.non_pm_users}")
    row("PM users preferring Amnesia",
        f"{PAPER_SURVEY.pm_prefer_amnesia}/{PAPER_SURVEY.pm_users}")
    row("Monte-Carlo preference at n=20k", f"{100 * rate:.1f}%")

    PAPER_SURVEY.validate()
    assert abs(PAPER_SURVEY.prefer_amnesia_pct() - 70.9) < 0.1
    assert abs(PAPER_SURVEY.registering_convenient_pct() - 77.4) < 0.1
    expected_rate = (24 / 31) * (14 / 24) + (7 / 31) * (6 / 7)
    assert abs(rate - expected_rate) < 0.02
