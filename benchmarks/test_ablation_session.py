"""A5 (ablation) — the §VIII session mechanism.

§VIII: "Users would also need to interact with the phone each time they
request a password ... We plan to address these two issues in the
future by including a vault and a session mechanism." This ablation
quantifies what the (implemented) session mechanism buys: phone
interactions and end-to-end latency across a burst of generations for
one account, as a function of the token-session TTL.
"""

from bench_utils import banner

from repro.net.profiles import WIFI_PROFILE
from repro.testbed import AmnesiaTestbed

BURST = 8  # generations for one account within one sitting
TTLS_MS = [0.0, 30_000.0, 300_000.0, 600_000.0]
GAP_MS = 45_000.0  # think-time between generations


def run_burst(ttl_ms: float) -> dict:
    bed = AmnesiaTestbed(
        seed=f"session-ablation-{ttl_ms}",
        profile=WIFI_PROFILE,
        token_session_ttl_ms=ttl_ms,
    )
    browser = bed.enroll("alice", "master-password-1")
    account_id = browser.add_account("alice", "x.com")
    latencies = []
    for __ in range(BURST):
        result = browser.generate_password(account_id)
        latencies.append(float(result["latency_ms"]))
        bed.run(GAP_MS)
    return {
        "ttl_ms": ttl_ms,
        "phone_interactions": bed.phone.answered_requests,
        "session_hits": bed.server.metrics.generations_from_session,
        "mean_latency_ms": sum(latencies) / len(latencies),
    }


def test_ablation_session(benchmark):
    results = benchmark(lambda: [run_burst(ttl) for ttl in TTLS_MS])

    banner("ABLATION A5 — Session Mechanism (8 generations, 45 s apart)")
    print(f"  {'token TTL':>12s} {'phone asks':>11s} {'session hits':>13s} "
          f"{'mean latency':>13s}")
    for entry in results:
        label = "off (paper)" if entry["ttl_ms"] == 0 else f"{entry['ttl_ms']/1000:.0f}s"
        print(
            f"  {label:>12s} {entry['phone_interactions']:>11d} "
            f"{entry['session_hits']:>13d} {entry['mean_latency_ms']:>10.1f}ms"
        )

    by_ttl = {entry["ttl_ms"]: entry for entry in results}
    # Paper behaviour: one phone interaction per generation.
    assert by_ttl[0.0]["phone_interactions"] == BURST
    assert by_ttl[0.0]["session_hits"] == 0
    # 30 s TTL < 45 s gap: every generation still needs the phone.
    assert by_ttl[30_000.0]["phone_interactions"] == BURST
    # 300 s TTL covers ~6 of the 45 s gaps, then expires once mid-burst.
    assert by_ttl[300_000.0]["phone_interactions"] == 2
    assert by_ttl[300_000.0]["session_hits"] == BURST - 2
    # 600 s TTL: a single phone interaction serves the whole burst, and
    # mean latency collapses (7 of 8 generations are ~0 ms).
    assert by_ttl[600_000.0]["phone_interactions"] == 1
    assert by_ttl[600_000.0]["session_hits"] == BURST - 1
    assert (
        by_ttl[600_000.0]["mean_latency_ms"]
        < by_ttl[0.0]["mean_latency_ms"] / 4
    )
