#!/usr/bin/env python3
"""Reproduce Figure 3: password-generation latency over Wi-Fi and 4G.

Runs the paper's experiment — approval notification disabled, 100
trials per transport, latency = t_end - t_start — and prints the
distribution next to the published numbers, plus an ASCII histogram.

Run:  python examples/latency_study.py
"""

from repro.eval.latency import PAPER_FIGURE_3, LatencyExperiment
from repro.net.profiles import CELLULAR_4G_PROFILE, WIFI_PROFILE


def histogram(samples: tuple[float, ...], bins: int = 12, width: int = 40) -> str:
    low, high = min(samples), max(samples)
    step = (high - low) / bins or 1.0
    counts = [0] * bins
    for sample in samples:
        index = min(bins - 1, int((sample - low) / step))
        counts[index] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        label = f"{low + i * step:7.0f}-{low + (i + 1) * step:<6.0f}ms"
        bar = "#" * int(round(width * count / peak))
        lines.append(f"  {label} {bar} {count}")
    return "\n".join(lines)


def main() -> None:
    print("Figure 3 reproduction: 100 password generations per transport\n")
    for name, profile in (("wifi", WIFI_PROFILE), ("4g", CELLULAR_4G_PROFILE)):
        stats = LatencyExperiment(profile, trials=100, seed=2016).run()
        paper = PAPER_FIGURE_3[name]
        print(f"[{name}]")
        print(f"  mean   {stats.mean_ms:7.1f} ms   (paper: {paper['mean_ms']} ms)")
        print(f"  std    {stats.std_ms:7.1f} ms   (paper: {paper['std_ms']} ms)")
        print(f"  median {stats.percentile(50):7.1f} ms")
        print(f"  p5/p95 {stats.percentile(5):7.1f} / "
              f"{stats.percentile(95):7.1f} ms")
        print(histogram(stats.samples_ms))
        print()
    print("Conclusion (paper, §VI-B): Wi-Fi beats 4G by ~200 ms and both")
    print("stay under ~1 s — 'latency is not a big issue'.")


if __name__ == "__main__":
    main()
