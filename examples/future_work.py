#!/usr/bin/env python3
"""The §VIII future-work features, implemented: session + vault.

The paper's limitations section promises "a vault and a session
mechanism in a fully fledged Amnesia system". This example shows both
extensions working — and what they cost/preserve:

- the session mechanism caches the phone's token per account for a TTL,
  so a burst of generations needs ONE phone interaction;
- the vault stores user-chosen passwords encrypted under a key derived
  from the same bilateral intermediate, so *reading* them still needs
  the phone, and a server breach sees only ciphertext.

Run:  python examples/future_work.py
"""

from repro.net.profiles import WIFI_PROFILE
from repro.testbed import AmnesiaTestbed


def main() -> None:
    bed = AmnesiaTestbed(
        seed="future-work",
        profile=WIFI_PROFILE,
        token_session_ttl_ms=300_000.0,  # 5-minute sessions
    )
    browser = bed.enroll("alice", "master-password-1")
    account_id = browser.add_account("alice", "webmail.example.com")

    print("== Session mechanism ==")
    first = browser.generate_password(account_id)
    print(f"first generation : {first['latency_ms']:7.1f} ms "
          f"(full phone round trip)")
    for i in range(3):
        again = browser.generate_password(account_id)
        source = "token session" if again.get("from_session") else "phone"
        print(f"generation {i + 2}     : {again['latency_ms']:7.1f} ms "
              f"({source})")
    print(f"phone interactions total: {bed.phone.answered_requests} "
          "(one served the whole burst)\n")

    print("== Vault for chosen passwords ==")
    legacy_id = browser.add_account("alice", "legacy-bank.example.com")
    browser.vault_store(legacy_id, "my-old-bank-password-1987")
    print("stored a user-chosen password (phone approved the store)")
    blob = bed.server.database.vault_entry(legacy_id)
    print(f"at rest on the server    : {blob[:24].hex()}… "
          f"({len(blob)} bytes of AEAD ciphertext)")
    recovered = browser.vault_retrieve(legacy_id)
    print(f"retrieved via the phone  : {recovered!r}")

    browser.rotate_password(legacy_id)
    print("rotated the account seed -> vault entry invalidated by design")
    try:
        browser.vault_retrieve(legacy_id)
    except Exception as error:  # noqa: BLE001 - demo output
        print(f"retrieval now fails      : {type(error).__name__}: {error}")


if __name__ == "__main__":
    main()
