#!/usr/bin/env python3
"""Attack lab: §IV's five attack vectors against six manager designs.

Every attack executes for real — dictionary attacks decrypt vaults,
eavesdroppers compare hashes — against working implementations of a
plain-password user, Firefox-style local vault, LastPass-style cloud
vault, Tapas-style bilateral retrieval, PwdHash-style generative, and
Amnesia. All master passwords are deliberately weak (in-dictionary):
the point of the comparison is what each *architecture* loses when its
human inevitably picks a guessable anchor.

Run:  python examples/attack_lab.py
"""

from repro.attacks import (
    attack_matrix,
    client_compromise_attack,
    https_break_attack,
    online_guessing_attack,
    phone_theft_attack,
    rendezvous_eavesdrop_attack,
    server_breach_attack,
)
from repro.baselines import (
    AmnesiaScheme,
    FirefoxLikeScheme,
    LastPassLikeScheme,
    PlainPasswordScheme,
    PwdHashLikeScheme,
    TapasLikeScheme,
)
from repro.client.user import UserModel
from repro.testbed import AmnesiaTestbed

ACCOUNTS = [
    ("alice", "mail.google.com"),
    ("alice2", "www.facebook.com"),
    ("bob", "www.yahoo.com"),
]


def main() -> None:
    schemes = [
        PlainPasswordScheme(UserModel("victim", "", seed=9)),
        FirefoxLikeScheme(master_password="monkey123"),
        LastPassLikeScheme(master_password="Dragon1!"),
        TapasLikeScheme(),
        PwdHashLikeScheme(master_password="sunshine12"),
        AmnesiaScheme(master_password="charlie123"),
    ]
    for scheme in schemes:
        for username, domain in ACCOUNTS:
            scheme.add_account(username, domain)

    attacks = [
        server_breach_attack,
        phone_theft_attack,
        client_compromise_attack,
        https_break_attack,
        rendezvous_eavesdrop_attack,
    ]
    outcomes = attack_matrix(schemes, attacks)

    print("Attack matrix (3 managed accounts; weak master passwords):\n")
    print(f"{'vector':<22s} {'scheme':<16s} {'pw recovered':>13s} "
          f"{'MP?':>4s}  verdict")
    print("-" * 72)
    for outcome in outcomes:
        verdict = "BROKEN" if outcome.compromised else "safe"
        print(
            f"{outcome.vector:<22s} {outcome.scheme:<16s} "
            f"{outcome.passwords_recovered:>9d}/{outcome.total_passwords} "
            f"{'yes' if outcome.master_password_recovered else 'no':>4s}  "
            f"{verdict}"
        )

    print("\nKey observations (matching §IV):")
    print(" * server breach: cloud vault falls with its weak MP;"
          " Amnesia leaks only metadata — no passwords without T")
    print(" * phone theft: Kp alone is useless (missing O_id, sigma)")
    print(" * broken HTTPS: every design, Amnesia included, leaks the")
    print("   passwords the victim retrieves — the paper concedes this")

    # Live online-guessing demo against the real server's throttle.
    print("\nOnline guessing vs the live Amnesia /login throttle:")
    bed = AmnesiaTestbed(seed="attack-lab")
    browser = bed.new_browser()
    browser.signup("victim", "charlie123")  # weak, in-dictionary
    report = online_guessing_attack(bed, "victim", budget=150)
    print(f"  guesses evaluated by the server : {report.attempts_allowed}")
    print(f"  guesses rejected by the throttle: "
          f"{report.attempts_rejected_by_throttle}")
    print(f"  master password found           : "
          f"{report.master_password_found}")
    print("  (the throttle holds even though the MP is in the dictionary —")
    print("   and even a found MP yields no passwords without the phone)")


if __name__ == "__main__":
    main()
