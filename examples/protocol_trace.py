#!/usr/bin/env python3
"""Trace one password generation as a message sequence chart.

Figure 1 of the paper draws six arrows; this example records the real
(simulated) wire traffic of one generation and renders them — including
the TLS records you'd see on each hop, with sizes and timing.

Run:  python examples/protocol_trace.py
"""

from repro.sim.trace import TraceRecorder, render_sequence_chart
from repro.net.profiles import WIFI_PROFILE
from repro.testbed import AmnesiaTestbed


def main() -> None:
    bed = AmnesiaTestbed(seed="trace-example", profile=WIFI_PROFILE)
    browser = bed.enroll("alice", "master-password-1")
    account_id = browser.add_account("alice", "mail.google.com")
    # Warm up once so the chart shows a steady-state generation (no TLS
    # handshake noise).
    browser.generate_password(account_id)

    with TraceRecorder(bed.network) as recorder:
        result = browser.generate_password(account_id)

    print("One Amnesia password generation (Figure 1, steps 2-6):\n")
    print(
        render_sequence_chart(
            recorder.events,
            participants=["laptop", "amnesia-server", "gcm", "phone"],
            width=17,
        )
    )
    print(f"\nmeasured latency (t_start->t_end): {result['latency_ms']:.1f} ms")
    print("arrows: browser request; R to the rendezvous server; forwarded")
    print("push; the phone's token (direct, the server has a static IP);")
    print("the password back to the browser. Payload bytes are TLS records")
    print("except on the gcm/push hops — exactly the §IV-B exposure.")


if __name__ == "__main__":
    main()
