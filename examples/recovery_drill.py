#!/usr/bin/env python3
"""Recovery drill: both §III-C protocols against a real (dummy) website.

Act 1 — phone compromise: backup Kp to the cloud, "lose" the phone,
recover the old passwords via the server, re-pair a new handset, and
rotate the website password old -> new.

Act 2 — master-password compromise: an attacker knows the MP and holds
a session; the user changes the MP with phone verification, and the
attacker's session and knowledge both die.

Run:  python examples/recovery_drill.py
"""

import base64

from repro.client.website import DummyWebsite
from repro.crypto.randomness import SeededRandomSource
from repro.testbed import AmnesiaTestbed
from repro.util.errors import AuthenticationError
from repro.web.http import HttpRequest


def act_one_phone_compromise() -> None:
    print("=== Act 1: phone compromise recovery (§III-C1) ===")
    bed = AmnesiaTestbed(seed="drill-phone")
    browser = bed.enroll("alice", "master-password-1")
    site = DummyWebsite("bank.example", rng=SeededRandomSource(b"bank"))

    account_id = browser.add_account("alice", site.domain)
    old_password = browser.generate_password(account_id)["password"]
    site.register("alice", old_password)
    print(f"  registered at {site.domain} with {old_password[:8]}…")

    # One-time backup, as the app prompts at install.
    cloud = bed.cloud_client_for_phone()
    bed.phone.backup_to_cloud(cloud)
    print("  Kp backed up to the third-party cloud")

    # The phone is stolen. The thief has Kp but — per §IV-D — no Ks, so
    # no passwords. The user fetches the backup on the laptop and
    # uploads it to the Amnesia server.
    blob = bed.fetch_backup_via_browser()
    recovered = browser.recover_phone(base64.b64encode(blob).decode("ascii"))
    print(f"  server verified H(P_id) and regenerated "
          f"{len(recovered)} old password(s); old phone purged")
    assert recovered[0]["password"] == old_password

    # New handset: fresh install => fresh P_id and entry table.
    bed.replace_phone()
    bed.pair_phone(browser, "alice")
    new_password = browser.generate_password(account_id)["password"]
    assert new_password != old_password
    print(f"  new phone paired; passwords re-keyed: {new_password[:8]}…")

    # Reset the site password using the recovered old one.
    site.change_password("alice", old_password, new_password)
    site.login("alice", new_password)
    print("  website rotated to the new password — 2-factor security restored\n")


def act_two_master_password_compromise() -> None:
    print("=== Act 2: master-password compromise recovery (§III-C2) ===")
    bed = AmnesiaTestbed(seed="drill-mp")
    browser = bed.enroll("alice", "stolen-master-pw")

    # The attacker knows the MP and logs in from their own machine.
    attacker = bed.new_browser()
    attacker.login("alice", "stolen-master-pw")
    print("  attacker holds a live session with the stolen MP")

    # The user initiates the change; the phone must confirm with P_id.
    outcome = {}
    browser.http.send(
        HttpRequest.json_request("POST", "/recover/master/start", {}),
        lambda response: outcome.update(response=response),
    )
    bed.run(500)
    pending = bed.phone.pending_approvals()
    print(f"  phone shows confirmation prompt (origin: "
          f"{pending[0].get('origin')})")
    bed.phone.confirm_master_change(pending[0]["pending_id"])
    bed.drive_until(lambda: "response" in outcome)
    browser.complete_master_change("fresh-master-pw-1")
    print("  master password changed after P_id verification")

    # The attacker's session was revoked; the stolen MP is dead.
    try:
        attacker.accounts()
        raise AssertionError("attacker session should be dead")
    except AuthenticationError:
        print("  attacker's session revoked")
    try:
        attacker.login("alice", "stolen-master-pw")
        raise AssertionError("stolen MP should no longer work")
    except AuthenticationError:
        print("  stolen master password no longer authenticates")
    browser.logout()
    browser.login("alice", "fresh-master-pw-1")
    print("  user logs in with the new master password — recovered\n")


if __name__ == "__main__":
    act_one_phone_compromise()
    act_two_master_password_compromise()
