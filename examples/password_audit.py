#!/usr/bin/env python3
"""Audit a user population: habits, crackability, and the Amnesia uplift.

Builds 31 simulated users whose password habits follow the paper's
survey marginals (Figure 4), audits their passwords with the three
attacker models from the literature the paper cites — dictionary,
Markov [4], PCFG [3] — and contrasts the result with Amnesia-generated
passwords for the same accounts.

Run:  python examples/password_audit.py
"""

from repro.analysis import CharMarkovModel, PcfgModel, corpus_stats
from repro.attacks.dictionary import candidate_dictionary
from repro.core.protocol import generate_password
from repro.core.secrets import PhoneSecret
from repro.crypto.randomness import SeededRandomSource
from repro.eval.habits import (
    measure_amnesia,
    measure_human_habits,
    survey_population_users,
)


def main() -> None:
    users = survey_population_users(population=31, seed=41)
    human_passwords = [user.password_for("audited.example") for user in users]
    stats = corpus_stats(human_passwords)

    print("=== Human corpus (31 users, survey-marginal habits) ===")
    print(f"  mean length          : {stats.mean_length:.1f}")
    print(f"  dominant length range: {stats.dominant_length_bucket()} "
          "(survey mode: 9~11)")
    print(f"  distinct fraction    : {stats.distinct_fraction:.2f}")
    print(f"  with special chars   : {100 * stats.with_special:.0f}%")

    training = list(candidate_dictionary())
    markov = CharMarkovModel(order=2).train(training)
    pcfg = PcfgModel().train(training)
    print("\n=== Attacker's view ===")
    sample = human_passwords[:5]
    print(f"  {'password':<16s} {'markov bits':>12s} {'pcfg guess #':>13s}")
    for password in sample:
        guess_number = pcfg.guess_number(password, limit=50_000)
        print(f"  {password:<16s} {markov.strength_bits(password):>10.1f}  "
              f"{guess_number if guess_number else '>50000':>13}")

    rng = SeededRandomSource(b"audit")
    secret = PhoneSecret.generate(rng)
    generated = generate_password(
        "user0", "audited.example", rng.token_bytes(32), rng.token_bytes(64),
        secret.entry_table,
    )
    print(f"\n  amnesia-generated: {generated}")
    print(f"    markov bits : {markov.strength_bits(generated):.1f}")
    print(f"    pcfg        : probability 0 "
          f"(structure never observed in human corpora)")

    print("\n=== Population-level uplift ===")
    human = measure_human_habits(users, sites_per_user=8)
    amnesia = measure_amnesia(population=31, sites_per_user=8, seed=41)
    print(f"  {'metric':<26s} {'human':>9s} {'amnesia':>9s}")
    print(f"  {'dictionary crack rate':<26s} "
          f"{100 * human.dictionary_crack_rate:>8.1f}% "
          f"{100 * amnesia.dictionary_crack_rate:>8.1f}%")
    print(f"  {'blast radius':<26s} {human.mean_blast_radius:>9.2f} "
          f"{amnesia.mean_blast_radius:>9.2f}")
    print(f"  {'est. entropy (bits)':<26s} {human.mean_entropy_bits:>9.0f} "
          f"{amnesia.mean_entropy_bits:>9.0f}")
    print("\n27/31 study participants *believed* Amnesia increases security;")
    print("the audit shows by how much.")


if __name__ == "__main__":
    main()
