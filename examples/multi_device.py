#!/usr/bin/env python3
"""Multi-device session: Amnesia from several computers, user in the loop.

Demonstrates two claims from the paper's introduction:

1. "a user can have access to the password manager on multiple
   computers without installing any software on those computers" —
   three browser profiles share one account and derive identical
   passwords;
2. the phone is a *consent* device — with manual approval, each
   generation waits for the user's tap, and a request the user never
   initiated (the §IV-C rogue-push scenario) can simply be denied.

Run:  python examples/multi_device.py
"""

from repro.phone.app import ApprovalPolicy
from repro.testbed import AmnesiaTestbed
from repro.web.http import HttpRequest


def main() -> None:
    # The server gives a denied/unanswered generation up after 5 s — under
    # the browser's own ~12 s request-abort budget, so the 503 arrives.
    bed = AmnesiaTestbed(
        seed="multi-device", approval=ApprovalPolicy.MANUAL,
        generation_timeout_ms=5_000,
    )
    home = bed.enroll("alice", "one-master-password")
    account_id = home.add_account("alice", "webmail.example.com")

    # Two more computers: just a browser + the master password.
    office = bed.new_browser()
    office.login("alice", "one-master-password")
    library = bed.new_browser()
    library.login("alice", "one-master-password")
    print("three computers logged in; none stores any secret material")

    # Generate from each computer; approve each on the phone.
    passwords = []
    for name, browser in (("home", home), ("office", office),
                          ("library", library)):
        outcome = {}
        browser.http.send(
            HttpRequest.json_request(
                "POST", f"/accounts/{account_id}/generate", {}
            ),
            lambda response: outcome.update(response=response),
        )
        bed.run(500)  # the push reaches the phone
        pending = bed.phone.pending_approvals()
        request = pending[0]
        print(f"[phone] request from origin={request.get('origin')!r} — "
              f"user taps ACCEPT")
        bed.phone.approve(request["pending_id"])
        bed.drive_until(lambda: "response" in outcome)
        password = outcome["response"].json()["password"]
        passwords.append(password)
        print(f"  {name:<8s} received {password[:10]}…")

    assert len(set(passwords)) == 1
    print("all three computers derived the SAME password — no sync needed\n")

    # The rogue-push scenario (§IV-C): a request arrives that the user
    # never initiated (e.g. an attacker who stole Ks replays from a
    # malicious server). The user just denies it.
    rogue = bed.new_browser()
    rogue.login("alice", "one-master-password")  # attacker knows the MP
    outcome = {}
    rogue.http.send(
        HttpRequest.json_request("POST", f"/accounts/{account_id}/generate", {}),
        lambda response: outcome.update(response=response),
    )
    bed.run(500)
    request = bed.phone.pending_approvals()[0]
    print(f"[phone] unexpected request from origin={request.get('origin')!r} "
          f"— user did not initiate this: DENY")
    bed.phone.deny(request["pending_id"])
    bed.drive_until(lambda: "response" in outcome)
    print(f"rogue request got HTTP {outcome['response'].status} "
          f"(timed out waiting for the phone) — no password left the server")


if __name__ == "__main__":
    main()
