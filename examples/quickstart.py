#!/usr/bin/env python3
"""Quickstart: the Figure 1 flow, end to end, in ~30 lines of API.

Stands up a complete simulated deployment (browser, Amnesia server,
GCM-like rendezvous, phone, cloud), enrolls a user, and generates a
website password through the full bilateral pipeline:

    browser -> server --(GCM)--> phone --(token)--> server -> browser

Run:  python examples/quickstart.py
"""

from repro.testbed import AmnesiaTestbed


def main() -> None:
    # One object wires up Figure 1's architecture on a simulated network.
    bed = AmnesiaTestbed(seed="quickstart")

    # Sign up on the web, install the app, pair via the CAPTCHA code.
    browser = bed.enroll("alice", "correct-horse-battery-staple")
    print(f"enrolled: {browser.me()}")

    # Bring a website account under management; the server mints a fresh
    # 256-bit seed (sigma) for it.
    account_id = browser.add_account("alice", "mail.google.com")

    # Generate: the server derives R = H(u||d||sigma), pushes it to the
    # phone via the rendezvous server; the phone runs Algorithm 1 over its
    # 5000-entry table and returns T; the server renders the password.
    result = browser.generate_password(account_id)
    print(f"password for mail.google.com : {result['password']}")
    print(f"pipeline latency             : {result['latency_ms']:.1f} ms (simulated)")

    # Generation is deterministic — the same account yields the same
    # password until its seed rotates.
    again = browser.generate_password(account_id)
    assert again["password"] == result["password"]
    print("regeneration is deterministic: ok")

    # "Changing" the password = rotating sigma on the server.
    browser.rotate_password(account_id)
    rotated = browser.generate_password(account_id)
    assert rotated["password"] != result["password"]
    print(f"after seed rotation          : {rotated['password']}")

    # Per-site policy accommodation (§III-B4): no specials, length 16.
    browser.update_policy(account_id, length=16, classes={"special": False})
    constrained = browser.generate_password(account_id)["password"]
    assert len(constrained) == 16 and constrained.isalnum()
    print(f"policy-constrained (16 alnum): {constrained}")


if __name__ == "__main__":
    main()
