#!/usr/bin/env python3
"""Run Amnesia on a real localhost socket and drive it with raw HTTP.

Unlike the other examples (which run on the discrete-event simulator),
this one binds an actual ``ThreadingHTTPServer`` on 127.0.0.1 — the
same AmnesiaCore the simulation uses, behind real sockets and real
threads, with an in-process phone agent standing in for the Android
app. Everything below also works from a shell against
``amnesia-repro serve``.

Run:  python examples/real_server.py
"""

import http.client
import json

from repro.deploy import RealAmnesiaDeployment


def raw_post(address: str, path: str, payload: dict, cookie: str = "") -> tuple:
    """A deliberately primitive HTTP client — what curl would do."""
    connection = http.client.HTTPConnection(address, timeout=30)
    headers = {"content-type": "application/json"}
    if cookie:
        headers["cookie"] = cookie
    connection.request("POST", path, body=json.dumps(payload), headers=headers)
    response = connection.getresponse()
    body = json.loads(response.read() or b"{}")
    set_cookie = ""
    for name, value in response.getheaders():
        if name.lower() == "set-cookie":
            set_cookie = value.split(";")[0]
    connection.close()
    return response.status, body, set_cookie


def main() -> None:
    with RealAmnesiaDeployment() as deployment:
        address = deployment.address
        print(f"Amnesia server live at http://{address}\n")

        # Sign up with nothing but raw HTTP (no library client).
        status, body, cookie = raw_post(
            address, "/signup",
            {"login": "alice", "master_password": "raw-http-master"},
        )
        print(f"POST /signup            -> {status} {body}")

        # Pair a phone agent the way the app would.
        status, body, __ = raw_post(address, "/pair/start", {}, cookie)
        code = body["code"]
        print(f"POST /pair/start        -> {status} (pairing code {code})")
        agent = deployment.new_phone_agent()
        agent.pair("alice", code)
        print(f"phone agent paired       (reg id {agent.reg_id})")

        # Add an account and generate over the wire. The HTTP request
        # blocks (a real thread, CherryPy-style) until the agent's token
        # comes back through /token.
        status, body, __ = raw_post(
            address, "/accounts",
            {"username": "alice", "domain": "wire.example.com"}, cookie,
        )
        account_id = body["account_id"]
        print(f"POST /accounts          -> {status} (account {account_id})")
        status, body, __ = raw_post(
            address, f"/accounts/{account_id}/generate", {}, cookie,
        )
        print(f"POST /generate          -> {status}")
        print(f"  password              : {body['password']}")
        print(f"  wall-clock latency    : {body['latency_ms']:.1f} ms")
        print(f"  phone pushes answered : {agent.answered}")


if __name__ == "__main__":
    main()
