"""Third-party cloud storage (the Google Drive / Dropbox stand-in).

Phone-compromise recovery depends on a one-time backup of ``Kp`` to "a
third-party cloud provider such as Google Drive or Dropbox" (§III-C1).
The paper trusts both the provider and its channel; we reproduce that
trust shape with a small authenticated blob store served over the same
secure-channel infrastructure as everything else.
"""

from repro.cloud.provider import CloudProvider, CloudClient

__all__ = ["CloudProvider", "CloudClient"]
