"""A minimal authenticated blob store and its client.

Accounts are created out of band (the user "has Dropbox"); each account
holds named blobs. The API is deliberately tiny — put/get/delete/list —
because that is all the backup protocol needs.
"""

from __future__ import annotations

import base64
from typing import Dict

from repro.crypto.randomness import RandomSource
from repro.net.certificates import Certificate
from repro.net.tls import SecureServer, SecureStack
from repro.sim.kernel import Simulator
from repro.util.errors import AuthenticationError, NotFoundError, ValidationError
from repro.web.app import Application, error_response, json_response
from repro.web.http import HttpRequest
from repro.web.server import SimHttpServer
from repro.web.client import SimHttpClient

CLOUD_SERVICE = "cloud-storage"


class CloudProvider:
    """The provider: accounts of named blobs behind bearer tokens."""

    def __init__(
        self,
        stack: SecureStack,
        secure_server: SecureServer,
        kernel: Simulator,
        rng: RandomSource,
    ) -> None:
        self._rng = rng
        self._tokens: Dict[str, str] = {}  # token -> account
        self._blobs: Dict[str, Dict[str, bytes]] = {}  # account -> name -> blob
        self.application = self._build_app()
        self.server = SimHttpServer(
            self.application, stack, secure_server, kernel, service=CLOUD_SERVICE
        )
        self.certificate: Certificate = secure_server.certificate

    def create_account(self, account: str) -> str:
        """Provision an account out of band; returns its bearer token."""
        if account in self._blobs:
            raise ValidationError(f"cloud account {account!r} already exists")
        token = self._rng.token_hex(24)
        self._tokens[token] = account
        self._blobs[account] = {}
        return token

    def _account_for(self, request: HttpRequest) -> str:
        header = request.headers.get("authorization", "")
        if not header.startswith("Bearer "):
            raise AuthenticationError("missing bearer token")
        account = self._tokens.get(header[len("Bearer ") :])
        if account is None:
            raise AuthenticationError("invalid bearer token")
        return account

    def _build_app(self) -> Application:
        app = Application("cloud")
        router = app.router

        @router.put("/blobs/{name}")
        def put_blob(request: HttpRequest, name: str):
            account = self._account_for(request)
            self._blobs[account][name] = request.body
            return json_response({"stored": name, "size": len(request.body)})

        @router.get("/blobs/{name}")
        def get_blob(request: HttpRequest, name: str):
            account = self._account_for(request)
            blob = self._blobs[account].get(name)
            if blob is None:
                raise NotFoundError(f"no blob {name!r}")
            return json_response(
                {"name": name, "data": base64.b64encode(blob).decode("ascii")}
            )

        @router.delete("/blobs/{name}")
        def delete_blob(request: HttpRequest, name: str):
            account = self._account_for(request)
            if name not in self._blobs[account]:
                raise NotFoundError(f"no blob {name!r}")
            del self._blobs[account][name]
            return json_response({"deleted": name})

        @router.get("/blobs")
        def list_blobs(request: HttpRequest):
            account = self._account_for(request)
            return json_response({"names": sorted(self._blobs[account])})

        return app


class CloudClient:
    """Device-side convenience wrapper over the blob-store API."""

    def __init__(self, http: SimHttpClient, token: str) -> None:
        self._http = http
        self._auth = {"authorization": f"Bearer {token}"}

    def put(self, name: str, blob: bytes) -> None:
        response = self._http.put(f"/blobs/{name}", body=blob, headers=self._auth)
        if not response.ok:
            raise ValidationError(f"cloud put failed: {response.json()}")

    def get(self, name: str) -> bytes:
        response = self._http.get(f"/blobs/{name}", headers=self._auth)
        if response.status == 404:
            raise NotFoundError(f"no blob {name!r} in cloud storage")
        if not response.ok:
            raise ValidationError(f"cloud get failed: {response.json()}")
        return base64.b64decode(response.json()["data"])

    def delete(self, name: str) -> None:
        response = self._http.delete(f"/blobs/{name}", headers=self._auth)
        if not response.ok:
            raise ValidationError(f"cloud delete failed: {response.json()}")

    def list(self) -> list[str]:
        response = self._http.get("/blobs", headers=self._auth)
        if not response.ok:
            raise ValidationError(f"cloud list failed: {response.json()}")
        return list(response.json()["names"])
