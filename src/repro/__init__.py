"""Amnesia: a bilateral generative password manager — full reproduction.

This library reproduces Wang, Li & Sun, *"Amnesia: A Bilateral
Generative Password Manager"* (ICDCS 2016): the core bilateral
derivation protocol, the Amnesia web server and mobile application, the
rendezvous (GCM-like) push service, a simulated network with calibrated
Wi-Fi/4G latency, the baseline password managers the paper compares
against, executable attack experiments, and the evaluation harnesses
that regenerate every table and figure.

Quick start::

    from repro.testbed import AmnesiaTestbed

    bed = AmnesiaTestbed(seed=1)
    browser = bed.enroll("alice", "a strong master password")
    account_id = browser.add_account("alice", "mail.example.com")
    print(browser.generate_password(account_id)["password"])

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.core` — the paper's protocol (R, T, p, P derivations)
- :mod:`repro.server` / :mod:`repro.phone` — the two Amnesia components
- :mod:`repro.sim` / :mod:`repro.net` — simulation and network substrate
- :mod:`repro.crypto` — from-scratch crypto toolkit
- :mod:`repro.baselines` / :mod:`repro.attacks` — comparators + attacks
- :mod:`repro.eval` — Tables I-III, Figures 3-4, §IV-E analyses
- :mod:`repro.testbed` — a full deployment in one object
"""

__version__ = "1.0.0"

from repro.core.protocol import (
    generate_request,
    generate_token,
    intermediate_value,
    render_password,
    generate_password,
)
from repro.core.templates import PasswordPolicy
from repro.core.params import ProtocolParams, DEFAULT_PARAMS
from repro.testbed import AmnesiaTestbed

__all__ = [
    "__version__",
    "generate_request",
    "generate_token",
    "intermediate_value",
    "render_password",
    "generate_password",
    "PasswordPolicy",
    "ProtocolParams",
    "DEFAULT_PARAMS",
    "AmnesiaTestbed",
]
