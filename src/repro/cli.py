"""Command-line interface: regenerate any of the paper's artefacts.

Installed as ``amnesia-repro``; also runnable as
``python -m repro.cli``. Each subcommand reproduces one table, figure
or analysis:

    amnesia-repro quickstart          # Figure 1's flow, end to end
    amnesia-repro fig3 [--trials N]   # latency experiment
    amnesia-repro fig4                # survey panels
    amnesia-repro table1|table2|table3
    amnesia-repro strength            # §IV-E composition & spaces
    amnesia-repro attacks             # §IV attack matrix
    amnesia-repro userstudy           # §VII aggregates
    amnesia-repro metrics [--check]   # telemetry registry dump / smoke test
    amnesia-repro stages              # per-stage latency attribution
    amnesia-repro chaos [--check]     # fault-injection resilience suite
    amnesia-repro bench [--check]     # benchmark harness + regression gate
    amnesia-repro cluster [--check]   # sharded fleet: failover round trip
    amnesia-repro slo [--check]       # SLO burn-rate alerting under an outage
    amnesia-repro dash [--check]      # live fleet dashboard over the outage
    amnesia-repro drill [--check]     # disaster-recovery drill: backup/restore
    amnesia-repro workload [--users N --minutes M --rate R]  # open-loop load
    amnesia-repro population [--check]  # 10⁴⁺-user population engine
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict


def _cmd_quickstart(args: argparse.Namespace) -> int:
    from repro.testbed import AmnesiaTestbed

    bed = AmnesiaTestbed(seed=args.seed)
    browser = bed.enroll("alice", "cli-master-password")
    account_id = browser.add_account("alice", "mail.example.com")
    result = browser.generate_password(account_id)
    print("account    : alice @ mail.example.com")
    print(f"password   : {result['password']}")
    print(f"latency    : {result['latency_ms']:.1f} ms (simulated pipeline)")
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.eval.figures import histogram
    from repro.eval.latency import PAPER_FIGURE_3, LatencyExperiment
    from repro.net.profiles import CELLULAR_4G_PROFILE, WIFI_PROFILE

    for name, profile in (("wifi", WIFI_PROFILE), ("4g", CELLULAR_4G_PROFILE)):
        stats = LatencyExperiment(profile, trials=args.trials, seed=args.seed).run()
        paper = PAPER_FIGURE_3[name]
        print(f"[{name}]  mean {stats.mean_ms:.1f} ms (paper {paper['mean_ms']}), "
              f"std {stats.std_ms:.1f} ms (paper {paper['std_ms']}), n={stats.n}")
        print(histogram(stats.samples_ms))
        print()
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.eval.figures import bar_panel
    from repro.eval.survey import PAPER_SURVEY

    PAPER_SURVEY.validate()
    print(bar_panel("(a) Password Reuse", PAPER_SURVEY.reuse))
    print(bar_panel("(b) Password Length", PAPER_SURVEY.length))
    print(bar_panel("(c) Password Creation Techniques", PAPER_SURVEY.technique))
    print(bar_panel("(d) Password Change Frequency", PAPER_SURVEY.change))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.eval.tables import render_table_i
    from repro.testbed import AmnesiaTestbed

    bed = AmnesiaTestbed(seed=args.seed)
    browser = bed.enroll("paper-user", "cli-master-password")
    browser.add_account("Alice", "mail.google.com")
    browser.add_account("Alice2", "www.facebook.com")
    browser.add_account("Bob", "www.yahoo.com")
    print(render_table_i(bed.server.database, "paper-user"))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.eval.tables import render_table_ii
    from repro.testbed import AmnesiaTestbed

    bed = AmnesiaTestbed(seed=args.seed)
    bed.phone.install()
    print(render_table_ii(bed.phone.database))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.eval.bonneau import mechanical_checks, render_table_iii

    print(render_table_iii())
    print()
    print("Mechanical checks against the implementation:")
    failures = 0
    for check in mechanical_checks():
        status = "ok" if check.consistent else "FAIL"
        print(f"  [{status}] {check.scheme}: {check.property_name} "
              f"({check.evidence})")
        failures += 0 if check.consistent else 1
    return 1 if failures else 0


def _cmd_strength(args: argparse.Namespace) -> int:
    from repro.core.params import DEFAULT_PARAMS
    from repro.core.templates import PasswordPolicy
    from repro.eval.strength import composition_expectation, index_bias

    policy = PasswordPolicy()
    composition = composition_expectation(policy)
    print("expected composition (paper: 9 lower / 9 upper / 3 digit / 11 special):")
    print(f"  {composition.lowercase:.2f} / {composition.uppercase:.2f} / "
          f"{composition.digits:.2f} / {composition.special:.2f}")
    print(f"password space : {float(policy.password_space()):.3e} "
          f"(paper: 1.38e63)")
    print(f"entropy        : "
          f"{policy.entropy_bits(DEFAULT_PARAMS.segment_hex_length):.4f} bits exact "
          f"(upper bound {policy.max_entropy_bits():.4f}; the gap is the "
          f"65536 mod {policy.table.size} template bias)")
    print(f"token space    : {float(DEFAULT_PARAMS.token_space):.3e} "
          f"(paper: 1.53e59)")
    bias = index_bias(DEFAULT_PARAMS.entry_table_size)
    print(f"index mod-bias : TVD {bias.total_variation_distance:.6f}, "
          f"{bias.effective_entropy_bits:.3f}/{12.288:.3f} bits")
    return 0


def _cmd_attacks(args: argparse.Namespace) -> int:
    from repro.attacks import (
        attack_matrix,
        client_compromise_attack,
        https_break_attack,
        phone_theft_attack,
        rendezvous_eavesdrop_attack,
        server_breach_attack,
    )
    from repro.baselines import (
        AmnesiaScheme,
        FirefoxLikeScheme,
        LastPassLikeScheme,
        PwdHashLikeScheme,
        TapasLikeScheme,
    )

    schemes = [
        FirefoxLikeScheme(master_password="monkey123"),
        LastPassLikeScheme(master_password="Dragon1!"),
        TapasLikeScheme(),
        PwdHashLikeScheme(master_password="sunshine12"),
        AmnesiaScheme(master_password="charlie123"),
    ]
    for scheme in schemes:
        for username, domain in (
            ("alice", "mail.google.com"),
            ("alice2", "www.facebook.com"),
            ("bob", "www.yahoo.com"),
        ):
            scheme.add_account(username, domain)
    outcomes = attack_matrix(
        schemes,
        [
            server_breach_attack,
            phone_theft_attack,
            client_compromise_attack,
            https_break_attack,
            rendezvous_eavesdrop_attack,
        ],
    )
    print(f"{'vector':<22s} {'scheme':<16s} {'recovered':>10s}  verdict")
    for outcome in outcomes:
        verdict = "BROKEN" if outcome.compromised else "safe"
        print(f"{outcome.vector:<22s} {outcome.scheme:<16s} "
              f"{outcome.passwords_recovered:>6d}/{outcome.total_passwords}  "
              f"{verdict}")
    return 0


def _cmd_userstudy(args: argparse.Namespace) -> int:
    from repro.eval.survey import PAPER_SURVEY

    data = PAPER_SURVEY
    data.validate()
    print(f"participants    : {data.n} ({data.male} male)")
    print(f"ages            : {data.age_min}-{data.age_max} "
          f"(mean {data.age_mean}, std {data.age_std})")
    print(f"registration convenient : {data.registering_convenient_pct():.1f}%")
    print(f"adding account easy     : {data.adding_easy_pct():.1f}%")
    print(f"generating easy         : {data.generating_easy_pct():.1f}%")
    print(f"prefer Amnesia          : {data.prefer_amnesia_pct():.1f}% "
          f"({data.prefer_amnesia}/{data.n})")
    print(f"  non-PM users          : {data.non_pm_prefer_amnesia}/"
          f"{data.non_pm_users}")
    print(f"  PM users              : {data.pm_prefer_amnesia}/{data.pm_users}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Render one generation's wire traffic as a sequence chart.

    ``--chrome PATH`` additionally exports the exchange's stage spans
    (and the in-process profiler scopes captured during the traced
    generation) as a Chrome ``trace_event`` JSON file, loadable in
    ``chrome://tracing`` or Perfetto.

    ``--top N`` / ``--critical`` instead run the distributed-tracing
    chaos scenario on the sharded cluster and render the stored trace
    trees / fleet-wide critical-path edge attribution. ``--check`` is
    the `make tracing-smoke` contract: the acceptance trace must match
    the Figure 3 latency and PR 1 stage breakdown exactly, the chaos
    run must exercise every tail-sampling keep arm (error, slow,
    incomplete, probabilistic), and both must replay bit-identically.
    """
    if args.check:
        from repro.eval.tracing import verify_tracing

        acceptance, chaos = verify_tracing(args.seed)
        print(acceptance.render())
        print(chaos.render())
        print(
            "trace check ok: acceptance trace exact, all keep arms "
            "exercised, deterministic replay"
        )
        return 0
    if args.top is not None or args.critical:
        from repro.eval.tracing import run_tracing_chaos
        from repro.obs.tracestore import critical_edges, render_trace

        chaos = run_tracing_chaos(args.seed)
        print(chaos.render())
        store = chaos.store
        if args.top is not None:
            for tree in store.top(args.top):
                print()
                print(render_trace(tree))
        if args.critical:
            print("\ncritical-path edges (fleet-wide, kept traces):")
            for parent, name, count, total in critical_edges(store.traces()):
                print(f"  {parent} > {name:<30} n={count:<5d} {total:10.1f}ms")
        return 0
    from repro.net.profiles import WIFI_PROFILE
    from repro.obs.profiler import Profiler, profiling
    from repro.sim.trace import TraceRecorder, render_sequence_chart
    from repro.testbed import AmnesiaTestbed

    bed = AmnesiaTestbed(seed=args.seed, profile=WIFI_PROFILE)
    browser = bed.enroll("alice", "cli-master-password")
    account_id = browser.add_account("alice", "mail.example.com")
    browser.generate_password(account_id)  # warm-up: no handshake noise
    profiler = Profiler()
    with TraceRecorder(bed.network) as recorder, profiling(profiler):
        result = browser.generate_password(account_id)
    print("One password generation (Figure 1, steps 2-6):\n")
    print(
        render_sequence_chart(
            recorder.events,
            participants=["laptop", "amnesia-server", "gcm", "phone"],
            width=17,
        )
    )
    print(f"\nlatency (t_start -> t_end): {result['latency_ms']:.1f} ms")
    if args.chrome:
        from repro.obs.tracefile import write_chrome_trace

        path = write_chrome_trace(
            args.chrome, spans=bed.server.spans, profiler=profiler
        )
        print(f"chrome trace written to {path}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run one simulated generation and dump the metrics registry.

    ``--check`` asserts the exporter emits the expected metric families
    (the `make metrics-smoke` contract) and exits non-zero otherwise.
    """
    from repro.obs.export import render_json, render_prometheus
    from repro.testbed import AmnesiaTestbed

    bed = AmnesiaTestbed(seed=args.seed)
    browser = bed.enroll("alice", "cli-master-password")
    account_id = browser.add_account("alice", "mail.example.com")
    browser.generate_password(account_id)
    if args.format == "json":
        text = render_json(bed.registry)
    else:
        text = render_prometheus(bed.registry)
    if args.check:
        expected = (
            "amnesia_generations_total",
            "amnesia_generation_latency_ms",
            "amnesia_stage_ms",
            "amnesia_http_requests_total",
            "amnesia_http_request_ms",
            "amnesia_net_datagrams_total",
            "amnesia_sim_events_total",
        )
        missing = [name for name in expected if name not in text]
        if missing:
            print(
                "metrics check FAILED; missing families: "
                + ", ".join(missing),
                file=sys.stderr,
            )
            return 1
        print(f"metrics check ok: {len(expected)} families present")
        return 0
    print(text)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run the chaos suite: canonical fault schedules, retries on vs off.

    ``--check`` is the `make chaos-smoke` contract: the suite must be
    deterministic under the seed (two runs, identical fingerprints) and
    the retries-on arm must beat the retries-off arm on pooled success
    rate; exits non-zero otherwise.
    """
    from repro.eval.chaos import (
        CANONICAL_SCENARIOS,
        aggregate_rates,
        run_chaos,
        suite_fingerprint,
    )

    scenarios = CANONICAL_SCENARIOS
    if args.scenario:
        scenarios = tuple(s for s in CANONICAL_SCENARIOS if s.name == args.scenario)
    results = run_chaos(seed=args.seed, trials=args.trials, scenarios=scenarios)
    for result in results:
        print(result.render())
        print()
    on_rate, off_rate = aggregate_rates(results)
    print(f"pooled success rate: retries-on {on_rate:.0%} "
          f"vs retries-off {off_rate:.0%}")
    if not args.check:
        return 0
    failures = []
    if on_rate <= off_rate:
        failures.append(
            f"retries-on rate ({on_rate:.0%}) does not beat "
            f"retries-off ({off_rate:.0%})"
        )
    replay = run_chaos(seed=args.seed, trials=args.trials, scenarios=scenarios)
    if suite_fingerprint(replay) != suite_fingerprint(results):
        failures.append("suite is not deterministic under the seed")
    if failures:
        for failure in failures:
            print(f"chaos check FAILED: {failure}", file=sys.stderr)
        return 1
    print("chaos check ok: deterministic replay, retries-on beats retries-off")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the benchmark harness; optionally gate against the baseline.

    Without flags: run micro + macro suites and write
    ``BENCH_<UTC-date>.json`` into ``--dir``. With ``--check``: replay
    the gated macro metrics to prove determinism, then compare against
    the newest prior ``BENCH_*.json`` of the same mode and fail on
    regressions past ``--threshold`` (the `make bench-smoke` contract).
    """
    from repro.eval.bench import (
        check_limits,
        compare_documents,
        find_baseline,
        macro_gates,
        render_bench,
        run_bench,
        run_macro,
        write_bench,
    )

    document = run_bench(seed=args.seed, smoke=args.smoke)
    print(render_bench(document))
    failures: list[str] = []
    if args.check:
        # Absolute-bound gates (e.g. macro.telemetry.overhead_pct) are
        # checked against the run itself — no baseline involved.
        violations = check_limits(document)
        if violations:
            print("\nbound gates:")
            for violation in violations:
                print(violation)
            failures.extend(v.strip() for v in violations)
        else:
            print("\nbound gates: all within limits")
        # Only the macro gates are deterministic under the seed; the
        # micro.* gates are wall clock and never replay bit-for-bit.
        replay = macro_gates(run_macro(seed=args.seed, smoke=args.smoke))
        committed = {
            key: gate
            for key, gate in document["gates"].items()
            if key.startswith("macro.")
        }
        if replay != committed:
            failures.append("gated metrics are not deterministic under the seed")
        else:
            print("\ndeterminism: macro gates replay bit-for-bit")
        # The newest committed artefact is a valid baseline even when it
        # is today's: the gated metrics are deterministic, so comparing
        # a fresh run against it is exactly the regression question.
        baseline = find_baseline(args.dir, smoke=args.smoke)
        if baseline is None:
            message = "no comparable BENCH_*.json baseline found"
            if args.allow_missing_baseline:
                print(f"baseline: {message} (allowed)")
            else:
                failures.append(message)
        else:
            path, base_doc = baseline
            comparisons = compare_documents(
                base_doc, document, threshold=args.threshold
            )
            print(f"\nbaseline: {path.name} (threshold {args.threshold:.0%})")
            for comparison in comparisons:
                print(comparison.render())
                if comparison.regressed:
                    failures.append(
                        f"{comparison.key} regressed "
                        f"{comparison.change_pct:+.1f}% vs {path.name}"
                    )
    if not args.no_write:
        path = write_bench(document, args.dir)
        print(f"\nwrote {path}")
    if failures:
        for failure in failures:
            print(f"bench check FAILED: {failure}", file=sys.stderr)
        return 1
    if args.check:
        print("bench check ok")
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    """Run the telemetry chaos scenario: SLO burn-rate alerting under a
    rendezvous outage on the sharded cluster.

    ``--check`` is the `make slo-smoke` contract: the availability SLO
    must walk pending → firing → resolved on the sim clock, the gcm
    series must go stale during the outage and recover after restart,
    and a second run must replay the transition timestamps
    bit-for-bit; exits non-zero otherwise.
    """
    from repro.eval.telemetry import run_telemetry_chaos, verify_telemetry_chaos
    from repro.util.errors import ValidationError

    if args.check:
        try:
            result = verify_telemetry_chaos(seed=args.seed)
        except ValidationError as error:
            print(f"slo check FAILED: {error}", file=sys.stderr)
            return 1
        print(result.render())
        print("slo check ok: pending->firing->resolved, stale gcm during "
              "outage, deterministic replay")
        return 0
    result = run_telemetry_chaos(seed=args.seed)
    print(result.render())
    print(f"\nfingerprint: {result.fingerprint()}")
    return 0


def _cmd_drill(args: argparse.Namespace) -> int:
    """Run the disaster-recovery drill: periodic encrypted bundles, a
    primary+standby double crash mid-exchange, k-of-n key recovery and
    a cold-node restore from the newest bundle + op-log tail.

    ``--check`` is the `make drill-smoke` contract: every affected
    user's post-restore ``P`` must be bit-identical to pre-disaster,
    k-1 trustee shares must fail recovery, the archived tail must have
    been replayed, sessions must survive, and a second run must replay
    the transition fingerprint bit-for-bit; exits non-zero otherwise.
    """
    from repro.eval.drill import run_drill, verify_drill
    from repro.util.errors import ValidationError

    if args.check:
        try:
            result = verify_drill(seed=args.seed)
        except ValidationError as error:
            print(f"drill check FAILED: {error}", file=sys.stderr)
            return 1
        print(result.render())
        print("drill check ok: bit-identical P after cold restore, k-1 "
              "shares rejected, deterministic replay")
        return 0
    result = run_drill(seed=args.seed)
    print(result.render())
    print(f"\nfingerprint: {result.fingerprint()}")
    return 0


def _dash_frames(seed: int | str) -> "tuple[str, str]":
    """Two dashboard frames of a scripted outage: mid-crash and after
    recovery. Pure function of the seed — the `dash --check` smoke
    renders the scene twice and compares byte-for-byte."""
    from repro.cluster.testbed import RENDEZVOUS, ClusterTestbed
    from repro.faults.plane import FaultSchedule
    from repro.obs.dashboard import render_dashboard
    from repro.web.http import HttpRequest

    bed = ClusterTestbed(shards=2, seed=f"dash|{seed}")
    browser = bed.enroll("tina", "master-tina-password")
    account_id = browser.add_account("tina", "tina.example.com")
    bed.phones["tina"].enable_resilience(
        "tina", heartbeat_interval_ms=1_000.0, miss_threshold=2
    )
    plane = bed.install_telemetry()
    bed.install_fault_plane(
        FaultSchedule().crash(6_000.0, RENDEZVOUS, down_ms=8_000.0)
    )
    start = bed.kernel.now

    def tick() -> None:
        if bed.kernel.now - start >= 20_000.0:
            return
        browser.http.send(
            HttpRequest.json_request(
                "POST", f"/accounts/{account_id}/generate", {}
            ),
            lambda response: None,
            lambda error: None,
        )
        bed.kernel.schedule(450.0, tick, label="dash-load")

    bed.kernel.schedule(100.0, tick, label="dash-load")
    bed.run(13_000.0)
    mid_outage = render_dashboard(plane)
    bed.run(14_000.0)
    recovered = render_dashboard(plane)
    plane.stop()
    return mid_outage, recovered


def _dash_traces_frame(seed: int | str) -> str:
    """One dashboard frame of a second scripted scene: a shard primary
    partitioned away mid-load with the tracing plane installed, so the
    TRACES section shows kept trees (including an ``INCOMPLETE`` one —
    the partitioned primary's open server span never exports) and
    critical-path edges. Pure function of the seed."""
    from repro.cluster.testbed import GATEWAY, MONITOR, ClusterTestbed
    from repro.faults.plane import FaultSchedule
    from repro.obs.dashboard import render_dashboard
    from repro.web.http import HttpRequest

    bed = ClusterTestbed(shards=2, seed=f"dash-traces|{seed}")
    bed.install_tracing(quiesce_ms=2_000.0)
    browser = bed.enroll("tina", "master-tina-password")
    account_id = browser.add_account("tina", "tina.example.com")
    plane = bed.install_telemetry()
    shard = bed.shard_of("tina")
    # The partition opens mid-exchange (ticks land at 100 + k*450) and
    # is still up when the frame renders: the cut primary's open server
    # span never exports, so its traces show as INCOMPLETE.
    bed.install_fault_plane(
        FaultSchedule().partition(
            2_812.0, 9_000.0,
            [shard.primary.host.name],
            [GATEWAY, MONITOR],
        )
    )
    start = bed.kernel.now

    def tick() -> None:
        if bed.kernel.now - start >= 8_000.0:
            return
        browser.http.send(
            HttpRequest.json_request(
                "POST", f"/accounts/{account_id}/generate", {}
            ),
            lambda response: None,
            lambda error: None,
        )
        bed.kernel.schedule(450.0, tick, label="dash-traces-load")

    bed.kernel.schedule(100.0, tick, label="dash-traces-load")
    bed.run(10_800.0)
    frame = render_dashboard(plane)
    plane.stop()
    return frame


def _cmd_dash(args: argparse.Namespace) -> int:
    """Render the live cluster dashboard over two scripted scenes.

    Scene one is a gcm outage, two frames: mid-outage (gcm stale, alert
    firing, 5xx spike in the sparklines) and after recovery. Scene two
    partitions a shard primary with the tracing plane installed, one
    frame: the TRACES section with kept and incomplete trace trees.
    ``--check`` is the `make dash-smoke` contract: all frames must
    contain the expected sections and markers, and a second run of the
    identical scenes must render byte-for-byte the same text.
    """
    mid_outage, recovered = _dash_frames(args.seed)
    print(mid_outage)
    print(recovered)
    traces_frame = _dash_traces_frame(args.seed)
    print(traces_frame)
    if not args.check:
        return 0
    failures = []
    for needle in ("TOPOLOGY", "SERIES", "ALERTS"):
        if needle not in mid_outage:
            failures.append(f"missing dashboard section {needle!r}")
    if "STALE" not in mid_outage:
        failures.append("mid-outage frame does not mark gcm STALE")
    if "FIRING" not in mid_outage:
        failures.append("mid-outage frame shows no firing alert")
    if "FIRING" in recovered:
        failures.append("recovered frame still shows a firing alert")
    if "TRACES" in mid_outage:
        failures.append(
            "gcm scene shows a TRACES section without the tracing plane"
        )
    if "TRACES" not in traces_frame:
        failures.append("partition scene is missing the TRACES section")
    if " incomplete=" not in traces_frame or " incomplete=0 " in traces_frame:
        failures.append("partition scene shows no incomplete trace")
    if " path " not in traces_frame:
        failures.append("partition scene shows no critical-path edges")
    replay_mid, replay_recovered = _dash_frames(args.seed)
    replay_traces = _dash_traces_frame(args.seed)
    if (replay_mid, replay_recovered, replay_traces) != (
        mid_outage, recovered, traces_frame
    ):
        failures.append("dashboard render is not deterministic under the seed")
    if failures:
        for failure in failures:
            print(f"dash check FAILED: {failure}", file=sys.stderr)
        return 1
    print("dash check ok: sections present, outage and traces visible, "
          "deterministic render")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Drive the sharded fleet through a probe-driven failover round trip.

    Enrolls one user through the consistent-hash gateway, generates a
    password, kills the user's shard primary mid-exchange, and lets the
    probe plane promote the standby — which must complete the exchange
    with the byte-identical password (the op-log shipped ``σ``, ``O_id``
    and the ids).  ``--check`` is the `make cluster-smoke` contract: the
    acceptance triple (identical P, exactly one failover, affected phone
    re-registered) plus a bit-for-bit deterministic replay under the
    seed.  ``--chaos`` runs the cluster chaos suite instead.
    """
    from repro.cluster.chaos import (
        CLUSTER_RETRY,
        cluster_suite_fingerprint,
        run_cluster_chaos,
    )
    from repro.cluster.testbed import ClusterTestbed
    from repro.obs.health import counter_total

    if args.chaos:
        results = run_cluster_chaos(seed=args.seed, trials=args.trials)
        for result in results:
            print(result.render())
            print()
        print(f"fingerprint:\n{cluster_suite_fingerprint(results)}")
        return 0

    def round_trip() -> dict:
        bed = ClusterTestbed(shards=args.shards, seed=args.seed)
        browser = bed.enroll("alice", "cli-master-password")
        account_id = browser.add_account("alice", "mail.example.com")
        before = browser.generate_password(account_id)["password"]
        bed.run_until_idle()  # replication converged: standby has σ
        bed.gateway.start_probing()
        shard = bed.shard_of("alice")
        bed.kernel.schedule(
            2.0, lambda: bed.crash_primary(shard.name), label="cli-crash"
        )
        result = browser.generate_password(
            account_id,
            retry=CLUSTER_RETRY,
            rng=bed.network.rng_stream("cli-retry"),
        )
        bed.gateway.stop_probing()
        bed.run_until_idle()
        return {
            "shards": sorted(bed.shards),
            "home": shard.name,
            "before": before,
            "after": result["password"],
            "latency_ms": result["latency_ms"],
            "failovers": bed.gateway.failovers,
            "failovers_total": counter_total(
                bed.registry, "amnesia_cluster_failovers_total"
            ),
            "promoted": shard.serving is shard.standby,
            "reregistered": list(bed.reregistrations),
        }

    result = round_trip()
    identical = result["after"] == result["before"]
    print(f"fleet       : {len(result['shards'])} shards "
          f"({', '.join(result['shards'])}), alice on {result['home']}")
    print(f"password    : {result['before']}")
    print(f"failover    : primary killed mid-exchange; standby answered "
          f"in {result['latency_ms']:.1f} ms")
    print(f"regenerated : {result['after']} "
          f"({'identical' if identical else 'DIFFERENT'})")
    print(f"failovers   : {result['failovers']}, phones re-registered: "
          f"{', '.join(result['reregistered']) or 'none'}")
    if not args.check:
        return 0
    failures = []
    if not identical:
        failures.append("regenerated password differs after failover")
    if result["failovers"] != 1 or result["failovers_total"] != 1.0:
        failures.append(
            f"expected exactly one failover, saw {result['failovers']} "
            f"(counter {result['failovers_total']})"
        )
    if not result["promoted"]:
        failures.append("failed shard is not serving from its standby")
    if result["reregistered"] != ["alice"]:
        failures.append(
            f"affected phone not re-registered: {result['reregistered']}"
        )
    replay = round_trip()
    if (replay["before"], replay["after"]) != (
        result["before"], result["after"]
    ):
        failures.append("round trip is not deterministic under the seed")
    if failures:
        for failure in failures:
            print(f"cluster check FAILED: {failure}", file=sys.stderr)
        return 1
    print("cluster check ok: identical password on the promoted standby, "
          "one failover, deterministic replay")
    return 0


def _cmd_stages(args: argparse.Namespace) -> int:
    """Per-stage latency attribution of the Figure 3 pipeline."""
    from repro.eval.stages import run_stage_breakdown

    breakdowns = run_stage_breakdown(trials=args.trials, seed=args.seed)
    for breakdown in breakdowns.values():
        print(breakdown.render())
        print(f"total (sum of stage means): {breakdown.total_mean_ms:.1f} ms")
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Generate the full markdown reproduction report."""
    from repro.eval.report import generate_report

    report = generate_report(trials=args.trials, seed=args.seed)
    if args.output == "-":
        print(report)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.output} ({len(report)} chars)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run a real Amnesia server on localhost (curl-able)."""
    from repro.deploy import RealAmnesiaDeployment

    deployment = RealAmnesiaDeployment(
        port=args.port,
        token_session_ttl_ms=args.session_ttl * 1000.0,
        verbose=True,
    ).start()
    agent = deployment.new_phone_agent() if args.with_phone else None
    print(f"Amnesia server listening on http://{deployment.address}")
    if agent is not None:
        print(f"in-process phone agent ready (reg id {agent.reg_id}); "
              f"pair it via POST /pair/start + /pair/complete")
    print("endpoints: /signup /login /accounts /accounts/{id}/generate "
          "/pair/start /token /recover/... — Ctrl-C to stop")
    try:
        while True:
            import time

            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        deployment.stop()
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    """Run the open-loop workload at a chosen scale.

    The committed bench gate keeps the paper's 3-user figure; these
    flags open the same harness to other operating points (e.g.
    ``--users 50 --minutes 2 --rate 30``). ``--rate`` is per-user
    generations per minute; the defaults reproduce the legacy spec
    exactly (3 users, 1 minute, 12/user/min).
    """
    from repro.eval.workload import WorkloadSpec, run_workload

    spec = WorkloadSpec(
        users=args.users,
        accounts_per_user=args.accounts,
        duration_ms=args.minutes * 60_000.0,
        mean_interarrival_ms=60_000.0 / args.rate,
        seed=f"{args.seed}|workload",
    )
    result = run_workload(spec, telemetry=args.telemetry)
    print(f"spec        : {spec.users} users x {spec.accounts_per_user} "
          f"accounts, {spec.duration_ms / 60_000.0:.1f} min at "
          f"{args.rate:.1f}/user/min (offered {spec.offered_rate_per_s:.2f}/s)")
    print(f"issued      : {result.issued} "
          f"(completed {result.completed}, failed {result.failed})")
    print(f"completion  : {result.completion_rate:.1%}")
    print(f"latency     : mean {result.latency_mean_ms():.1f} ms, "
          f"p95 {result.latency_p95_ms():.1f} ms")
    print(f"pool        : peak busy {result.pool_peak_busy}, "
          f"peak queue {result.pool_peak_queue}")
    return 0


def _population_check_spec(seed: str):
    """The `population --check` operating point: 10k users, shortened
    horizon so two full runs stay inside the smoke-time budget."""
    from repro.population import PopulationSpec

    return PopulationSpec(
        users=10_000,
        reserve_users=300,
        duration_ms=6_000.0,
        ops_per_user_per_hour=18.0,
        flash_start_ms=2_500.0,
        flash_duration_ms=2_000.0,
        flash_multiplier=6.0,
        churn_interval_ms=2_000.0,
        churn_fraction=0.005,
        seed=f"{seed}|population-check",
    )


def _cmd_population(args: argparse.Namespace) -> int:
    """Run the population engine: synthesized users over the cluster.

    ``--check`` is the `make population-smoke` contract: two runs at
    10k users must produce bit-identical fingerprints, every issued
    request must be accounted (completed + failed + shed), the live
    population must stay conserved through churn waves, and no push
    may go unmatched in the fleet demux; exits non-zero otherwise.
    """
    from repro.population import PopulationEngine, PopulationSpec

    if args.check:
        failures = []
        engines = []
        for _ in range(2):
            engine = PopulationEngine(_population_check_spec(args.seed))
            engine.run()
            engines.append(engine)
        first, second = engines
        result = first.result
        if result.fingerprint() != second.result.fingerprint():
            failures.append("population run is not deterministic under the seed")
        if result.completed == 0:
            failures.append("no generation completed")
        accounted = result.completed + result.failed + result.rejected_429
        if accounted != result.issued:
            failures.append(
                f"issued {result.issued} but only {accounted} accounted"
            )
        if len(first._active) != first.spec.users:
            failures.append(
                f"churn did not conserve the population: "
                f"{len(first._active)} active != {first.spec.users}"
            )
        if result.churn_waves == 0:
            failures.append("no churn wave applied")
        if result.fleet_unmatched:
            failures.append(
                f"{result.fleet_unmatched} pushes failed fleet demux"
            )
        if failures:
            for failure in failures:
                print(f"population check FAILED: {failure}", file=sys.stderr)
            return 1
        print(
            f"population check ok: {result.provisioned_users} users "
            f"provisioned, {result.completed}/{result.issued} completed "
            f"({result.rejected_429} shed), {result.churn_waves} churn "
            f"waves, fingerprint {result.fingerprint()[:16]} replayed "
            f"bit-identically"
        )
        return 0

    spec = PopulationSpec(
        users=args.users,
        duration_ms=args.seconds * 1000.0,
        ops_per_user_per_hour=args.rate,
        channels=args.channels,
        shards=args.shards,
        seed=f"{args.seed}|population",
    )
    engine = PopulationEngine(spec)
    result = engine.run()
    print(f"population  : {result.provisioned_users} users provisioned "
          f"({spec.users} active + {spec.reserve_users} reserve) across "
          f"{spec.shards} shards, {spec.channels} fleet channels "
          f"(provisioned in {result.provision_wall_s:.1f}s wall)")
    print(f"offered     : {spec.offered_rate_per_s:.1f}/s mean, flash x"
          f"{spec.flash_multiplier:.0f} at +{spec.flash_start_ms / 1000.0:.1f}s "
          f"for {spec.flash_duration_ms / 1000.0:.1f}s")
    print(f"issued      : {result.issued} (completed {result.completed}, "
          f"failed {result.failed}, shed {result.rejected_429})")
    print(f"sustained   : {result.sustained_ops_per_s:.1f} ops/s "
          f"({result.completion_rate:.1%} completion)")
    print(f"latency     : p99 {result.p99_ms():.1f} ms overall, "
          f"p99 {result.p99_ms_flash():.1f} ms in-flash")
    print(f"dispatch    : peak depth {result.dispatch_peak_depth}, "
          f"shed {result.dispatch_shed_total}, "
          f"gateway peak busy {result.pool_peak_busy}")
    print(f"churn       : {result.churn_waves} waves, "
          f"{result.churn_swaps} swaps (population conserved at "
          f"{len(engine._active)})")
    print(f"fleet       : {result.fleet_pushes} pushes answered, "
          f"{result.fleet_unmatched} unmatched")
    print(f"fingerprint : {result.fingerprint()}")
    return 0


_COMMANDS: Dict[str, Callable[[argparse.Namespace], int]] = {
    "quickstart": _cmd_quickstart,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "strength": _cmd_strength,
    "attacks": _cmd_attacks,
    "userstudy": _cmd_userstudy,
    "serve": _cmd_serve,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "stages": _cmd_stages,
    "chaos": _cmd_chaos,
    "bench": _cmd_bench,
    "cluster": _cmd_cluster,
    "slo": _cmd_slo,
    "dash": _cmd_dash,
    "drill": _cmd_drill,
    "workload": _cmd_workload,
    "population": _cmd_population,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="amnesia-repro",
        description="Reproduce artefacts from 'Amnesia: A Bilateral "
        "Generative Password Manager' (ICDCS 2016).",
    )
    parser.add_argument("--seed", default="cli", help="simulation seed")
    parser.add_argument(
        "--log-level",
        default=None,
        choices=["DEBUG", "INFO", "WARNING"],
        help="enable component logging to stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in _COMMANDS:
        command = sub.add_parser(name, help=f"reproduce {name}")
        if name == "fig3":
            command.add_argument(
                "--trials", type=int, default=100,
                help="trials per transport (paper: 100)",
            )
        elif name == "report":
            command.add_argument(
                "--trials", type=int, default=100,
                help="Figure 3 trials per transport",
            )
            command.add_argument(
                "--output", default="REPORT.md",
                help="output path ('-' for stdout)",
            )
        elif name == "metrics":
            command.add_argument(
                "--format", default="prometheus",
                choices=["prometheus", "json"],
                help="exporter output format",
            )
            command.add_argument(
                "--check", action="store_true",
                help="assert expected metric families exist (smoke test)",
            )
        elif name == "stages":
            command.add_argument(
                "--trials", type=int, default=20,
                help="generations per transport",
            )
        elif name == "chaos":
            command.add_argument(
                "--trials", type=int, default=5,
                help="generations per scenario arm",
            )
            command.add_argument(
                "--scenario", default=None,
                choices=["lossy-uplink", "rendezvous-crash", "return-partition"],
                help="run a single scenario instead of the full suite",
            )
            command.add_argument(
                "--check", action="store_true",
                help="assert determinism + retries-on beats retries-off "
                "(smoke test)",
            )
        elif name == "trace":
            command.add_argument(
                "--chrome", default=None, metavar="PATH",
                help="also export the exchange as Chrome trace_event JSON",
            )
            command.add_argument(
                "--top", type=int, default=None, metavar="N",
                help="show the N largest stored traces from a cluster "
                "chaos run (distributed tracing plane)",
            )
            command.add_argument(
                "--critical", action="store_true",
                help="show fleet-wide critical-path edge attribution "
                "from a cluster chaos run",
            )
            command.add_argument(
                "--check", action="store_true",
                help="assert the tracing acceptance contract, the chaos "
                "keep arms, and a bit-identical replay (smoke test)",
            )
        elif name == "bench":
            command.add_argument(
                "--check", action="store_true",
                help="verify determinism and gate against the newest "
                "prior BENCH_*.json",
            )
            command.add_argument(
                "--smoke", action="store_true",
                help="tiny iteration counts (fast CI smoke run)",
            )
            command.add_argument(
                "--dir", default=".",
                help="directory for BENCH_*.json artefacts (default: .)",
            )
            command.add_argument(
                "--threshold", type=float, default=0.25,
                help="regression gate as a fraction (default: 0.25)",
            )
            command.add_argument(
                "--allow-missing-baseline", action="store_true",
                help="with --check: pass when no prior BENCH file exists",
            )
            command.add_argument(
                "--no-write", action="store_true",
                help="do not write the BENCH_*.json artefact",
            )
        elif name == "cluster":
            command.add_argument(
                "--shards", type=int, default=2,
                help="shard count for the simulated fleet (default: 2)",
            )
            command.add_argument(
                "--check", action="store_true",
                help="assert identical password after failover, exactly "
                "one failover, and a deterministic replay (smoke test)",
            )
            command.add_argument(
                "--chaos", action="store_true",
                help="run the cluster chaos suite (shard-crash, stale-ring) "
                "instead of the failover round trip",
            )
            command.add_argument(
                "--trials", type=int, default=1,
                help="with --chaos: trials per scenario arm",
            )
        elif name == "slo":
            command.add_argument(
                "--check", action="store_true",
                help="assert pending->firing->resolved + deterministic "
                "replay (smoke test)",
            )
        elif name == "dash":
            command.add_argument(
                "--check", action="store_true",
                help="assert sections/markers + deterministic render "
                "(smoke test)",
            )
        elif name == "drill":
            command.add_argument(
                "--check", action="store_true",
                help="assert bit-identical P after cold restore, k-1 "
                "share rejection + deterministic replay (smoke test)",
            )
        elif name == "workload":
            command.add_argument(
                "--users", type=int, default=3,
                help="concurrent simulated users (paper figure: 3)",
            )
            command.add_argument(
                "--minutes", type=float, default=1.0,
                help="workload duration in minutes (default: 1)",
            )
            command.add_argument(
                "--rate", type=float, default=12.0,
                help="per-user generations per minute (default: 12)",
            )
            command.add_argument(
                "--accounts", type=int, default=3,
                help="accounts per user (default: 3)",
            )
            command.add_argument(
                "--telemetry", action="store_true",
                help="install the fleet telemetry plane during the run",
            )
        elif name == "population":
            command.add_argument(
                "--users", type=int, default=10_000,
                help="active simulated users (default: 10000)",
            )
            command.add_argument(
                "--seconds", type=float, default=20.0,
                help="drive duration in simulated seconds (default: 20)",
            )
            command.add_argument(
                "--rate", type=float, default=6.0,
                help="per-user generations per hour (default: 6)",
            )
            command.add_argument(
                "--channels", type=int, default=4,
                help="shared phone-fleet rendezvous channels (default: 4)",
            )
            command.add_argument(
                "--shards", type=int, default=2,
                help="cluster shard count (default: 2)",
            )
            command.add_argument(
                "--check", action="store_true",
                help="two-run bit-identical fingerprint at 10k users "
                "(smoke test)",
            )
        elif name == "serve":
            command.add_argument(
                "--port", type=int, default=8080, help="listen port"
            )
            command.add_argument(
                "--session-ttl", type=float, default=0.0,
                help="token-session TTL in seconds (0 = paper behaviour)",
            )
            command.add_argument(
                "--with-phone", action="store_true",
                help="start an in-process phone agent",
            )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level:
        from repro.util.logs import enable_console_logging

        enable_console_logging(args.log_level)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
