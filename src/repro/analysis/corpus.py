"""Corpus statistics for password sets.

Summarises a collection of passwords on the axes the survey (§VII-C)
asks about — length buckets and character-class usage — so simulated
populations can be compared against Figure 4's marginals and against
generated-password corpora.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.util.errors import ValidationError

LENGTH_BUCKETS = ("<=5", "6~8", "9~11", "12~14", "14+")


def _length_bucket(password: str) -> str:
    size = len(password)
    if size <= 5:
        return "<=5"
    if size <= 8:
        return "6~8"
    if size <= 11:
        return "9~11"
    if size <= 14:
        return "12~14"
    return "14+"


@dataclass(frozen=True)
class CorpusStats:
    """Aggregate statistics of one password corpus."""

    count: int
    mean_length: float
    length_buckets: Dict[str, int]
    with_lowercase: float
    with_uppercase: float
    with_digit: float
    with_special: float
    distinct_fraction: float

    def dominant_length_bucket(self) -> str:
        return max(self.length_buckets, key=self.length_buckets.get)


def corpus_stats(passwords: Sequence[str]) -> CorpusStats:
    """Compute :class:`CorpusStats` for *passwords*."""
    if not passwords:
        raise ValidationError("corpus must be non-empty")
    buckets = {bucket: 0 for bucket in LENGTH_BUCKETS}
    lower = upper = digit = special = 0
    total_length = 0
    for password in passwords:
        buckets[_length_bucket(password)] += 1
        total_length += len(password)
        if any(c.islower() for c in password):
            lower += 1
        if any(c.isupper() for c in password):
            upper += 1
        if any(c.isdigit() for c in password):
            digit += 1
        if any(not c.isalnum() for c in password):
            special += 1
    count = len(passwords)
    return CorpusStats(
        count=count,
        mean_length=total_length / count,
        length_buckets=buckets,
        with_lowercase=lower / count,
        with_uppercase=upper / count,
        with_digit=digit / count,
        with_special=special / count,
        distinct_fraction=len(set(passwords)) / count,
    )
