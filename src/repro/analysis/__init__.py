"""Password analysis: Markov strength modelling and corpus statistics.

The related-work section grounds Amnesia in the password-cracking
literature — dictionary attacks accelerated by Markov models [4] and
semantic patterns [16]. This package implements the modelling side so
the reproduction's attacks and evaluations can *measure* guessability
instead of asserting it:

- :class:`~repro.analysis.markov.CharMarkovModel` — an order-k
  character model trained on a password corpus, giving per-password
  log-probabilities and guess-number estimates;
- :func:`~repro.analysis.markov.rank_candidates` — orders a candidate
  list by model probability, the optimisation Narayanan & Shmatikov's
  attack applies to dictionaries;
- :mod:`~repro.analysis.corpus` — corpus statistics (length, class
  composition) used for survey-vs-model comparisons.
"""

from repro.analysis.markov import (
    CharMarkovModel,
    rank_candidates,
)
from repro.analysis.pcfg import (
    PcfgModel,
    segment_structure,
    structure_signature,
)
from repro.analysis.corpus import CorpusStats, corpus_stats

__all__ = [
    "CharMarkovModel",
    "rank_candidates",
    "PcfgModel",
    "segment_structure",
    "structure_signature",
    "CorpusStats",
    "corpus_stats",
]
