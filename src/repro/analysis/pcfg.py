"""Probabilistic context-free grammar password modelling (Weir et al. [3]).

The paper cites "Password cracking using probabilistic context-free
grammars" as a modern cracking technique its generated passwords
resist. This is that technique: passwords are segmented into maximal
runs of letters (L), digits (D) and symbols (S); the *structure* (e.g.
``L6 D2`` for "dragon12") and the terminals filling each slot are
learned with their empirical probabilities; guesses are produced in
decreasing probability order by filling learned structures with learned
terminals.

Against human corpora the PCFG finds typical passwords within a few
hundred guesses. Against Amnesia's template output it is helpless:
a 32-character draw from a 94-symbol alphabet virtually never matches
any learned structure+terminal combination, which is the precise form
of §IV-E's "attackers are unable to employ dictionary-based attacks".
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.util.errors import ValidationError


def _char_class(character: str) -> str:
    if character.isalpha():
        return "L"
    if character.isdigit():
        return "D"
    return "S"


def segment_structure(password: str) -> List[Tuple[str, str]]:
    """Split *password* into (class, run) pieces, e.g.
    ``"dragon12!" -> [("L", "dragon"), ("D", "12"), ("S", "!")]``."""
    if not password:
        raise ValidationError("cannot segment an empty password")
    pieces: List[Tuple[str, str]] = []
    run = password[0]
    run_class = _char_class(password[0])
    for character in password[1:]:
        cls = _char_class(character)
        if cls == run_class:
            run += character
        else:
            pieces.append((run_class, run))
            run, run_class = character, cls
    pieces.append((run_class, run))
    return pieces


def structure_signature(password: str) -> str:
    """The structural template, e.g. ``"dragon12!" -> "L6 D2 S1"``."""
    return " ".join(
        f"{cls}{len(run)}" for cls, run in segment_structure(password)
    )


@dataclass(frozen=True)
class _Slot:
    """One nonterminal: a character class at a specific length."""

    cls: str
    length: int

    def label(self) -> str:
        return f"{self.cls}{self.length}"


class PcfgModel:
    """A trained PCFG: structure distribution + per-slot terminals."""

    def __init__(self) -> None:
        self._structure_counts: Dict[Tuple[_Slot, ...], int] = defaultdict(int)
        self._terminal_counts: Dict[_Slot, Dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self.trained_on = 0

    # -- training ---------------------------------------------------------------

    def train(self, corpus: Iterable[str]) -> "PcfgModel":
        for password in corpus:
            if not password:
                continue
            slots = []
            for cls, run in segment_structure(password):
                slot = _Slot(cls, len(run))
                slots.append(slot)
                self._terminal_counts[slot][run] += 1
            self._structure_counts[tuple(slots)] += 1
            self.trained_on += 1
        if self.trained_on == 0:
            raise ValidationError("training corpus was empty")
        return self

    # -- probabilities -------------------------------------------------------------

    def structure_probability(self, slots: Tuple[_Slot, ...]) -> float:
        count = self._structure_counts.get(slots, 0)
        return count / self.trained_on if self.trained_on else 0.0

    def terminal_probability(self, slot: _Slot, run: str) -> float:
        counts = self._terminal_counts.get(slot)
        if not counts:
            return 0.0
        return counts.get(run, 0) / sum(counts.values())

    def probability(self, password: str) -> float:
        """Model probability of *password* (0 if any piece is unseen)."""
        slots = []
        probability = 1.0
        for cls, run in segment_structure(password):
            slot = _Slot(cls, len(run))
            slots.append(slot)
            probability *= self.terminal_probability(slot, run)
            if probability == 0.0:
                return 0.0
        return probability * self.structure_probability(tuple(slots))

    def strength_bits(self, password: str) -> float:
        """-log2 p; infinity when the password is outside the grammar."""
        probability = self.probability(password)
        return math.inf if probability == 0.0 else -math.log2(probability)

    # -- guessing ---------------------------------------------------------------------

    def guesses(self, limit: int) -> Iterator[str]:
        """Yield up to *limit* guesses in decreasing probability order.

        Implements the 'next' function of Weir et al. with a max-heap of
        partially-incremented terminal assignments per structure.
        """
        if limit < 0:
            raise ValidationError(f"limit must be >= 0, got {limit}")
        # Pre-sort each slot's terminals by probability.
        sorted_terminals: Dict[_Slot, List[Tuple[float, str]]] = {}
        for slot, counts in self._terminal_counts.items():
            total = sum(counts.values())
            sorted_terminals[slot] = sorted(
                ((count / total, run) for run, count in counts.items()),
                reverse=True,
            )
        # Heap entries: (-probability, tiebreak, structure, index-vector).
        tiebreak = itertools.count()
        heap: List[Tuple[float, int, Tuple[_Slot, ...], Tuple[int, ...]]] = []
        seen: set[Tuple[Tuple[_Slot, ...], Tuple[int, ...]]] = set()

        def assignment_probability(
            slots: Tuple[_Slot, ...], indices: Tuple[int, ...]
        ) -> float:
            probability = self.structure_probability(slots)
            for slot, index in zip(slots, indices):
                probability *= sorted_terminals[slot][index][0]
            return probability

        for slots in self._structure_counts:
            indices = tuple(0 for __ in slots)
            heapq.heappush(
                heap,
                (
                    -assignment_probability(slots, indices),
                    next(tiebreak),
                    slots,
                    indices,
                ),
            )
            seen.add((slots, indices))

        produced = 0
        while heap and produced < limit:
            negative_probability, __, slots, indices = heapq.heappop(heap)
            yield "".join(
                sorted_terminals[slot][index][1]
                for slot, index in zip(slots, indices)
            )
            produced += 1
            # Children: increment one slot index at a time.
            for position in range(len(slots)):
                slot = slots[position]
                next_index = indices[position] + 1
                if next_index >= len(sorted_terminals[slot]):
                    continue
                child = (
                    indices[:position] + (next_index,) + indices[position + 1 :]
                )
                if (slots, child) in seen:
                    continue
                seen.add((slots, child))
                heapq.heappush(
                    heap,
                    (
                        -assignment_probability(slots, child),
                        next(tiebreak),
                        slots,
                        child,
                    ),
                )

    def guess_number(self, password: str, limit: int = 100_000) -> int | None:
        """Position of *password* in the guess stream, or None if it is
        not produced within *limit* guesses."""
        for position, guess in enumerate(self.guesses(limit), start=1):
            if guess == password:
                return position
        return None
