"""Character-level Markov modelling of passwords.

An order-k model with add-one smoothing over printable ASCII plus an
end-of-string symbol. Trained on a corpus of human passwords, it
assigns each string a probability; following Narayanan & Shmatikov [4],
the *guess number* of a password under an optimal probability-ordered
attack is approximated by ``1 / p`` (the attacker tries more-probable
strings first), and ``-log2(p)`` serves as a strength estimate in bits.

Amnesia's generated passwords draw uniformly from a 94-character
table, so the model assigns them near-floor probability — which is the
quantitative form of §IV-E's claim that "attackers are unable to employ
dictionary-based attacks".
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, Sequence

from repro.util.errors import ValidationError

_END = "\x00"  # end-of-string symbol
_ALPHABET_SIZE = 95 + 1  # printable ASCII (32..126) + end symbol


class CharMarkovModel:
    """Order-k character Markov model with add-one smoothing."""

    def __init__(self, order: int = 2) -> None:
        if not (1 <= order <= 4):
            raise ValidationError(f"order must be in [1, 4], got {order}")
        self.order = order
        self._transitions: Dict[str, Dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self._context_totals: Dict[str, int] = defaultdict(int)
        self.trained_on = 0

    # -- training ---------------------------------------------------------------

    def train(self, corpus: Iterable[str]) -> "CharMarkovModel":
        """Accumulate counts from *corpus* (may be called repeatedly)."""
        for password in corpus:
            if not password:
                continue
            padded = password + _END
            context = ""
            for character in padded:
                self._transitions[context][character] += 1
                self._context_totals[context] += 1
                context = (context + character)[-self.order :]
            self.trained_on += 1
        return self

    # -- scoring ----------------------------------------------------------------

    def _step_log2(self, context: str, character: str) -> float:
        counts = self._transitions.get(context)
        total = self._context_totals.get(context, 0)
        observed = counts.get(character, 0) if counts is not None else 0
        # Add-one smoothing over the alphabet.
        probability = (observed + 1) / (total + _ALPHABET_SIZE)
        return math.log2(probability)

    def log2_probability(self, password: str) -> float:
        """log2 of the model probability of *password* (negative)."""
        if not password:
            raise ValidationError("cannot score an empty password")
        padded = password + _END
        context = ""
        total = 0.0
        for character in padded:
            total += self._step_log2(context, character)
            context = (context + character)[-self.order :]
        return total

    def strength_bits(self, password: str) -> float:
        """Estimated guessing strength: ``-log2 p`` under the model."""
        return -self.log2_probability(password)

    def guess_number_estimate(self, password: str) -> float:
        """Approximate position in a probability-ordered guess sequence."""
        return 2.0 ** self.strength_bits(password)


def rank_candidates(
    model: CharMarkovModel, candidates: Sequence[str]
) -> list[str]:
    """Order *candidates* most-probable first (the optimal dictionary
    ordering for a probability-informed attacker)."""
    return sorted(candidates, key=model.log2_probability, reverse=True)
