"""Server-side database: Table I made concrete.

Per user the server stores (Table I):

- ``O_id`` — the static 512-bit online id (plaintext; it is a server
  secret, part of ``Ks``);
- ``H(MP + salt)`` and the salt — master-password verifier;
- the rendezvous registration id (plaintext);
- ``H(P_id + salt)`` and its salt — phone association for recovery;
- one ``(µ, d, σ)`` row per managed account, where σ is the 256-bit
  seed (plaintext — it is a server-side secret) plus the per-account
  password policy (charset/length), which §III-B says the user may
  adjust per site.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.storage.database import Database
from repro.util.errors import ConflictError, NotFoundError, ValidationError

#: Schema tag of the versioned per-user snapshot documents produced by
#: :meth:`ServerDatabase.export_user_snapshot`.  The cluster replication
#: plane ships these across shards; version the format so a future
#: migration can translate old snapshots instead of mis-applying them.
USER_SNAPSHOT_SCHEMA = "amnesia-user-snapshot/1"

_MIGRATIONS = [
    """
    CREATE TABLE users (
        user_id     INTEGER PRIMARY KEY AUTOINCREMENT,
        login       TEXT NOT NULL UNIQUE,
        oid         BLOB NOT NULL,
        mp_hash     BLOB NOT NULL,
        mp_salt     BLOB NOT NULL,
        reg_id      TEXT,
        pid_hash    BLOB,
        pid_salt    BLOB
    );
    CREATE TABLE accounts (
        account_id  INTEGER PRIMARY KEY AUTOINCREMENT,
        user_id     INTEGER NOT NULL REFERENCES users(user_id) ON DELETE CASCADE,
        username    TEXT NOT NULL,
        domain      TEXT NOT NULL,
        seed        BLOB NOT NULL,
        charset     TEXT NOT NULL,
        length      INTEGER NOT NULL,
        UNIQUE (user_id, username, domain)
    );
    CREATE INDEX accounts_by_user ON accounts(user_id);
    """,
    # v2: the §VIII "vault" extension — user-chosen passwords stored as
    # AEAD ciphertext under a key derived from the bilateral intermediate.
    """
    CREATE TABLE vault (
        account_id  INTEGER PRIMARY KEY
                    REFERENCES accounts(account_id) ON DELETE CASCADE,
        ciphertext  BLOB NOT NULL
    );
    """,
    # v3: server configuration (e.g. the persistent TLS identity key, so
    # the self-signed certificate survives restarts and client pins hold).
    """
    CREATE TABLE server_config (
        key     TEXT PRIMARY KEY,
        value   BLOB NOT NULL
    );
    """,
]


@dataclass(frozen=True)
class UserRecord:
    """A row of the users table (see Table I)."""

    user_id: int
    login: str
    oid: bytes
    mp_hash: bytes
    mp_salt: bytes
    reg_id: str | None
    pid_hash: bytes | None
    pid_salt: bytes | None


@dataclass(frozen=True)
class AccountRecord:
    """A ``(µ, d, σ)`` entry plus its password policy."""

    account_id: int
    user_id: int
    username: str
    domain: str
    seed: bytes
    charset: str
    length: int


def canonical_snapshot_bytes(doc: dict) -> bytes:
    """Canonical byte encoding of a snapshot document.

    Sorted keys, no whitespace, UTF-8: two equal databases export
    byte-identical snapshots, so replication can compare/fingerprint
    them without a structural diff.
    """

    return json.dumps(
        doc, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("utf-8")


def _user_from_row(row) -> UserRecord:
    return UserRecord(
        user_id=row["user_id"],
        login=row["login"],
        oid=row["oid"],
        mp_hash=row["mp_hash"],
        mp_salt=row["mp_salt"],
        reg_id=row["reg_id"],
        pid_hash=row["pid_hash"],
        pid_salt=row["pid_salt"],
    )


def _account_from_row(row) -> AccountRecord:
    return AccountRecord(
        account_id=row["account_id"],
        user_id=row["user_id"],
        username=row["username"],
        domain=row["domain"],
        seed=row["seed"],
        charset=row["charset"],
        length=row["length"],
    )


#: Width of one id namespace (see :attr:`ServerDatabase.id_base`).
ID_NAMESPACE_SPAN = 2**32


class ServerDatabase:
    """Data-access layer for the Amnesia server.

    ``id_base`` partitions the ``user_id``/``account_id`` spaces: a
    database allocates fresh ids from ``(id_base, id_base + 2**32]``.
    A single server keeps the default ``0`` (ids start at 1, exactly
    the old AUTOINCREMENT behaviour); cluster shards each get a
    distinct base so that migrating a user between shards can preserve
    the client-held ids without ever colliding with rows the target
    shard allocated itself.  Allocation is MAX+1 within the namespace,
    so explicitly inserted rows (replication, snapshots) are respected.
    """

    def __init__(self, path: str = ":memory:", id_base: int = 0) -> None:
        if id_base < 0 or id_base % ID_NAMESPACE_SPAN:
            raise ValidationError(
                f"id_base must be a multiple of {ID_NAMESPACE_SPAN}, got {id_base}"
            )
        self.id_base = id_base
        self.db = Database(path)
        self.db.migrate(_MIGRATIONS)

    def _next_id(self, table: str, column: str) -> int:
        row = self.db.query_one(
            f"SELECT MAX({column}) AS top FROM {table} "
            f"WHERE {column} > ? AND {column} <= ?",
            (self.id_base, self.id_base + ID_NAMESPACE_SPAN),
        )
        top = row["top"] if row is not None else None
        return self.id_base + 1 if top is None else top + 1

    def close(self) -> None:
        self.db.close()

    # -- users ----------------------------------------------------------------

    def create_user(
        self, login: str, oid: bytes, mp_hash: bytes, mp_salt: bytes
    ) -> UserRecord:
        if self.db.query_one("SELECT 1 FROM users WHERE login = ?", (login,)):
            raise ConflictError(f"user {login!r} already exists")
        with self.db.transaction():
            user_id = self._next_id("users", "user_id")
            self.db.execute(
                "INSERT INTO users (user_id, login, oid, mp_hash, mp_salt) "
                "VALUES (?, ?, ?, ?, ?)",
                (user_id, login, oid, mp_hash, mp_salt),
            )
        return self.user_by_id(user_id)

    def user_by_login(self, login: str) -> UserRecord:
        row = self.db.query_one("SELECT * FROM users WHERE login = ?", (login,))
        if row is None:
            raise NotFoundError(f"no user {login!r}")
        return _user_from_row(row)

    def user_by_id(self, user_id: int) -> UserRecord:
        row = self.db.query_one("SELECT * FROM users WHERE user_id = ?", (user_id,))
        if row is None:
            raise NotFoundError(f"no user id {user_id}")
        return _user_from_row(row)

    def set_master_password(self, user_id: int, mp_hash: bytes, mp_salt: bytes) -> None:
        self.user_by_id(user_id)  # raises if missing
        with self.db.transaction():
            self.db.execute(
                "UPDATE users SET mp_hash = ?, mp_salt = ? WHERE user_id = ?",
                (mp_hash, mp_salt, user_id),
            )

    def set_phone_registration(
        self, user_id: int, reg_id: str, pid_hash: bytes, pid_salt: bytes
    ) -> None:
        self.user_by_id(user_id)
        with self.db.transaction():
            self.db.execute(
                "UPDATE users SET reg_id = ?, pid_hash = ?, pid_salt = ? "
                "WHERE user_id = ?",
                (reg_id, pid_hash, pid_salt, user_id),
            )

    def clear_phone_registration(self, user_id: int) -> None:
        """Purge old-phone data after recovery (§III-C1)."""
        self.user_by_id(user_id)
        with self.db.transaction():
            self.db.execute(
                "UPDATE users SET reg_id = NULL, pid_hash = NULL, pid_salt = NULL "
                "WHERE user_id = ?",
                (user_id,),
            )

    def all_users(self) -> list[UserRecord]:
        # ORDER BY the primary key: snapshot exports iterate this and a
        # bare SELECT makes no ordering promise, which would make the
        # "byte-stable snapshot" guarantee depend on SQLite internals.
        return [
            _user_from_row(r)
            for r in self.db.query_all("SELECT * FROM users ORDER BY user_id")
        ]

    def put_user(self, record: UserRecord) -> None:
        """Idempotent row-level upsert preserving the explicit user_id.

        Replication replays rows, not logical operations: replaying
        ``create_user`` on a replica would let AUTOINCREMENT assign a
        different user_id, silently breaking every client-held account
        id across a failover.
        """

        with self.db.transaction():
            self.db.execute(
                "INSERT OR REPLACE INTO users "
                "(user_id, login, oid, mp_hash, mp_salt, reg_id, pid_hash, pid_salt) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    record.user_id,
                    record.login,
                    record.oid,
                    record.mp_hash,
                    record.mp_salt,
                    record.reg_id,
                    record.pid_hash,
                    record.pid_salt,
                ),
            )

    def delete_user(self, user_id: int) -> None:
        """Remove a user and (via cascade) accounts + vault rows."""

        with self.db.transaction():
            self.db.execute("DELETE FROM users WHERE user_id = ?", (user_id,))

    # -- accounts ---------------------------------------------------------------

    def add_account(
        self,
        user_id: int,
        username: str,
        domain: str,
        seed: bytes,
        charset: str,
        length: int,
    ) -> AccountRecord:
        self.user_by_id(user_id)
        if self.db.query_one(
            "SELECT 1 FROM accounts WHERE user_id = ? AND username = ? AND domain = ?",
            (user_id, username, domain),
        ):
            raise ConflictError(f"account ({username!r}, {domain!r}) already exists")
        with self.db.transaction():
            account_id = self._next_id("accounts", "account_id")
            self.db.execute(
                "INSERT INTO accounts "
                "(account_id, user_id, username, domain, seed, charset, length)"
                " VALUES (?, ?, ?, ?, ?, ?, ?)",
                (account_id, user_id, username, domain, seed, charset, length),
            )
        return self.account_by_id(account_id)

    def account_by_id(self, account_id: int) -> AccountRecord:
        row = self.db.query_one(
            "SELECT * FROM accounts WHERE account_id = ?", (account_id,)
        )
        if row is None:
            raise NotFoundError(f"no account id {account_id}")
        return _account_from_row(row)

    def account_for(self, user_id: int, username: str, domain: str) -> AccountRecord:
        row = self.db.query_one(
            "SELECT * FROM accounts WHERE user_id = ? AND username = ? AND domain = ?",
            (user_id, username, domain),
        )
        if row is None:
            raise NotFoundError(f"no account ({username!r}, {domain!r})")
        return _account_from_row(row)

    def accounts_for_user(self, user_id: int) -> list[AccountRecord]:
        rows = self.db.query_all(
            "SELECT * FROM accounts WHERE user_id = ? ORDER BY account_id", (user_id,)
        )
        return [_account_from_row(r) for r in rows]

    def update_seed(self, account_id: int, seed: bytes) -> None:
        """Rotate σ — this is how a user "changes" a site password (§III-A2)."""
        self.account_by_id(account_id)
        with self.db.transaction():
            self.db.execute(
                "UPDATE accounts SET seed = ? WHERE account_id = ?", (seed, account_id)
            )

    def update_policy(self, account_id: int, charset: str, length: int) -> None:
        self.account_by_id(account_id)
        with self.db.transaction():
            self.db.execute(
                "UPDATE accounts SET charset = ?, length = ? WHERE account_id = ?",
                (charset, length, account_id),
            )

    def put_account(self, record: AccountRecord) -> None:
        """Idempotent row-level upsert preserving the explicit account_id.

        See :meth:`put_user` for why replication must preserve ids.
        """

        with self.db.transaction():
            self.db.execute(
                "INSERT OR REPLACE INTO accounts "
                "(account_id, user_id, username, domain, seed, charset, length) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    record.account_id,
                    record.user_id,
                    record.username,
                    record.domain,
                    record.seed,
                    record.charset,
                    record.length,
                ),
            )

    def delete_account(self, account_id: int) -> None:
        self.account_by_id(account_id)
        with self.db.transaction():
            self.db.execute("DELETE FROM accounts WHERE account_id = ?", (account_id,))

    # -- vault (the §VIII chosen-password extension) ------------------------------

    def store_vault_entry(self, account_id: int, ciphertext: bytes) -> None:
        self.account_by_id(account_id)
        with self.db.transaction():
            self.db.execute(
                "INSERT INTO vault (account_id, ciphertext) VALUES (?, ?) "
                "ON CONFLICT(account_id) DO UPDATE SET ciphertext = "
                "excluded.ciphertext",
                (account_id, ciphertext),
            )

    def vault_entry(self, account_id: int) -> bytes | None:
        row = self.db.query_one(
            "SELECT ciphertext FROM vault WHERE account_id = ?", (account_id,)
        )
        return row["ciphertext"] if row is not None else None

    def delete_vault_entry(self, account_id: int) -> None:
        with self.db.transaction():
            self.db.execute(
                "DELETE FROM vault WHERE account_id = ?", (account_id,)
            )

    # -- versioned per-user snapshots (replication catch-up) -----------------------

    def export_user_snapshot(self, login: str) -> dict:
        """Export one user's durable state as a versioned, deterministic doc.

        PALPAS's observation (and Table I's content) is that the state
        worth synchronising is small: the per-user salts/ids plus one
        ``(µ, d, σ)`` row per account.  The export is deterministic —
        accounts and vault rows are ordered by primary key, and binary
        columns are hex-encoded — so :func:`canonical_snapshot_bytes`
        yields byte-identical output for byte-identical databases.

        ``server_config`` (e.g. the TLS identity key) is deliberately
        NOT part of the snapshot: it is per-server state, not per-user.
        """

        user = self.user_by_login(login)
        accounts = self.accounts_for_user(user.user_id)  # ORDER BY account_id
        vault_rows = self.db.query_all(
            "SELECT v.account_id, v.ciphertext FROM vault v "
            "JOIN accounts a ON a.account_id = v.account_id "
            "WHERE a.user_id = ? ORDER BY v.account_id",
            (user.user_id,),
        )
        return {
            "schema": USER_SNAPSHOT_SCHEMA,
            "user": {
                "user_id": user.user_id,
                "login": user.login,
                "oid": user.oid.hex(),
                "mp_hash": user.mp_hash.hex(),
                "mp_salt": user.mp_salt.hex(),
                "reg_id": user.reg_id,
                "pid_hash": user.pid_hash.hex() if user.pid_hash else None,
                "pid_salt": user.pid_salt.hex() if user.pid_salt else None,
            },
            "accounts": [
                {
                    "account_id": a.account_id,
                    "user_id": a.user_id,
                    "username": a.username,
                    "domain": a.domain,
                    "seed": a.seed.hex(),
                    "charset": a.charset,
                    "length": a.length,
                }
                for a in accounts
            ],
            "vault": [
                {"account_id": row["account_id"], "ciphertext": row["ciphertext"].hex()}
                for row in vault_rows
            ],
        }

    def apply_user_snapshot(self, doc: dict) -> UserRecord:
        """Install a snapshot produced by :meth:`export_user_snapshot`.

        Replaces the user's entire durable state (idempotent): stale
        accounts/vault rows not present in the snapshot are removed via
        the user-delete cascade before the rows are re-inserted with
        their original primary keys.
        """

        if doc.get("schema") != USER_SNAPSHOT_SCHEMA:
            raise ValidationError(
                f"unsupported snapshot schema {doc.get('schema')!r}"
            )
        u = doc["user"]
        record = UserRecord(
            user_id=int(u["user_id"]),
            login=u["login"],
            oid=bytes.fromhex(u["oid"]),
            mp_hash=bytes.fromhex(u["mp_hash"]),
            mp_salt=bytes.fromhex(u["mp_salt"]),
            reg_id=u["reg_id"],
            pid_hash=bytes.fromhex(u["pid_hash"]) if u["pid_hash"] else None,
            pid_salt=bytes.fromhex(u["pid_salt"]) if u["pid_salt"] else None,
        )
        # Drop any previous incarnation (cascades to accounts + vault),
        # then rebuild from the snapshot rows.  Delete by login as well
        # as by id so a target that assigned a different id to this
        # login (e.g. a rebalance destination) cannot hit the UNIQUE
        # login constraint.
        with self.db.transaction():
            self.db.execute("DELETE FROM users WHERE login = ?", (record.login,))
        self.delete_user(record.user_id)
        self.put_user(record)
        for a in doc["accounts"]:
            self.put_account(
                AccountRecord(
                    account_id=int(a["account_id"]),
                    user_id=int(a["user_id"]),
                    username=a["username"],
                    domain=a["domain"],
                    seed=bytes.fromhex(a["seed"]),
                    charset=a["charset"],
                    length=int(a["length"]),
                )
            )
        for v in doc["vault"]:
            self.store_vault_entry(int(v["account_id"]), bytes.fromhex(v["ciphertext"]))
        return record

    # -- server configuration ------------------------------------------------------

    def set_config(self, key: str, value: bytes) -> None:
        with self.db.transaction():
            self.db.execute(
                "INSERT INTO server_config (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (key, value),
            )

    def get_config(self, key: str) -> bytes | None:
        row = self.db.query_one(
            "SELECT value FROM server_config WHERE key = ?", (key,)
        )
        return row["value"] if row is not None else None
