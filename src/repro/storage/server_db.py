"""Server-side database: Table I made concrete.

Per user the server stores (Table I):

- ``O_id`` — the static 512-bit online id (plaintext; it is a server
  secret, part of ``Ks``);
- ``H(MP + salt)`` and the salt — master-password verifier;
- the rendezvous registration id (plaintext);
- ``H(P_id + salt)`` and its salt — phone association for recovery;
- one ``(µ, d, σ)`` row per managed account, where σ is the 256-bit
  seed (plaintext — it is a server-side secret) plus the per-account
  password policy (charset/length), which §III-B says the user may
  adjust per site.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.database import Database
from repro.util.errors import ConflictError, NotFoundError

_MIGRATIONS = [
    """
    CREATE TABLE users (
        user_id     INTEGER PRIMARY KEY AUTOINCREMENT,
        login       TEXT NOT NULL UNIQUE,
        oid         BLOB NOT NULL,
        mp_hash     BLOB NOT NULL,
        mp_salt     BLOB NOT NULL,
        reg_id      TEXT,
        pid_hash    BLOB,
        pid_salt    BLOB
    );
    CREATE TABLE accounts (
        account_id  INTEGER PRIMARY KEY AUTOINCREMENT,
        user_id     INTEGER NOT NULL REFERENCES users(user_id) ON DELETE CASCADE,
        username    TEXT NOT NULL,
        domain      TEXT NOT NULL,
        seed        BLOB NOT NULL,
        charset     TEXT NOT NULL,
        length      INTEGER NOT NULL,
        UNIQUE (user_id, username, domain)
    );
    CREATE INDEX accounts_by_user ON accounts(user_id);
    """,
    # v2: the §VIII "vault" extension — user-chosen passwords stored as
    # AEAD ciphertext under a key derived from the bilateral intermediate.
    """
    CREATE TABLE vault (
        account_id  INTEGER PRIMARY KEY
                    REFERENCES accounts(account_id) ON DELETE CASCADE,
        ciphertext  BLOB NOT NULL
    );
    """,
    # v3: server configuration (e.g. the persistent TLS identity key, so
    # the self-signed certificate survives restarts and client pins hold).
    """
    CREATE TABLE server_config (
        key     TEXT PRIMARY KEY,
        value   BLOB NOT NULL
    );
    """,
]


@dataclass(frozen=True)
class UserRecord:
    """A row of the users table (see Table I)."""

    user_id: int
    login: str
    oid: bytes
    mp_hash: bytes
    mp_salt: bytes
    reg_id: str | None
    pid_hash: bytes | None
    pid_salt: bytes | None


@dataclass(frozen=True)
class AccountRecord:
    """A ``(µ, d, σ)`` entry plus its password policy."""

    account_id: int
    user_id: int
    username: str
    domain: str
    seed: bytes
    charset: str
    length: int


def _user_from_row(row) -> UserRecord:
    return UserRecord(
        user_id=row["user_id"],
        login=row["login"],
        oid=row["oid"],
        mp_hash=row["mp_hash"],
        mp_salt=row["mp_salt"],
        reg_id=row["reg_id"],
        pid_hash=row["pid_hash"],
        pid_salt=row["pid_salt"],
    )


def _account_from_row(row) -> AccountRecord:
    return AccountRecord(
        account_id=row["account_id"],
        user_id=row["user_id"],
        username=row["username"],
        domain=row["domain"],
        seed=row["seed"],
        charset=row["charset"],
        length=row["length"],
    )


class ServerDatabase:
    """Data-access layer for the Amnesia server."""

    def __init__(self, path: str = ":memory:") -> None:
        self.db = Database(path)
        self.db.migrate(_MIGRATIONS)

    def close(self) -> None:
        self.db.close()

    # -- users ----------------------------------------------------------------

    def create_user(
        self, login: str, oid: bytes, mp_hash: bytes, mp_salt: bytes
    ) -> UserRecord:
        if self.db.query_one("SELECT 1 FROM users WHERE login = ?", (login,)):
            raise ConflictError(f"user {login!r} already exists")
        with self.db.transaction():
            cursor = self.db.execute(
                "INSERT INTO users (login, oid, mp_hash, mp_salt) VALUES (?, ?, ?, ?)",
                (login, oid, mp_hash, mp_salt),
            )
        return self.user_by_id(cursor.lastrowid)

    def user_by_login(self, login: str) -> UserRecord:
        row = self.db.query_one("SELECT * FROM users WHERE login = ?", (login,))
        if row is None:
            raise NotFoundError(f"no user {login!r}")
        return _user_from_row(row)

    def user_by_id(self, user_id: int) -> UserRecord:
        row = self.db.query_one("SELECT * FROM users WHERE user_id = ?", (user_id,))
        if row is None:
            raise NotFoundError(f"no user id {user_id}")
        return _user_from_row(row)

    def set_master_password(self, user_id: int, mp_hash: bytes, mp_salt: bytes) -> None:
        self.user_by_id(user_id)  # raises if missing
        with self.db.transaction():
            self.db.execute(
                "UPDATE users SET mp_hash = ?, mp_salt = ? WHERE user_id = ?",
                (mp_hash, mp_salt, user_id),
            )

    def set_phone_registration(
        self, user_id: int, reg_id: str, pid_hash: bytes, pid_salt: bytes
    ) -> None:
        self.user_by_id(user_id)
        with self.db.transaction():
            self.db.execute(
                "UPDATE users SET reg_id = ?, pid_hash = ?, pid_salt = ? "
                "WHERE user_id = ?",
                (reg_id, pid_hash, pid_salt, user_id),
            )

    def clear_phone_registration(self, user_id: int) -> None:
        """Purge old-phone data after recovery (§III-C1)."""
        self.user_by_id(user_id)
        with self.db.transaction():
            self.db.execute(
                "UPDATE users SET reg_id = NULL, pid_hash = NULL, pid_salt = NULL "
                "WHERE user_id = ?",
                (user_id,),
            )

    def all_users(self) -> list[UserRecord]:
        return [_user_from_row(r) for r in self.db.query_all("SELECT * FROM users")]

    # -- accounts ---------------------------------------------------------------

    def add_account(
        self,
        user_id: int,
        username: str,
        domain: str,
        seed: bytes,
        charset: str,
        length: int,
    ) -> AccountRecord:
        self.user_by_id(user_id)
        if self.db.query_one(
            "SELECT 1 FROM accounts WHERE user_id = ? AND username = ? AND domain = ?",
            (user_id, username, domain),
        ):
            raise ConflictError(f"account ({username!r}, {domain!r}) already exists")
        with self.db.transaction():
            cursor = self.db.execute(
                "INSERT INTO accounts (user_id, username, domain, seed, charset, length)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                (user_id, username, domain, seed, charset, length),
            )
        return self.account_by_id(cursor.lastrowid)

    def account_by_id(self, account_id: int) -> AccountRecord:
        row = self.db.query_one(
            "SELECT * FROM accounts WHERE account_id = ?", (account_id,)
        )
        if row is None:
            raise NotFoundError(f"no account id {account_id}")
        return _account_from_row(row)

    def account_for(self, user_id: int, username: str, domain: str) -> AccountRecord:
        row = self.db.query_one(
            "SELECT * FROM accounts WHERE user_id = ? AND username = ? AND domain = ?",
            (user_id, username, domain),
        )
        if row is None:
            raise NotFoundError(f"no account ({username!r}, {domain!r})")
        return _account_from_row(row)

    def accounts_for_user(self, user_id: int) -> list[AccountRecord]:
        rows = self.db.query_all(
            "SELECT * FROM accounts WHERE user_id = ? ORDER BY account_id", (user_id,)
        )
        return [_account_from_row(r) for r in rows]

    def update_seed(self, account_id: int, seed: bytes) -> None:
        """Rotate σ — this is how a user "changes" a site password (§III-A2)."""
        self.account_by_id(account_id)
        with self.db.transaction():
            self.db.execute(
                "UPDATE accounts SET seed = ? WHERE account_id = ?", (seed, account_id)
            )

    def update_policy(self, account_id: int, charset: str, length: int) -> None:
        self.account_by_id(account_id)
        with self.db.transaction():
            self.db.execute(
                "UPDATE accounts SET charset = ?, length = ? WHERE account_id = ?",
                (charset, length, account_id),
            )

    def delete_account(self, account_id: int) -> None:
        self.account_by_id(account_id)
        with self.db.transaction():
            self.db.execute("DELETE FROM accounts WHERE account_id = ?", (account_id,))

    # -- vault (the §VIII chosen-password extension) ------------------------------

    def store_vault_entry(self, account_id: int, ciphertext: bytes) -> None:
        self.account_by_id(account_id)
        with self.db.transaction():
            self.db.execute(
                "INSERT INTO vault (account_id, ciphertext) VALUES (?, ?) "
                "ON CONFLICT(account_id) DO UPDATE SET ciphertext = "
                "excluded.ciphertext",
                (account_id, ciphertext),
            )

    def vault_entry(self, account_id: int) -> bytes | None:
        row = self.db.query_one(
            "SELECT ciphertext FROM vault WHERE account_id = ?", (account_id,)
        )
        return row["ciphertext"] if row is not None else None

    def delete_vault_entry(self, account_id: int) -> None:
        with self.db.transaction():
            self.db.execute(
                "DELETE FROM vault WHERE account_id = ?", (account_id,)
            )

    # -- server configuration ------------------------------------------------------

    def set_config(self, key: str, value: bytes) -> None:
        with self.db.transaction():
            self.db.execute(
                "INSERT INTO server_config (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (key, value),
            )

    def get_config(self, key: str) -> bytes | None:
        row = self.db.query_one(
            "SELECT value FROM server_config WHERE key = ?", (key,)
        )
        return row["value"] if row is not None else None
