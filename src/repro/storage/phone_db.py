"""Phone-side database: Table II made concrete.

The Amnesia application stores ``Kp = (P_id, T_E)`` — the 512-bit phone
id and the N-entry table of 256-bit random values — in SQLite (§V-B),
alongside the server's self-signed certificate for pinning.
"""

from __future__ import annotations

from repro.storage.database import Database
from repro.util.errors import NotFoundError, StorageError, ValidationError

_MIGRATIONS = [
    """
    CREATE TABLE identity (
        key     TEXT PRIMARY KEY,
        value   BLOB NOT NULL
    );
    CREATE TABLE entry_table (
        idx     INTEGER PRIMARY KEY,
        value   BLOB NOT NULL
    );
    """,
]

_KEY_PID = "pid"
_KEY_CERT_IDENTITY = "server_cert_identity"
_KEY_CERT_PUBKEY = "server_cert_pubkey"
_KEY_REG_ID = "registration_id"


class PhoneDatabase:
    """Data-access layer for the Amnesia mobile application."""

    def __init__(self, path: str = ":memory:") -> None:
        self.db = Database(path)
        self.db.migrate(_MIGRATIONS)

    def close(self) -> None:
        self.db.close()

    # -- identity values -------------------------------------------------------

    def _set_value(self, key: str, value: bytes) -> None:
        with self.db.transaction():
            self.db.execute(
                "INSERT INTO identity (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (key, value),
            )

    def _get_value(self, key: str) -> bytes:
        row = self.db.query_one("SELECT value FROM identity WHERE key = ?", (key,))
        if row is None:
            raise NotFoundError(f"identity value {key!r} not set")
        return row["value"]

    def set_pid(self, pid: bytes) -> None:
        if len(pid) != 64:
            raise ValidationError(f"P_id must be 64 bytes (512 bits), got {len(pid)}")
        self._set_value(_KEY_PID, pid)

    def pid(self) -> bytes:
        return self._get_value(_KEY_PID)

    def set_registration_id(self, reg_id: str) -> None:
        self._set_value(_KEY_REG_ID, reg_id.encode("utf-8"))

    def registration_id(self) -> str:
        return self._get_value(_KEY_REG_ID).decode("utf-8")

    def set_server_certificate(self, identity: str, public_key: bytes) -> None:
        self._set_value(_KEY_CERT_IDENTITY, identity.encode("utf-8"))
        self._set_value(_KEY_CERT_PUBKEY, public_key)

    def server_certificate(self) -> tuple[str, bytes]:
        return (
            self._get_value(_KEY_CERT_IDENTITY).decode("utf-8"),
            self._get_value(_KEY_CERT_PUBKEY),
        )

    # -- entry table -----------------------------------------------------------

    def store_entry_table(self, entries: list[bytes]) -> None:
        """Replace the whole table (install or recovery re-keying)."""
        if not entries:
            raise ValidationError("entry table cannot be empty")
        if any(len(e) != 32 for e in entries):
            raise ValidationError("every entry must be 32 bytes (256 bits)")
        with self.db.transaction():
            self.db.execute("DELETE FROM entry_table")
            for index, value in enumerate(entries):
                self.db.execute(
                    "INSERT INTO entry_table (idx, value) VALUES (?, ?)",
                    (index, value),
                )

    def entry_table(self) -> list[bytes]:
        rows = self.db.query_all("SELECT idx, value FROM entry_table ORDER BY idx")
        if not rows:
            raise StorageError("entry table is empty — application not initialised")
        expected = list(range(len(rows)))
        actual = [row["idx"] for row in rows]
        if actual != expected:
            raise StorageError("entry table indices are not contiguous")
        return [row["value"] for row in rows]

    def entry(self, index: int) -> bytes:
        row = self.db.query_one(
            "SELECT value FROM entry_table WHERE idx = ?", (index,)
        )
        if row is None:
            raise NotFoundError(f"no entry at index {index}")
        return row["value"]

    def entry_count(self) -> int:
        row = self.db.query_one("SELECT COUNT(*) AS n FROM entry_table")
        return int(row["n"])

    def wipe(self) -> None:
        """Factory-reset the application storage."""
        with self.db.transaction():
            self.db.execute("DELETE FROM identity")
            self.db.execute("DELETE FROM entry_table")
