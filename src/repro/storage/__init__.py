"""SQLite persistence, mirroring the prototype's databases.

The paper stores the server-side secrets and functional variables in a
SQLite database managed by a "database handler" component (§V-A), and
the phone app does the same for ``Kp`` (§V-B). This package provides
the same two handlers over :mod:`sqlite3`:

- :class:`~repro.storage.server_db.ServerDatabase` — Table I's layout:
  per-user ``O_id``, hashed+salted master password, registration id,
  hashed+salted ``P_id``, and the ``(µ, d, σ)`` account entries.
- :class:`~repro.storage.phone_db.PhoneDatabase` — Table II's layout:
  ``P_id`` and the N-entry table, plus the pinned server certificate.
"""

from repro.storage.database import Database
from repro.storage.server_db import ServerDatabase, UserRecord, AccountRecord
from repro.storage.phone_db import PhoneDatabase

__all__ = [
    "Database",
    "ServerDatabase",
    "UserRecord",
    "AccountRecord",
    "PhoneDatabase",
]
