"""Thin SQLite wrapper shared by the server and phone databases.

Adds the few things raw :mod:`sqlite3` lacks for library use: explicit
schema versioning, a context-managed transaction helper, and uniform
error translation into :class:`~repro.util.errors.StorageError`.
"""

from __future__ import annotations

import sqlite3
from contextlib import contextmanager
from typing import Any, Iterable, Iterator, Sequence

from repro.util.errors import StorageError


class Database:
    """One SQLite connection with schema management."""

    def __init__(self, path: str = ":memory:") -> None:
        try:
            # check_same_thread=False: the real-socket deployment serves
            # requests from a thread pool and serialises database access
            # with its own lock; the simulator is single-threaded anyway.
            self._conn = sqlite3.connect(path, check_same_thread=False)
        except sqlite3.Error as error:
            raise StorageError(f"cannot open database {path!r}: {error}") from error
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA foreign_keys = ON")
        self.path = path

    # -- schema --------------------------------------------------------------

    def schema_version(self) -> int:
        row = self._conn.execute("PRAGMA user_version").fetchone()
        return int(row[0])

    def migrate(self, migrations: Sequence[str]) -> None:
        """Apply *migrations* (one SQL script per version) idempotently.

        ``migrations[i]`` moves the schema from version ``i`` to
        ``i + 1``; already-applied scripts are skipped based on
        ``PRAGMA user_version``.
        """
        current = self.schema_version()
        for version, script in enumerate(migrations, start=1):
            if version <= current:
                continue
            try:
                with self.transaction():
                    self._conn.executescript(script)
                    self._conn.execute(f"PRAGMA user_version = {version}")
            except sqlite3.Error as error:
                raise StorageError(
                    f"migration to version {version} failed: {error}"
                ) from error

    # -- statements ----------------------------------------------------------

    def execute(self, sql: str, params: Iterable[Any] = ()) -> sqlite3.Cursor:
        try:
            return self._conn.execute(sql, tuple(params))
        except sqlite3.Error as error:
            raise StorageError(f"execute failed: {error}") from error

    def query_one(self, sql: str, params: Iterable[Any] = ()) -> sqlite3.Row | None:
        return self.execute(sql, params).fetchone()

    def query_all(self, sql: str, params: Iterable[Any] = ()) -> list[sqlite3.Row]:
        return self.execute(sql, params).fetchall()

    @contextmanager
    def transaction(self) -> Iterator[None]:
        """Commit on success, roll back on any exception."""
        try:
            yield
            self._conn.commit()
        except BaseException:
            self._conn.rollback()
            raise

    def commit(self) -> None:
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
