"""A browser talking to the Amnesia server.

Wraps the generic HTTP client with the Amnesia API so examples, tests
and benchmarks read like user actions: ``signup``, ``login``,
``add_account``, ``generate_password``. The synchronous methods drive
the simulation kernel until the server responds — including the
blocking password generation, which internally spans the whole
server → GCM → phone → server pipeline.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.faults.retry import RetryPolicy
from repro.net.certificates import Certificate, CertificateStore
from repro.net.tls import SecureStack
from repro.server.service import AMNESIA_SERVICE
from repro.sim.kernel import Simulator
from repro.util.errors import (
    AuthenticationError,
    ConflictError,
    NotFoundError,
    RateLimitedError,
    ReproError,
    UnavailableError,
    ValidationError,
)
from repro.web.client import SimHttpClient
from repro.web.http import HttpResponse


def _raise_for(response: HttpResponse) -> None:
    if response.ok:
        return
    try:
        body = response.json()
        message = body.get("error", "")
        retry_after = body.get("retry_after_ms")
    except ReproError:
        message = response.body.decode("utf-8", errors="replace")
        retry_after = None
    if response.status == 401:
        raise AuthenticationError(message)
    if response.status == 404:
        raise NotFoundError(message)
    if response.status == 409:
        raise ConflictError(message)
    if response.status == 429:
        raise RateLimitedError(message, retry_after_ms=retry_after)
    if response.status == 503 and retry_after is not None:
        # A *structured* degradation (fail-fast push, overload) carries a
        # retry-after hint. Legacy 503s (the generation timeout) keep the
        # historical ValidationError below.
        raise UnavailableError(message, retry_after_ms=retry_after)
    raise ValidationError(f"HTTP {response.status}: {message}")


class AmnesiaBrowser:
    """One browser profile (cookie jar included) pointed at a server."""

    def __init__(
        self,
        stack: SecureStack,
        kernel: Simulator,
        server_host: str,
        certificate: Certificate,
        pins: CertificateStore | None = None,
    ) -> None:
        self.http = SimHttpClient(
            stack, kernel, server_host, certificate,
            service=AMNESIA_SERVICE, pins=pins,
        )

    # -- account lifecycle -----------------------------------------------------

    def signup(self, login: str, master_password: str) -> None:
        response = self.http.post(
            "/signup", {"login": login, "master_password": master_password}
        )
        _raise_for(response)

    def login(self, login: str, master_password: str) -> None:
        response = self.http.post(
            "/login", {"login": login, "master_password": master_password}
        )
        _raise_for(response)

    def logout(self) -> None:
        _raise_for(self.http.post("/logout", {}))

    def me(self) -> Dict[str, Any]:
        response = self.http.get("/me")
        _raise_for(response)
        return response.json()

    # -- website accounts --------------------------------------------------------

    def add_account(
        self,
        username: str,
        domain: str,
        length: int | None = None,
        charset: str | None = None,
        classes: Dict[str, bool] | None = None,
    ) -> int:
        payload: Dict[str, Any] = {"username": username, "domain": domain}
        if length is not None:
            payload["length"] = length
        if charset is not None:
            payload["charset"] = charset
        if classes is not None:
            payload["classes"] = classes
        response = self.http.post("/accounts", payload)
        _raise_for(response)
        return int(response.json()["account_id"])

    def accounts(self) -> list[Dict[str, Any]]:
        response = self.http.get("/accounts")
        _raise_for(response)
        return response.json()["accounts"]

    def rotate_password(self, account_id: int) -> None:
        _raise_for(self.http.post(f"/accounts/{account_id}/rotate", {}))

    def update_policy(
        self,
        account_id: int,
        length: int | None = None,
        charset: str | None = None,
        classes: Dict[str, bool] | None = None,
    ) -> None:
        payload: Dict[str, Any] = {}
        if length is not None:
            payload["length"] = length
        if charset is not None:
            payload["charset"] = charset
        if classes is not None:
            payload["classes"] = classes
        _raise_for(self.http.put(f"/accounts/{account_id}/policy", payload))

    def delete_account(self, account_id: int) -> None:
        _raise_for(self.http.delete(f"/accounts/{account_id}"))

    # -- pairing and generation ----------------------------------------------------

    def start_pairing(self) -> str:
        """Ask the server for a pairing code (displayed on the webpage)."""
        response = self.http.post("/pair/start", {})
        _raise_for(response)
        return response.json()["code"]

    def generate_password(
        self,
        account_id: int,
        retry: RetryPolicy | None = None,
        rng=None,
    ) -> Dict[str, Any]:
        """Request a password; blocks (in simulated time) for the phone.

        With *retry*, transient failures — generation timeouts, fail-fast
        degradations (structured 503 + retry-after), transport errors —
        are retried under the policy with jittered backoff; a retried
        request issues a *fresh* exchange, so a phone answer lost to a
        partition is simply asked for again once the network heals.
        """
        path = f"/accounts/{account_id}/generate"
        if retry is None:
            response = self.http.post(path, {})
        else:
            response = self.http.request_with_retry(
                "POST", path, policy=retry, rng=rng, json_body={}
            )
        _raise_for(response)
        return response.json()

    # -- vault (§VIII extension) -------------------------------------------------

    def vault_store(self, account_id: int, password: str) -> None:
        """Store a chosen password; blocks for the phone's token."""
        response = self.http.put(
            f"/accounts/{account_id}/vault", {"password": password}
        )
        _raise_for(response)

    def vault_retrieve(self, account_id: int) -> str:
        """Retrieve a chosen password; blocks for the phone's token."""
        response = self.http.post(f"/accounts/{account_id}/vault/retrieve", {})
        _raise_for(response)
        return response.json()["password"]

    def vault_delete(self, account_id: int) -> None:
        _raise_for(self.http.delete(f"/accounts/{account_id}/vault"))

    # -- recovery -------------------------------------------------------------------

    def start_master_change(self) -> Dict[str, Any]:
        """Blocks until the phone confirms (or the server times out)."""
        response = self.http.post("/recover/master/start", {})
        _raise_for(response)
        return response.json()

    def complete_master_change(self, new_master_password: str) -> None:
        response = self.http.post(
            "/recover/master/complete",
            {"new_master_password": new_master_password},
        )
        _raise_for(response)

    def recover_phone(self, backup_b64: str) -> list[Dict[str, Any]]:
        response = self.http.post("/recover/phone", {"backup": backup_b64})
        _raise_for(response)
        return response.json()["passwords"]
