"""Browser auto-filler (the §VI-A hardening).

Table III marks Amnesia unfulfilled on *Resilient-to-Physical-
Observation* "because the generated password is displayed to the user
in text form. However, this issue can be solved with the implementation
of an auto-filler." This module is that auto-filler: it moves the
generated password from the Amnesia response directly into a website's
login/registration form without ever rendering it on screen.

The filler records what was *displayed* versus *filled*, so tests (and
the Bonneau mechanical checks) can verify the shoulder-surfing surface
is actually gone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.client.browser import AmnesiaBrowser
from repro.client.website import DummyWebsite
from repro.util.errors import NotFoundError, ValidationError


@dataclass
class FillEvent:
    """One autofill action (no password material retained)."""

    domain: str
    username: str
    action: str  # "register" | "login" | "change"
    password_displayed: bool


@dataclass
class AutoFiller:
    """Drives websites with generated passwords, never displaying them."""

    browser: AmnesiaBrowser
    events: list[FillEvent] = field(default_factory=list)

    def _account_for(self, domain: str) -> dict:
        """Domain binding is the phishing defence: the filler only ever
        derives a password for the *exact* domain the site presents, so a
        look-alike (paypa1.example for paypal.example) gets nothing —
        there is no managed account to fill from, and the derived
        password for the phish's own domain would be a different string
        anyway (R binds d)."""
        for account in self.browser.accounts():
            if account["domain"] == domain:
                return account
        raise NotFoundError(f"no managed account for {domain!r}")

    def _generate(self, domain: str) -> tuple[str, str]:
        account = self._account_for(domain)
        result = self.browser.generate_password(account["account_id"])
        return account["username"], result["password"]

    def register(self, site: DummyWebsite) -> None:
        """Create the site account with a generated password, unseen."""
        username, password = self._generate(site.domain)
        site.register(username, password)
        self.events.append(
            FillEvent(site.domain, username, "register", password_displayed=False)
        )

    def login(self, site: DummyWebsite) -> None:
        """Log into the site with a freshly regenerated password, unseen."""
        username, password = self._generate(site.domain)
        site.login(username, password)
        self.events.append(
            FillEvent(site.domain, username, "login", password_displayed=False)
        )

    def rotate_and_change(self, site: DummyWebsite) -> None:
        """Rotate the seed and update the site, end to end, unseen."""
        account = self._account_for(site.domain)
        username, old_password = self._generate(site.domain)
        self.browser.rotate_password(account["account_id"])
        __, new_password = self._generate(site.domain)
        if old_password == new_password:
            raise ValidationError("seed rotation produced an identical password")
        site.change_password(username, old_password, new_password)
        self.events.append(
            FillEvent(site.domain, username, "change", password_displayed=False)
        )

    def shoulder_surfing_surface(self) -> int:
        """How many actions exposed a password on screen (target: 0)."""
        return sum(1 for event in self.events if event.password_displayed)
