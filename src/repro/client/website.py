"""A dummy website, as built for the user study (§VII-A).

"We created a dummy site so users can practice adding accounts to
Amnesia" — ours accepts registrations, verifies logins (with salted
hashes like a competent site), and enforces a configurable password
policy so the per-account policy adjustment in Amnesia has something
real to satisfy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.crypto.hashing import salted_hash, verify_salted_hash
from repro.crypto.randomness import RandomSource, SystemRandomSource
from repro.util.errors import AuthenticationError, ConflictError, ValidationError


@dataclass(frozen=True)
class SitePolicy:
    """What the site demands of passwords."""

    min_length: int = 8
    max_length: int = 64
    allow_special: bool = True
    require_digit: bool = False

    def check(self, password: str) -> None:
        if not (self.min_length <= len(password) <= self.max_length):
            raise ValidationError(
                f"password length must be in "
                f"[{self.min_length}, {self.max_length}]"
            )
        if not self.allow_special and any(not c.isalnum() for c in password):
            raise ValidationError("special characters not allowed on this site")
        if self.require_digit and not any(c.isdigit() for c in password):
            raise ValidationError("at least one digit required")


class DummyWebsite:
    """A site with accounts, logins, and (optionally) a password policy."""

    def __init__(
        self,
        domain: str,
        policy: SitePolicy | None = None,
        rng: RandomSource | None = None,
    ) -> None:
        self.domain = domain
        self.policy = policy if policy is not None else SitePolicy()
        self._rng = rng if rng is not None else SystemRandomSource()
        self._accounts: Dict[str, tuple[bytes, bytes]] = {}
        self._comments: list[tuple[str, str]] = []
        self.login_attempts = 0
        self.successful_logins = 0

    def register(self, username: str, password: str) -> None:
        if username in self._accounts:
            raise ConflictError(f"username {username!r} taken on {self.domain}")
        self.policy.check(password)
        salt = self._rng.token_bytes(16)
        self._accounts[username] = (salted_hash(password.encode("utf-8"), salt), salt)

    def login(self, username: str, password: str) -> None:
        """Raises :class:`AuthenticationError` on bad credentials."""
        self.login_attempts += 1
        record = self._accounts.get(username)
        if record is None:
            raise AuthenticationError(f"no such user {username!r}")
        digest, salt = record
        if not verify_salted_hash(password.encode("utf-8"), salt, digest):
            raise AuthenticationError("wrong password")
        self.successful_logins += 1

    def change_password(self, username: str, old: str, new: str) -> None:
        """Reset a password, as the phone-recovery protocol requires the
        user to do on every site (§III-C1)."""
        self.login(username, old)
        self.policy.check(new)
        salt = self._rng.token_bytes(16)
        self._accounts[username] = (salted_hash(new.encode("utf-8"), salt), salt)

    def has_user(self, username: str) -> bool:
        return username in self._accounts

    def post_comment(self, username: str, password: str, text: str) -> None:
        """Post a comment as a logged-in user (user-study task 6 has the
        tester post a comment to prove the generated password works)."""
        self.login(username, password)
        self._comments.append((username, text))

    def comments(self) -> list[tuple[str, str]]:
        return list(self._comments)
