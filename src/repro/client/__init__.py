"""The user's computer: browser, user model, and a dummy website.

The user computer "does not store any variables necessary to generate
particular passwords" (§III-A1) — it is a browser that authenticates to
the Amnesia server with the master password. The dummy website mirrors
the one built for the user study (§VII-A): a site the user registers on
with a generated password, so end-to-end flows can be verified against
a real consumer of the passwords.
"""

from repro.client.browser import AmnesiaBrowser
from repro.client.user import UserModel
from repro.client.website import DummyWebsite
from repro.client.autofill import AutoFiller, FillEvent

__all__ = [
    "AmnesiaBrowser",
    "UserModel",
    "DummyWebsite",
    "AutoFiller",
    "FillEvent",
]
