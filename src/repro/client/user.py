"""A behavioural model of a password-manager user.

The user study (§VII-C) measures habits — reuse, length, creation
technique, change frequency — and the attack experiments need a
population of users whose *non-managed* passwords exhibit them. The
model generates human-like passwords from those habit parameters,
which is what gives the baselines' dictionary attacks something
realistic to crack.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict

from repro.util.errors import ValidationError

# A tiny built-in "human password" vocabulary; enough to make dictionary
# attacks meaningful without shipping a wordlist.
_COMMON_WORDS = [
    "password", "welcome", "dragon", "monkey", "sunshine", "princess",
    "football", "charlie", "shadow", "summer", "freedom", "ginger",
    "pepper", "harley", "buster", "hannah", "thomas", "michael",
]
_COMMON_SUFFIXES = ["", "1", "12", "123", "2015", "2016", "!", "1!", "01"]
_FIRST_NAMES = [
    "alice", "bob", "carol", "david", "emma", "frank", "grace", "henry",
    "isabel", "jack", "karen", "liam", "mary", "nathan", "olivia", "peter",
]


@dataclass
class UserModel:
    """One simulated user: master password plus password habits.

    ``reuse_rate`` is the probability a new site gets an already-used
    password (the paper cites 3.9 sites per password); ``technique``
    matches Figure 4c's categories: ``personal_info``, ``mnemonic``,
    ``other``.
    """

    name: str
    master_password: str
    reuse_rate: float = 0.7
    technique: str = "personal_info"
    seed: int = 0
    _passwords: Dict[str, str] = field(default_factory=dict)
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not (0.0 <= self.reuse_rate <= 1.0):
            raise ValidationError(f"reuse_rate must be in [0,1], got {self.reuse_rate}")
        if self.technique not in ("personal_info", "mnemonic", "other"):
            raise ValidationError(f"unknown technique {self.technique!r}")
        self._rng = random.Random((self.name, self.seed).__repr__())

    # -- human-chosen passwords --------------------------------------------------

    def invent_password(self) -> str:
        """Produce a password the way Figure 4c says people do."""
        if self.technique == "personal_info":
            base = self._rng.choice(_FIRST_NAMES)
            year = self._rng.choice(["1980", "1985", "1990", "1995", "2000"])
            return base + year[-2:] if self._rng.random() < 0.5 else base + year
        if self.technique == "mnemonic":
            word = self._rng.choice(_COMMON_WORDS)
            mangled = word.replace("a", "@").replace("o", "0").replace("i", "1")
            return mangled.capitalize() + self._rng.choice(_COMMON_SUFFIXES)
        return self._rng.choice(_COMMON_WORDS) + self._rng.choice(_COMMON_SUFFIXES)

    def password_for(self, domain: str) -> str:
        """The password this user would pick for *domain*, honouring reuse."""
        if domain in self._passwords:
            return self._passwords[domain]
        if self._passwords and self._rng.random() < self.reuse_rate:
            chosen = self._rng.choice(sorted(self._passwords.values()))
        else:
            chosen = self.invent_password()
        self._passwords[domain] = chosen
        return chosen

    def distinct_passwords(self) -> set[str]:
        return set(self._passwords.values())

    def sites(self) -> list[str]:
        return sorted(self._passwords)
