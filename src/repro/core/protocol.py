"""The four derivations of §III-B, implemented exactly as published.

1. ``R = H(µ_A || d_A || σ_A)`` — the password request (SHA-256, hex).
2. ``T = H(e_{i0} || … || e_{i15})`` — Algorithm 1: split R into
   16 four-hex-digit segments, index the entry table with
   ``int(s_i, 16) mod N``, hash the concatenated entries (SHA-256).
3. ``p = H(T || O_id || σ_A)`` — the intermediate value (SHA-512, hex).
4. ``P = template(p)`` — 32 segments of 4 hex digits mapped through the
   94-character table and truncated to the policy length.

All functions are pure; byte-vs-hex conventions are explicit in each
signature. `R` travels as hex (it is a "64 hex-digit" value in the
paper); entries, ids, and seeds are raw bytes.
"""

from __future__ import annotations

from repro.core.params import DEFAULT_PARAMS, ProtocolParams, SHA256_HEX_LENGTH
from repro.core.secrets import EntryTable
from repro.core.templates import PasswordPolicy
from repro.crypto.hashing import sha256, sha256_hex, sha512_hex
from repro.obs.profiler import profiled
from repro.util.encoding import chunk, int_from_hex, require_hex
from repro.util.errors import ValidationError


@profiled("core.request")
def generate_request(username: str, domain: str, seed: bytes) -> str:
    """Compute the password request ``R = H(µ || d || σ)`` (hex).

    σ's presence prevents a rendezvous eavesdropper from confirming
    which account a request targets by computing ``H(µ || d)`` over
    predictable usernames and domains (§III-B2, §IV-B).
    """
    if not username:
        raise ValidationError("username must be non-empty")
    if not domain:
        raise ValidationError("domain must be non-empty")
    if not isinstance(seed, (bytes, bytearray)) or len(seed) == 0:
        raise ValidationError("seed must be non-empty bytes")
    return sha256_hex(username.encode("utf-8"), domain.encode("utf-8"), bytes(seed))


def token_indices(request_hex: str, params: ProtocolParams = DEFAULT_PARAMS) -> list[int]:
    """The entry-table indices selected by request *R*.

    Algorithm 1's segmentation: consecutive ``l``-hex-digit segments,
    each reduced modulo the table size N. Exposed separately so the
    ablation benchmarks can study index distribution and bias.
    """
    require_hex(request_hex)
    if len(request_hex) != SHA256_HEX_LENGTH:
        raise ValidationError(
            f"request must be {SHA256_HEX_LENGTH} hex digits, got {len(request_hex)}"
        )
    segments = chunk(request_hex, params.segment_hex_length)
    return [int_from_hex(segment) % params.entry_table_size for segment in segments]


@profiled("core.token")
def generate_token(
    request_hex: str,
    entry_table: EntryTable,
    params: ProtocolParams | None = None,
) -> str:
    """Algorithm 1: compute the token ``T`` from request *R* (hex out).

    The phone-side computation: select one entry per segment, then
    ``T = SHA-256(e_0 || e_1 || … || e_15)``.
    """
    effective = params if params is not None else entry_table.params
    if effective.entry_table_size > len(entry_table):
        raise ValidationError(
            f"params expect an entry table of {effective.entry_table_size} "
            f"entries; table has {len(entry_table)}"
        )
    indices = token_indices(request_hex, effective)
    concatenated = b"".join(entry_table[index] for index in indices)
    return sha256_hex(concatenated)


@profiled("core.intermediate")
def intermediate_value(token_hex: str, oid: bytes, seed: bytes) -> str:
    """Server-side ``p = H(T || O_id || σ)`` (SHA-512, 128 hex digits).

    ``T`` is transported in hex but enters the hash as its raw 32-byte
    digest value.
    """
    require_hex(token_hex)
    if len(token_hex) != SHA256_HEX_LENGTH:
        raise ValidationError(
            f"token must be {SHA256_HEX_LENGTH} hex digits, got {len(token_hex)}"
        )
    if len(oid) == 0:
        raise ValidationError("O_id must be non-empty")
    if len(seed) == 0:
        raise ValidationError("seed must be non-empty")
    return sha512_hex(bytes.fromhex(token_hex), bytes(oid), bytes(seed))


@profiled("core.template")
def render_password(
    intermediate_hex: str,
    policy: PasswordPolicy | None = None,
    params: ProtocolParams = DEFAULT_PARAMS,
) -> str:
    """Apply the template function to *p*, yielding the final password."""
    effective_policy = policy if policy is not None else PasswordPolicy()
    return effective_policy.render(intermediate_hex, params.segment_hex_length)


def generate_password(
    username: str,
    domain: str,
    seed: bytes,
    oid: bytes,
    entry_table: EntryTable,
    policy: PasswordPolicy | None = None,
) -> str:
    """The full bilateral pipeline in one call (for tests and baselines).

    In the deployed system the steps run on different machines — R on
    the server, T on the phone, p and P back on the server — but their
    composition is this function, which makes the end-to-end stack
    verifiable against the pure pipeline.
    """
    request = generate_request(username, domain, seed)
    token = generate_token(request, entry_table)
    intermediate = intermediate_value(token, oid, seed)
    return render_password(intermediate, policy, entry_table.params)
