"""The template function and per-account password policies (§III-B4).

The server holds a character table of size ``N_c = 94`` — "lowercase
letters, uppercase letters, numbers, and special characters" — i.e. the
94 printable ASCII characters excluding space. The user may shrink the
character set or the length per account to satisfy a site's password
policy; truncation simply discards trailing characters.
"""

from __future__ import annotations

import math
import string
from dataclasses import dataclass, field

from repro.util.encoding import chunk, int_from_hex
from repro.util.errors import ValidationError

LOWERCASE = string.ascii_lowercase  # 26
UPPERCASE = string.ascii_uppercase  # 26
DIGITS = string.digits  # 10
SPECIAL = "".join(
    chr(code)
    for code in range(33, 127)
    if chr(code) not in string.ascii_letters + string.digits
)  # 32 printable specials

# ASCII order: '!' .. '~'. 26+26+10+32 = 94 = the paper's N_c.
DEFAULT_CHARACTER_TABLE = "".join(chr(code) for code in range(33, 127))

MAX_PASSWORD_LENGTH = 32  # 128 hex digits of SHA-512 / 4 per segment


@dataclass(frozen=True)
class CharacterTable:
    """An indexed table of candidate password characters ``T_c``."""

    characters: str = DEFAULT_CHARACTER_TABLE

    def __post_init__(self) -> None:
        if not self.characters:
            raise ValidationError("character table cannot be empty")
        if len(set(self.characters)) != len(self.characters):
            raise ValidationError("character table must not contain duplicates")

    @property
    def size(self) -> int:
        return len(self.characters)

    def lookup(self, segment_value: int) -> str:
        """``c_i = T_c[g_i mod N_c]`` — the paper's index rule."""
        if segment_value < 0:
            raise ValidationError(f"segment value must be >= 0, got {segment_value}")
        return self.characters[segment_value % self.size]


@dataclass(frozen=True)
class PasswordPolicy:
    """Per-account rendering policy: which characters, how many.

    ``charset`` is an ordered string of unique characters (the adjusted
    ``T_c``); ``length`` truncates the default 32-character output.
    """

    charset: str = DEFAULT_CHARACTER_TABLE
    length: int = MAX_PASSWORD_LENGTH
    table: CharacterTable = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not (1 <= self.length <= MAX_PASSWORD_LENGTH):
            raise ValidationError(
                f"length must be in [1, {MAX_PASSWORD_LENGTH}], got {self.length}"
            )
        object.__setattr__(self, "table", CharacterTable(self.charset))

    @classmethod
    def from_classes(
        cls,
        length: int = MAX_PASSWORD_LENGTH,
        lowercase: bool = True,
        uppercase: bool = True,
        digits: bool = True,
        special: bool = True,
    ) -> "PasswordPolicy":
        """Build a policy from character-class toggles, as the paper's UI
        exposes ("the user can exclude special characters")."""
        charset = ""
        if lowercase:
            charset += LOWERCASE
        if uppercase:
            charset += UPPERCASE
        if digits:
            charset += DIGITS
        if special:
            charset += SPECIAL
        if not charset:
            raise ValidationError("at least one character class must be enabled")
        return cls(charset=charset, length=length)

    def password_space(self) -> int:
        """Number of renderable passwords: ``N_c ^ length`` (§IV-E)."""
        return self.table.size**self.length

    def max_entropy_bits(self) -> float:
        """log2 of the password space — the paper's §IV-E number.

        This is an *upper bound*: it assumes every character is drawn
        uniformly from ``T_c``, which the template function does not
        quite achieve (see :meth:`entropy_bits`).
        """
        return self.length * math.log2(self.table.size)

    def character_entropy_bits(self, segment_hex_length: int = 4) -> float:
        """Exact Shannon entropy of one rendered character.

        The template reduces a ``16^segment_hex_length``-valued segment
        modulo ``N_c``; whenever the segment space is not a multiple of
        ``N_c`` the first ``space mod N_c`` characters receive one
        extra preimage each, so the distribution is slightly
        non-uniform and the true per-character entropy is strictly
        below ``log2(N_c)``. (For the default 4-hex segments and table:
        ``65536 mod 94 = 18``, so 18 characters appear with probability
        698/65536 and 76 with 697/65536.)

        *segment_hex_length* must match the value :meth:`render` is
        called with (``ProtocolParams.segment_hex_length``) — the old
        signature hardcoded 4, silently overstating entropy for
        non-default protocol params.
        """
        if segment_hex_length < 1:
            raise ValidationError(
                f"segment hex length must be >= 1, got {segment_hex_length}"
            )
        space = 16**segment_hex_length
        size = self.table.size
        base = space // size
        heavy = space % size  # characters with base+1 preimages
        p_heavy = (base + 1) / space
        p_light = base / space
        entropy = 0.0
        if heavy:
            entropy -= heavy * p_heavy * math.log2(p_heavy)
        if size - heavy and p_light > 0:
            entropy -= (size - heavy) * p_light * math.log2(p_light)
        return entropy

    def entropy_bits(self, segment_hex_length: int = 4) -> float:
        """Exact entropy of a rendered password, modulo bias included.

        ``length * H(character)`` — characters are independent because
        each consumes a disjoint segment of the (uniform) SHA-512
        intermediate value. Always ``<= max_entropy_bits()``; the old
        name used to return the biased-upward bound, which overstated
        strength (the §IV-E numbers now quote both). Pass the same
        *segment_hex_length* as :meth:`render`.
        """
        return self.length * self.character_entropy_bits(segment_hex_length)

    def render(self, intermediate_hex: str, segment_hex_length: int = 4) -> str:
        """Apply the template function to the intermediate value *p*.

        Splits *intermediate_hex* into segments of *segment_hex_length*
        digits, maps each through the character table, truncates to
        ``length``.
        """
        segments = chunk(intermediate_hex, segment_hex_length)
        if len(segments) < self.length:
            raise ValidationError(
                f"intermediate value yields {len(segments)} segments; "
                f"policy needs {self.length}"
            )
        characters = [
            self.table.lookup(int_from_hex(segment))
            for segment in segments[: self.length]
        ]
        return "".join(characters)
