"""Protocol parameters (§III-A, §III-B).

The paper fixes: N = 5000 entries of 256 bits, 512-bit ``O_id`` and
``P_id``, 256-bit seeds σ, 4-hex-digit segments (so SHA-256's 64 hex
digits give 16 token segments and SHA-512's 128 hex digits give 32
password segments), and requires ``16^l >= N`` so one segment can
address the whole entry table.

The parameters are a dataclass rather than module constants so the
ablation benchmarks (entry-table-size sweep, segment-length sweep) can
instantiate variants; ``DEFAULT_PARAMS`` is the paper's configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ValidationError

SHA256_HEX_LENGTH = 64
SHA512_HEX_LENGTH = 128


@dataclass(frozen=True)
class ProtocolParams:
    """All tunable constants of the Amnesia derivations."""

    entry_table_size: int = 5000  # N
    entry_bytes: int = 32  # 256-bit entry values
    segment_hex_length: int = 4  # l: hex digits per segment
    oid_bytes: int = 64  # 512-bit online id
    pid_bytes: int = 64  # 512-bit phone id
    seed_bytes: int = 32  # 256-bit per-account seed σ
    salt_bytes: int = 16

    def __post_init__(self) -> None:
        if self.entry_table_size < 1:
            raise ValidationError(
                f"entry table size must be >= 1, got {self.entry_table_size}"
            )
        if self.segment_hex_length < 1:
            raise ValidationError(
                f"segment length must be >= 1, got {self.segment_hex_length}"
            )
        if 16**self.segment_hex_length < self.entry_table_size:
            # The paper's constraint 16^l >= N: a segment must be able to
            # address every entry.
            raise ValidationError(
                f"16^{self.segment_hex_length} < N={self.entry_table_size}; "
                "segments cannot cover the entry table"
            )
        if SHA256_HEX_LENGTH % self.segment_hex_length != 0:
            raise ValidationError(
                f"segment length {self.segment_hex_length} must divide "
                f"{SHA256_HEX_LENGTH} (SHA-256 hex digits)"
            )
        for name, value in (
            ("entry_bytes", self.entry_bytes),
            ("oid_bytes", self.oid_bytes),
            ("pid_bytes", self.pid_bytes),
            ("seed_bytes", self.seed_bytes),
            ("salt_bytes", self.salt_bytes),
        ):
            if value < 8:
                raise ValidationError(f"{name} must be >= 8, got {value}")

    @property
    def token_segments(self) -> int:
        """Segments cut from R: 64 / l (16 in the paper)."""
        return SHA256_HEX_LENGTH // self.segment_hex_length

    @property
    def password_segments(self) -> int:
        """Segments cut from p: 128 / l (32 in the paper)."""
        return SHA512_HEX_LENGTH // self.segment_hex_length

    @property
    def token_space(self) -> int:
        """Distinct entry-index combinations: N^segments (5000^16 ≈ 1.53e59)."""
        return self.entry_table_size**self.token_segments


DEFAULT_PARAMS = ProtocolParams()
