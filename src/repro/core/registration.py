"""Application registration via CAPTCHA pairing (§III-B1).

Each installed application instance is identified by a fresh ``P_id``
plus the rendezvous registration id. To pair an app with a web account,
the Amnesia webpage displays a short code; the user types it into the
app, whose registration message carries the code together with
``P_id`` and the registration id. If the codes match, the server
accepts the pairing, stores the registration id in plaintext and the
``P_id`` hashed and salted.

This module holds the pairing-code book-keeping; it is time-aware but
pure — callers pass ``now`` (milliseconds) explicitly so the same code
runs under the simulator or a wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.crypto.ct import ct_equal
from repro.crypto.randomness import RandomSource
from repro.util.errors import AuthenticationError, ValidationError

_CODE_ALPHABET = "ABCDEFGHJKLMNPQRSTUVWXYZ23456789"  # no 0/O/1/I lookalikes
DEFAULT_CODE_LENGTH = 6
DEFAULT_TTL_MS = 5 * 60 * 1000.0  # codes are short-lived by design


@dataclass(frozen=True)
class CaptchaChallenge:
    """An issued pairing code, bound to one web account login."""

    login: str
    code: str
    issued_at_ms: float
    expires_at_ms: float

    def expired(self, now_ms: float) -> bool:
        return now_ms >= self.expires_at_ms


class CaptchaRegistrar:
    """Issues and verifies one-time pairing codes, one live code per login."""

    def __init__(
        self,
        rng: RandomSource,
        code_length: int = DEFAULT_CODE_LENGTH,
        ttl_ms: float = DEFAULT_TTL_MS,
    ) -> None:
        if code_length < 4:
            raise ValidationError(f"code length must be >= 4, got {code_length}")
        if ttl_ms <= 0:
            raise ValidationError(f"ttl must be positive, got {ttl_ms}")
        self._rng = rng
        self._code_length = code_length
        self._ttl_ms = ttl_ms
        self._live: Dict[str, CaptchaChallenge] = {}

    def issue(self, login: str, now_ms: float) -> CaptchaChallenge:
        """Issue a fresh code for *login*, replacing any earlier one."""
        if not login:
            raise ValidationError("login must be non-empty")
        code = "".join(
            _CODE_ALPHABET[self._rng.randbelow(len(_CODE_ALPHABET))]
            for __ in range(self._code_length)
        )
        challenge = CaptchaChallenge(
            login=login,
            code=code,
            issued_at_ms=now_ms,
            expires_at_ms=now_ms + self._ttl_ms,
        )
        self._live[login] = challenge
        return challenge

    def verify(self, login: str, code: str, now_ms: float) -> None:
        """Consume the live code for *login*; raise on any mismatch.

        Codes are single-use: success removes the challenge, and a
        failed attempt also invalidates it so an attacker cannot brute
        force the short code through repeated guesses.
        """
        challenge = self._live.pop(login, None)
        if challenge is None:
            raise AuthenticationError(f"no pairing code outstanding for {login!r}")
        if challenge.expired(now_ms):
            raise AuthenticationError("pairing code expired")
        if not ct_equal(code.encode("utf-8"), challenge.code.encode("utf-8")):
            raise AuthenticationError("pairing code mismatch")

    def outstanding(self, login: str) -> CaptchaChallenge | None:
        return self._live.get(login)
