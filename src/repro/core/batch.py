"""Batched/vectorized §III-B derivation: the render hot path at scale.

The profiler (PR 3/PR 5) shows the per-request render cost is dominated
by Python-level loops: 32 ``chunk`` + ``int_from_hex`` + modulo lookups
per password in :meth:`~repro.core.templates.PasswordPolicy.render`,
plus one SHA-512 per token. Three precomputations remove almost all of
that interpreter work:

- :class:`SegmentTable` — a 65 536-entry segment→character string per
  charset, built once, so a render is ``bytes.fromhex`` → one
  :class:`array.array` reinterpret of the digest as 16-bit big-endian
  segments → a single ``str.join`` over table lookups. No per-segment
  int parsing, no modulo.
- :class:`AccountDerivation` — the per-account constants of the chain
  (R, Algorithm 1's segment indices, the ``O_id‖σ`` hash suffix),
  computed once and reused across every token derived for the account
  in a batch (the recovery path touches every account of a user with
  one entry table).
- :class:`BatchDerivationEngine` — N independent ``(T, O_id, σ,
  policy) → P`` jobs rendered in one call, with loop-invariant lookups
  hoisted; the server's flush hook (``enable_batched_render``) feeds it
  one drained :class:`~repro.web.server.DispatchCore` batch at a time,
  and an optional :class:`~repro.cluster.workers.ShardWorkerPool`
  fans large batches out across processes.

Every path is bit-identical to the scalar pipeline in
:mod:`repro.core.protocol`: the property suite asserts batch == scalar
== the from-first-principles reference built on the pure SHA cores
(:func:`repro.crypto.sha2.sha512_many`), for every charset policy and
for all 65 536 segment values.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.params import DEFAULT_PARAMS, ProtocolParams, SHA256_HEX_LENGTH
from repro.core.protocol import generate_request, token_indices
from repro.crypto.hashing import sha256_hex, sha512
from repro.util.encoding import chunk, int_from_hex, require_hex
from repro.util.errors import ValidationError

_LITTLE_ENDIAN = sys.byteorder == "little"

#: Distinct (charset, segment length) tables kept warm; a table is 64 KB
#: of string, so the bound is ~16 MB worst case, far above the 15
#: class-combination policies any real fleet uses.
_TABLE_CACHE_MAX = 256
_TABLE_CACHE: "OrderedDict[tuple[str, int], SegmentTable]" = OrderedDict()


class SegmentTable:
    """Precomputed segment-value → character mapping for one charset.

    ``lookup[v] == charset[v % len(charset)]`` for every segment value
    ``v`` in ``[0, 16^segment_hex_length)``: the charset is tiled across
    the whole segment space once, so the hot loop replaces a div/mod +
    two indexing operations per character with one string index. The
    modulo *bias* of the paper's template function is preserved exactly
    — the table is the modulo, materialized.
    """

    __slots__ = ("charset", "segment_hex_length", "space", "_lookup")

    def __init__(self, charset: str, segment_hex_length: int = 4) -> None:
        if not charset:
            raise ValidationError("character table cannot be empty")
        if segment_hex_length < 1:
            raise ValidationError(
                f"segment hex length must be >= 1, got {segment_hex_length}"
            )
        self.charset = charset
        self.segment_hex_length = segment_hex_length
        self.space = 16**segment_hex_length
        size = len(charset)
        self._lookup = (charset * (self.space // size + 1))[: self.space]

    def lookup(self, segment_value: int) -> str:
        """``T_c[v mod N_c]`` by table lookup (the paper's index rule)."""
        if segment_value < 0:
            raise ValidationError(
                f"segment value must be >= 0, got {segment_value}"
            )
        return self._lookup[segment_value]

    def render_hex(self, intermediate_hex: str, length: int) -> str:
        """Render *length* characters from a hex intermediate value.

        Bit-identical to :meth:`PasswordPolicy.render` on the same
        charset: trailing hex digits beyond the consumed segments are
        ignored (Algorithm 1's ``while c + l <= |p|``), and a short
        intermediate raises the same :class:`ValidationError`.
        """
        if self.segment_hex_length != 4:
            return self._render_hex_generic(intermediate_hex, length)
        segments = len(intermediate_hex) // 4
        if segments < length:
            raise ValidationError(
                f"intermediate value yields {segments} segments; "
                f"policy needs {length}"
            )
        try:
            raw = bytes.fromhex(intermediate_hex[: length * 4])
        except ValueError:
            # Non-hex input: the per-segment parser raises the
            # canonical alphabet error the scalar path raises.
            return self._render_hex_generic(intermediate_hex, length)
        return self.render_digest(raw, length)

    def render_digest(self, digest: bytes, length: int) -> str:
        """Render straight from the raw digest, skipping hex entirely.

        A 4-hex-digit segment of ``digest.hex()`` *is* two consecutive
        digest bytes read big-endian, so reinterpreting the digest as a
        16-bit array yields the identical segment values with zero
        string work.
        """
        if self.segment_hex_length != 4:
            return self._render_hex_generic(bytes(digest).hex(), length)
        if len(digest) // 2 < length:
            raise ValidationError(
                f"intermediate value yields {len(digest) // 2} segments; "
                f"policy needs {length}"
            )
        from array import array

        segments = array("H", bytes(digest[: length * 2]))
        if _LITTLE_ENDIAN:
            segments.byteswap()
        return "".join(map(self._lookup.__getitem__, segments))

    def _render_hex_generic(self, intermediate_hex: str, length: int) -> str:
        """The scalar shape (arbitrary segment length / error fidelity)."""
        segments = chunk(intermediate_hex, self.segment_hex_length)
        if len(segments) < length:
            raise ValidationError(
                f"intermediate value yields {len(segments)} segments; "
                f"policy needs {length}"
            )
        lookup = self._lookup
        return "".join(
            lookup[int_from_hex(segment)] for segment in segments[:length]
        )


def segment_table(charset: str, segment_hex_length: int = 4) -> SegmentTable:
    """The process-wide :class:`SegmentTable` for *charset* (LRU-bounded).

    Tables are immutable and pure functions of their key, so sharing
    them across servers/engines is safe; the bound only exists so a
    hostile stream of distinct charsets cannot grow memory unboundedly.
    """
    key = (charset, segment_hex_length)
    table = _TABLE_CACHE.get(key)
    if table is None:
        table = SegmentTable(charset, segment_hex_length)
        _TABLE_CACHE[key] = table
        if len(_TABLE_CACHE) > _TABLE_CACHE_MAX:
            _TABLE_CACHE.popitem(last=False)
    else:
        _TABLE_CACHE.move_to_end(key)
    return table


@dataclass(frozen=True)
class RenderJob:
    """One independent ``(T, O_id, σ, policy) → P`` derivation.

    Plain, picklable data: jobs cross the process boundary when a
    :class:`~repro.cluster.workers.ShardWorkerPool` is attached.
    """

    token_hex: str
    oid: bytes
    seed: bytes
    charset: str
    length: int


@dataclass(frozen=True)
class AccountDerivation:
    """The per-account constants of the §III-B chain, precomputed.

    ``R`` and Algorithm 1's segment indices depend only on
    ``(µ, d, σ)``; the SHA-512 suffix ``O_id‖σ`` only on the user and
    account secrets. Computing them once lets a batch over many tokens
    (or recovery over many accounts sharing one entry table) skip the
    per-call ``chunk`` + ``int_from_hex`` index loop entirely.
    """

    request_hex: str
    indices: tuple[int, ...]
    entry_table_size: int
    suffix: bytes  # O_id || σ, the constant tail of the SHA-512 input

    @classmethod
    def for_account(
        cls,
        username: str,
        domain: str,
        seed: bytes,
        oid: bytes,
        params: ProtocolParams = DEFAULT_PARAMS,
    ) -> "AccountDerivation":
        return cls.from_request(
            generate_request(username, domain, seed), seed, oid, params
        )

    @classmethod
    def from_request(
        cls,
        request_hex: str,
        seed: bytes,
        oid: bytes,
        params: ProtocolParams = DEFAULT_PARAMS,
    ) -> "AccountDerivation":
        """Reuse an already-derived (possibly cached) ``R``."""
        return cls(
            request_hex=request_hex,
            indices=tuple(token_indices(request_hex, params)),
            entry_table_size=params.entry_table_size,
            suffix=bytes(oid) + bytes(seed),
        )

    def token_hex(self, entry_table) -> str:
        """Algorithm 1 over the precomputed indices (hex out).

        Validates the table length the same way
        :func:`~repro.core.protocol.generate_token` does: indices were
        reduced modulo ``entry_table_size``, so a shorter table would
        turn a lookup into an uncaught ``IndexError`` mid-batch.
        """
        if self.entry_table_size > len(entry_table):
            raise ValidationError(
                f"params expect an entry table of {self.entry_table_size} "
                f"entries; table has {len(entry_table)}"
            )
        return sha256_hex(b"".join(entry_table[i] for i in self.indices))


class BatchDerivationEngine:
    """Render many independent §III-B jobs in one vectorized call.

    The scalar path (:meth:`derive`) replicates
    :func:`~repro.core.protocol.intermediate_value`'s validation
    exactly, then goes digest → password without materializing the
    128-hex intermediate string. :meth:`render_batch` amortizes the
    loop setup across a whole drained dispatch batch and, when a worker
    pool is attached and the batch is large enough, fans the jobs out
    across processes. Counters (`batches_total`, `jobs_total`,
    `peak_batch`) feed the ``amnesia_render_batch_*`` metric families.
    """

    def __init__(
        self,
        params: ProtocolParams = DEFAULT_PARAMS,
        registry=None,
    ) -> None:
        self.params = params
        self.workers = None
        self.batches_total = 0
        self.jobs_total = 0
        self.peak_batch = 0
        self.worker_batches = 0
        if registry is not None:
            self._batch_counter = registry.counter(
                "amnesia_render_batches_total",
                "Vectorized render batches executed by the derivation engine",
            )
            self._job_counter = registry.counter(
                "amnesia_render_batch_jobs_total",
                "Render jobs executed inside vectorized batches",
            )
        else:
            self._batch_counter = self._job_counter = None

    def attach_workers(self, pool) -> None:
        """Route sufficiently large batches through *pool* (a
        :class:`~repro.cluster.workers.ShardWorkerPool`)."""
        self.workers = pool

    @staticmethod
    def validate(token_hex: str, oid: bytes, seed: bytes) -> None:
        """The input validation of
        :func:`~repro.core.protocol.intermediate_value`, verbatim.

        Exposed separately so the server can reject a bad token *in the
        handler* (where the scalar path raised) even when the expensive
        part of the derivation is deferred to a batch flush.
        """
        require_hex(token_hex)
        if len(token_hex) != SHA256_HEX_LENGTH:
            raise ValidationError(
                f"token must be {SHA256_HEX_LENGTH} hex digits, "
                f"got {len(token_hex)}"
            )
        if len(oid) == 0:
            raise ValidationError("O_id must be non-empty")
        if len(seed) == 0:
            raise ValidationError("seed must be non-empty")

    def derive(
        self, token_hex: str, oid: bytes, seed: bytes, charset: str, length: int
    ) -> str:
        """``P = template(H(T ‖ O_id ‖ σ))`` — one job, full validation.

        Raises the identical :class:`ValidationError`\\ s as
        :func:`~repro.core.protocol.intermediate_value` so callers can
        swap this in for the scalar pipeline without changing their
        error surface.
        """
        self.validate(token_hex, oid, seed)
        digest = sha512(bytes.fromhex(token_hex), bytes(oid), bytes(seed))
        return segment_table(charset, self.params.segment_hex_length).render_digest(
            digest, length
        )

    def derive_job(self, job: RenderJob) -> str:
        return self.derive(job.token_hex, job.oid, job.seed, job.charset, job.length)

    def render_batch(self, jobs) -> list:
        """Render every job, one pass, hoisted lookups.

        Jobs are independent, so order in == order out; an invalid job
        raises (the batch is all-or-nothing, like N scalar calls where
        the first bad input stops the request).
        """
        count = len(jobs)
        if count == 0:
            return []
        self.batches_total += 1
        self.jobs_total += count
        if count > self.peak_batch:
            self.peak_batch = count
        if self._batch_counter is not None:
            self._batch_counter.inc()
            self._job_counter.inc(count)
        if self.workers is not None and count >= self.workers.min_batch:
            self.worker_batches += 1
            return self.workers.render_batch(jobs, self.params.segment_hex_length)
        derive = self.derive
        return [
            derive(job.token_hex, job.oid, job.seed, job.charset, job.length)
            for job in jobs
        ]

    def stats(self) -> dict:
        return {
            "batches": self.batches_total,
            "jobs": self.jobs_total,
            "peak_batch": self.peak_batch,
            "worker_batches": self.worker_batches,
        }


def reference_render_batch(jobs, params: ProtocolParams = DEFAULT_PARAMS) -> list:
    """From-first-principles oracle: the same jobs through the *pure*
    SHA-512 core (single-pass multi-message) and the original
    per-segment :meth:`CharacterTable.lookup` loop. Exists for the
    property suite — never on a hot path."""
    from repro.core.templates import PasswordPolicy
    from repro.crypto.sha2 import sha512_many

    digests = sha512_many(
        [bytes.fromhex(job.token_hex) + bytes(job.oid) + bytes(job.seed) for job in jobs]
    )
    passwords = []
    for job, digest in zip(jobs, digests):
        policy = PasswordPolicy(charset=job.charset, length=job.length)
        passwords.append(
            policy.render(digest.hex(), params.segment_hex_length)
        )
    return passwords
