"""Secret material: the entry table, ids and seeds (§III-A).

``Ks = (O_id, {(µ, d, σ)})`` lives on the server;
``Kp = (P_id, T_E)`` lives on the phone. This module generates and
models that material; persistence is :mod:`repro.storage`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import DEFAULT_PARAMS, ProtocolParams
from repro.crypto.randomness import RandomSource
from repro.util.errors import ValidationError


class EntryTable:
    """The phone's table ``T_E`` of N random entry values (Table II)."""

    def __init__(self, entries: list[bytes], params: ProtocolParams = DEFAULT_PARAMS):
        if len(entries) != params.entry_table_size:
            raise ValidationError(
                f"entry table must have {params.entry_table_size} entries, "
                f"got {len(entries)}"
            )
        bad = [i for i, e in enumerate(entries) if len(e) != params.entry_bytes]
        if bad:
            raise ValidationError(
                f"entries must be {params.entry_bytes} bytes; bad indices {bad[:5]}"
            )
        self._entries = list(entries)
        self.params = params

    @classmethod
    def generate(
        cls, rng: RandomSource, params: ProtocolParams = DEFAULT_PARAMS
    ) -> "EntryTable":
        entries = [
            rng.token_bytes(params.entry_bytes)
            for __ in range(params.entry_table_size)
        ]
        return cls(entries, params)

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index: int) -> bytes:
        return self._entries[index]

    def entries(self) -> list[bytes]:
        """A defensive copy of the table contents."""
        return list(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EntryTable):
            return NotImplemented
        return self._entries == other._entries


@dataclass(frozen=True)
class PhoneSecret:
    """``Kp = (P_id, T_E)`` — everything the phone must keep secret."""

    pid: bytes
    entry_table: EntryTable

    def __post_init__(self) -> None:
        expected = self.entry_table.params.pid_bytes
        if len(self.pid) != expected:
            raise ValidationError(
                f"P_id must be {expected} bytes, got {len(self.pid)}"
            )

    @classmethod
    def generate(
        cls, rng: RandomSource, params: ProtocolParams = DEFAULT_PARAMS
    ) -> "PhoneSecret":
        return cls(
            pid=rng.token_bytes(params.pid_bytes),
            entry_table=EntryTable.generate(rng, params),
        )


def generate_oid(rng: RandomSource, params: ProtocolParams = DEFAULT_PARAMS) -> bytes:
    """A fresh 512-bit online id, assigned at signup and never rotated."""
    return rng.token_bytes(params.oid_bytes)


def generate_pid(rng: RandomSource, params: ProtocolParams = DEFAULT_PARAMS) -> bytes:
    """A fresh 512-bit phone id, regenerated on every app install."""
    return rng.token_bytes(params.pid_bytes)


def generate_seed(rng: RandomSource, params: ProtocolParams = DEFAULT_PARAMS) -> bytes:
    """A fresh 256-bit per-account seed σ."""
    return rng.token_bytes(params.seed_bytes)


def generate_entry_table(
    rng: RandomSource, params: ProtocolParams = DEFAULT_PARAMS
) -> EntryTable:
    """A fresh N-entry table of random values."""
    return EntryTable.generate(rng, params)
