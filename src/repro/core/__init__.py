"""Amnesia's core protocol: bilateral generative password derivation.

This package is the paper's primary contribution in executable form.
It is *pure* — no network, no storage, no clocks — so every function is
deterministic and directly testable:

- :mod:`repro.core.params` — protocol constants (N = 5000 entries,
  4-hex-digit segments, 512-bit ids, 256-bit seeds) and their
  consistency rules (``16^l >= N``).
- :mod:`repro.core.secrets` — ``Ks``/``Kp`` material: the entry table,
  id and seed generation.
- :mod:`repro.core.templates` — the template function mapping the
  intermediate hash to a real password under a per-account policy.
- :mod:`repro.core.protocol` — the four derivations of §III-B:
  request ``R``, token ``T`` (Algorithm 1), intermediate ``p``, and
  password ``P``.
- :mod:`repro.core.registration` — the CAPTCHA pairing flow (§III-B1).
- :mod:`repro.core.recovery` — backup payload and the two recovery
  protocols' pure verification steps (§III-C).

The distributed components (:mod:`repro.server`, :mod:`repro.phone`)
are thin shells orchestrating these functions over the network.
"""

from repro.core.params import ProtocolParams, DEFAULT_PARAMS
from repro.core.templates import (
    CharacterTable,
    PasswordPolicy,
    DEFAULT_CHARACTER_TABLE,
    LOWERCASE,
    UPPERCASE,
    DIGITS,
    SPECIAL,
)
from repro.core.secrets import (
    EntryTable,
    PhoneSecret,
    generate_oid,
    generate_pid,
    generate_seed,
    generate_entry_table,
)
from repro.core.protocol import (
    generate_request,
    token_indices,
    generate_token,
    intermediate_value,
    render_password,
    generate_password,
)
from repro.core.registration import CaptchaChallenge, CaptchaRegistrar
from repro.core.recovery import BackupPayload, encode_backup, decode_backup

__all__ = [
    "ProtocolParams",
    "DEFAULT_PARAMS",
    "CharacterTable",
    "PasswordPolicy",
    "DEFAULT_CHARACTER_TABLE",
    "LOWERCASE",
    "UPPERCASE",
    "DIGITS",
    "SPECIAL",
    "EntryTable",
    "PhoneSecret",
    "generate_oid",
    "generate_pid",
    "generate_seed",
    "generate_entry_table",
    "generate_request",
    "token_indices",
    "generate_token",
    "intermediate_value",
    "render_password",
    "generate_password",
    "CaptchaChallenge",
    "CaptchaRegistrar",
    "BackupPayload",
    "encode_backup",
    "decode_backup",
]
