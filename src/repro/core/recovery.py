"""Backup payloads for the recovery protocols (§III-C).

On install the app performs a one-time backup of ``Kp`` — ``P_id`` and
the entry table — to a third-party cloud provider. Phone-compromise
recovery later uploads this payload to the server, which verifies the
user by hashing the uploaded ``P_id`` against its stored
``H(P_id + salt)``, regenerates every password from the *old* table so
the user can log in and rotate site passwords, and finally purges the
old phone's data.

The payload format is a small length-prefixed binary encoding, with an
optional passphrase-encrypted variant (PBKDF2 → ChaCha20-Poly1305).
The paper assumes the cloud store and its channel are trusted; the
encrypted variant is the hardening an implementation would ship, and
the plaintext one is the paper-faithful default.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.params import DEFAULT_PARAMS, ProtocolParams
from repro.core.secrets import EntryTable, PhoneSecret
from repro.crypto.aead import aead_encrypt, aead_decrypt
from repro.crypto.pbkdf2 import pbkdf2_hmac_sha256
from repro.crypto.randomness import RandomSource
from repro.util.errors import CryptoError, RecoveryError

_MAGIC = b"AMNB"
_VERSION_PLAIN = 1
_VERSION_ENCRYPTED = 2
_PBKDF2_ITERATIONS = 10_000
_NONCE = b"\x00" * 12  # safe: each payload uses a fresh random salt/key


@dataclass(frozen=True)
class BackupPayload:
    """Decoded backup contents: the phone-side secret ``Kp``."""

    pid: bytes
    entries: list[bytes]

    def to_phone_secret(self, params: ProtocolParams = DEFAULT_PARAMS) -> PhoneSecret:
        return PhoneSecret(pid=self.pid, entry_table=EntryTable(self.entries, params))


def _encode_body(secret: PhoneSecret) -> bytes:
    entries = secret.entry_table.entries()
    entry_size = len(entries[0])
    header = struct.pack(
        ">H I H", len(secret.pid), len(entries), entry_size
    )
    return header + secret.pid + b"".join(entries)


def _decode_body(body: bytes) -> BackupPayload:
    fixed = struct.calcsize(">H I H")
    if len(body) < fixed:
        raise RecoveryError("backup body truncated")
    pid_size, count, entry_size = struct.unpack(">H I H", body[:fixed])
    expected = fixed + pid_size + count * entry_size
    if len(body) != expected:
        raise RecoveryError(
            f"backup body has {len(body)} bytes, expected {expected}"
        )
    pid = body[fixed : fixed + pid_size]
    entries = [
        body[fixed + pid_size + i * entry_size : fixed + pid_size + (i + 1) * entry_size]
        for i in range(count)
    ]
    return BackupPayload(pid=pid, entries=entries)


def encode_backup(
    secret: PhoneSecret,
    passphrase: str | None = None,
    rng: RandomSource | None = None,
) -> bytes:
    """Serialise ``Kp`` for cloud storage.

    Without *passphrase* the payload is plaintext (the paper's model:
    the cloud provider is trusted). With a passphrase the body is
    sealed under a PBKDF2-derived key with a random salt.
    """
    body = _encode_body(secret)
    if passphrase is None:
        return _MAGIC + struct.pack(">B", _VERSION_PLAIN) + body
    if rng is None:
        raise RecoveryError("encrypted backup requires a random source for the salt")
    salt = rng.token_bytes(16)
    key = pbkdf2_hmac_sha256(
        passphrase.encode("utf-8"), salt, _PBKDF2_ITERATIONS, 32
    )
    sealed = aead_encrypt(key, _NONCE, body, aad=_MAGIC)
    return _MAGIC + struct.pack(">B", _VERSION_ENCRYPTED) + salt + sealed


def decode_backup(blob: bytes, passphrase: str | None = None) -> BackupPayload:
    """Parse (and, if needed, decrypt) a backup payload."""
    if len(blob) < len(_MAGIC) + 1 or blob[: len(_MAGIC)] != _MAGIC:
        raise RecoveryError("not an Amnesia backup payload")
    version = blob[len(_MAGIC)]
    body = blob[len(_MAGIC) + 1 :]
    if version == _VERSION_PLAIN:
        return _decode_body(body)
    if version == _VERSION_ENCRYPTED:
        if passphrase is None:
            raise RecoveryError("backup is encrypted; passphrase required")
        if len(body) < 16:
            raise RecoveryError("encrypted backup truncated")
        salt, sealed = body[:16], body[16:]
        key = pbkdf2_hmac_sha256(
            passphrase.encode("utf-8"), salt, _PBKDF2_ITERATIONS, 32
        )
        try:
            plain = aead_decrypt(key, _NONCE, sealed, aad=_MAGIC)
        except CryptoError as error:
            raise RecoveryError(f"backup decryption failed: {error}") from error
        return _decode_body(plain)
    raise RecoveryError(f"unsupported backup version {version}")
