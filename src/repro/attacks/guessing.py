"""Guessing attacks: online (throttled) and offline (unthrottled).

Online guessing runs a real dictionary against the live Amnesia
server's ``/login`` endpoint and measures how far the throttle lets it
get (Bonneau's *Resilient-to-Throttled-Guessing*). Offline guessing is
quantified analytically from password entropy — the §IV-E argument
that 94^32 candidates (and no verification oracle) defeat cracking.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.attacks.dictionary import candidate_dictionary
from repro.client.browser import AmnesiaBrowser
from repro.testbed import AmnesiaTestbed
from repro.util.errors import AuthenticationError


@dataclass(frozen=True)
class OnlineGuessingReport:
    """What a remote guesser achieved against the live login endpoint."""

    attempts_allowed: int
    attempts_rejected_by_throttle: int
    master_password_found: bool
    elapsed_ms: float


def online_guessing_attack(
    bed: AmnesiaTestbed,
    login: str,
    candidates: Iterable[str] | None = None,
    budget: int = 200,
) -> OnlineGuessingReport:
    """Fire *budget* guesses at ``/login`` and count throttle rejections."""
    browser: AmnesiaBrowser = bed.new_browser()
    started = bed.kernel.now
    allowed = 0
    throttled = 0
    found = False
    source = candidates if candidates is not None else candidate_dictionary(budget)
    for count, candidate in enumerate(source):
        if count >= budget:
            break
        try:
            browser.login(login, candidate)
            found = True
            break
        except AuthenticationError as error:
            if "too many failures" in str(error):
                throttled += 1
            else:
                allowed += 1
    return OnlineGuessingReport(
        attempts_allowed=allowed,
        attempts_rejected_by_throttle=throttled,
        master_password_found=found,
        elapsed_ms=bed.kernel.now - started,
    )


@dataclass(frozen=True)
class GuessingEstimate:
    """Offline guessing cost for a password class."""

    label: str
    space: float
    entropy_bits: float
    years_at_1e12_per_s: float


def unthrottled_guessing_estimate(
    space: float, label: str, guesses_per_second: float = 1e12
) -> GuessingEstimate:
    """Expected time to exhaust half the space at a given guess rate."""
    seconds = (space / 2) / guesses_per_second
    return GuessingEstimate(
        label=label,
        space=space,
        entropy_bits=math.log2(space) if space > 0 else 0.0,
        years_at_1e12_per_s=seconds / (365.25 * 24 * 3600),
    )
