"""Dictionary attack machinery.

Generates the candidate list a real cracker would try first (common
words with mangling and suffixes, names with years — the same
distributions :class:`~repro.client.user.UserModel` draws from, because
that is the point of dictionary attacks: candidate lists model people)
and runs it against an arbitrary verification oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.client.user import _COMMON_SUFFIXES, _COMMON_WORDS, _FIRST_NAMES
from repro.util.errors import ValidationError


def candidate_dictionary(limit: int | None = None) -> Iterator[str]:
    """Yield password candidates in decreasing plausibility order.

    Covers the full output space of ``UserModel.invent_password`` plus
    unmangled variants, so a dictionary attack against simulated human
    passwords succeeds iff the defence (stretching, throttling, or not
    being human-guessable at all) fails.
    """
    if limit is not None and limit < 0:
        raise ValidationError(f"limit must be >= 0, got {limit}")
    count = 0

    def bounded(candidates: Iterable[str]) -> Iterator[str]:
        nonlocal count
        for candidate in candidates:
            if limit is not None and count >= limit:
                return
            count += 1
            yield candidate

    def all_candidates() -> Iterator[str]:
        # words + suffixes, plain and l33t-mangled, plain and capitalised
        for word in _COMMON_WORDS:
            mangled = word.replace("a", "@").replace("o", "0").replace("i", "1")
            for base in (word, word.capitalize(), mangled, mangled.capitalize()):
                for suffix in _COMMON_SUFFIXES:
                    yield base + suffix
        # names + year fragments (the "personal info" technique)
        years = ["1980", "1985", "1990", "1995", "2000"]
        for name in _FIRST_NAMES:
            for year in years:
                yield name + year
                yield name + year[-2:]

    return bounded(all_candidates())


@dataclass(frozen=True)
class DictionaryResult:
    """Outcome of one offline dictionary run."""

    found: str | None
    attempts: int

    @property
    def succeeded(self) -> bool:
        return self.found is not None


class OfflineDictionaryAttack:
    """Run a candidate list against a verification oracle.

    The oracle returns True when the candidate is correct — e.g. "this
    key decrypts the vault" or "this MP hashes to the stolen verifier".

    Passing *model* (a :class:`repro.analysis.markov.CharMarkovModel`)
    reorders candidates most-probable-first — the Narayanan-Shmatikov
    optimisation [4], which finds typical human passwords in a fraction
    of the attempts a raw dictionary scan needs.
    """

    def __init__(
        self, candidates: Iterable[str] | None = None, model=None
    ) -> None:
        self._candidates = (
            list(candidates) if candidates is not None
            else list(candidate_dictionary())
        )
        if model is not None:
            from repro.analysis.markov import rank_candidates

            self._candidates = rank_candidates(model, self._candidates)

    @property
    def dictionary_size(self) -> int:
        return len(self._candidates)

    def run(self, oracle: Callable[[str], bool]) -> DictionaryResult:
        attempts = 0
        for candidate in self._candidates:
            attempts += 1
            if oracle(candidate):
                return DictionaryResult(found=candidate, attempts=attempts)
        return DictionaryResult(found=None, attempts=attempts)
