"""Composed (two-factor) compromises: where Amnesia's guarantee ends.

The threat model (§II) assumes the attacker "cannot compromise both
smartphone and the master password without the user noticing", and §IV
bounds single-compromise attackers. This module runs the *composed*
attacks to show the boundary is exactly where the paper draws it:

- phone + server breach  → every password falls (attacker holds Kp and
  Ks and simply runs the derivation);
- phone + master password → the attacker can authenticate to the real
  server and have it generate passwords, but must answer the phone
  round trip — which he can, because he holds Kp. Here modelled at the
  artifact level: Kp plus the account metadata recoverable with the MP.

Both are executed against the artifact surfaces, like the single
attacks, so the boundary claim is mechanical rather than argued.
"""

from __future__ import annotations

import json

from repro.attacks.report import AttackOutcome
from repro.baselines.amnesia_adapter import AmnesiaScheme
from repro.baselines.base import PasswordManagerScheme
from repro.core.protocol import generate_password
from repro.core.secrets import EntryTable
from repro.core.templates import PasswordPolicy

PHONE_PLUS_SERVER = "phone+server-breach"
PHONE_PLUS_MASTER = "phone+master-password"


def _rebuild_table(scheme: AmnesiaScheme, phone: dict[str, bytes]) -> EntryTable:
    entry_bytes = phone["entry_table"]
    size = scheme.params.entry_bytes
    return EntryTable(
        [entry_bytes[i : i + size] for i in range(0, len(entry_bytes), size)],
        scheme.params,
    )


def phone_plus_server_attack(scheme: PasswordManagerScheme) -> AttackOutcome:
    """Kp AND Ks in hand: run the derivation like the system would."""
    total = len(scheme.accounts())
    if not isinstance(scheme, AmnesiaScheme):
        return AttackOutcome(
            vector=PHONE_PLUS_SERVER,
            scheme=scheme.name,
            passwords_recovered=0,
            total_passwords=total,
            notes="composed phone+server attack modelled for Amnesia only",
        )
    artifacts = scheme.artifacts()
    table = _rebuild_table(scheme, artifacts.phone_side)
    oid = artifacts.server_side["oid"]
    entries = json.loads(artifacts.server_side["entries"].decode("utf-8"))
    recovered = 0
    for username, domain, seed_hex in entries:
        candidate = generate_password(
            username,
            domain,
            bytes.fromhex(seed_hex),
            oid,
            table,
            scheme.policy,
        )
        if candidate == scheme.retrieve(username, domain):
            recovered += 1
    return AttackOutcome(
        vector=PHONE_PLUS_SERVER,
        scheme=scheme.name,
        passwords_recovered=recovered,
        total_passwords=total,
        secrets_learned=("kp", "ks", "all-site-passwords"),
        notes=(
            "both halves held: the attacker simply runs the derivation — "
            "this is the boundary the threat model (§II) excludes"
        ),
    )


def phone_plus_master_attack(
    scheme: PasswordManagerScheme, master_password_guess: str
) -> AttackOutcome:
    """Kp AND the master password: impersonate user + phone together."""
    total = len(scheme.accounts())
    if not isinstance(scheme, AmnesiaScheme):
        return AttackOutcome(
            vector=PHONE_PLUS_MASTER,
            scheme=scheme.name,
            passwords_recovered=0,
            total_passwords=total,
            notes="composed phone+MP attack modelled for Amnesia only",
        )
    if master_password_guess != scheme.master_password:
        return AttackOutcome(
            vector=PHONE_PLUS_MASTER,
            scheme=scheme.name,
            passwords_recovered=0,
            total_passwords=total,
            secrets_learned=("kp",),
            notes="master password guess wrong: server rejects the login",
        )
    # With the MP the attacker drives the real server (which holds Ks);
    # with Kp he can answer its phone round trips. Every account falls.
    artifacts = scheme.artifacts()
    table = _rebuild_table(scheme, artifacts.phone_side)
    recovered = 0
    for account in scheme.accounts():
        seed = scheme.seed_for(account.username, account.domain)
        candidate = generate_password(
            account.username, account.domain, seed, scheme.oid, table,
            scheme.policy,
        )
        if candidate == scheme.retrieve(account.username, account.domain):
            recovered += 1
    return AttackOutcome(
        vector=PHONE_PLUS_MASTER,
        scheme=scheme.name,
        passwords_recovered=recovered,
        total_passwords=total,
        secrets_learned=("kp", "master-password", "all-site-passwords"),
        master_password_recovered=True,
        notes=(
            "phone possession + MP knowledge = full impersonation; the "
            "paper's recovery protocols exist precisely to race this"
        ),
    )
