"""Server/cloud breach (§IV-C).

The attacker exfiltrates everything the scheme's server holds at rest
and works offline: decrypt vaults by guessing master passwords, derive
generative passwords if the server-side state suffices, and inventory
the metadata that leaks regardless.

For Amnesia the paper's claim is specific: ``Ks`` (O_id, seeds, account
list) plus the MP/P_id verifiers yield *no* site password because every
password also needs the 256-bit token ``T``, and the (µ, d) metadata is
the only actual leak. The attack code verifies this by attempting both
the dictionary attack on the MP verifier (finding MP still yields no
passwords) and a bounded brute force over tokens.
"""

from __future__ import annotations

import json

from repro.attacks.dictionary import OfflineDictionaryAttack
from repro.attacks.report import AttackOutcome
from repro.baselines.amnesia_adapter import AmnesiaScheme
from repro.baselines.base import PasswordManagerScheme
from repro.baselines.lastpass import LastPassLikeScheme
from repro.baselines.vault import derive_vault_key, open_vault
from repro.core.protocol import intermediate_value, render_password
from repro.crypto.hashing import salted_hash
from repro.util.errors import CryptoError

VECTOR = "server-breach"

_TOKEN_BRUTE_FORCE_BUDGET = 2_000  # hopeless by construction; bounded to run


def server_breach_attack(scheme: PasswordManagerScheme) -> AttackOutcome:
    """Steal the server-side artifacts and attack offline."""
    artifacts = scheme.artifacts()
    total = len(scheme.accounts())
    server = artifacts.server_side
    if not server:
        return AttackOutcome(
            vector=VECTOR,
            scheme=scheme.name,
            passwords_recovered=0,
            total_passwords=total,
            notes="nothing stored server-side",
        )
    if isinstance(scheme, LastPassLikeScheme):
        return _breach_lastpass(scheme, server, total)
    if isinstance(scheme, AmnesiaScheme):
        return _breach_amnesia(scheme, server, total)
    return AttackOutcome(
        vector=VECTOR,
        scheme=scheme.name,
        passwords_recovered=0,
        total_passwords=total,
        secrets_learned=tuple(sorted(server)),
        notes="server-side data present but no modelled offline attack",
    )


def _breach_lastpass(
    scheme: LastPassLikeScheme, server: dict[str, bytes], total: int
) -> AttackOutcome:
    """Guess the MP against the stolen verifier, then decrypt the vault."""
    attack = OfflineDictionaryAttack()

    def oracle(candidate: str) -> bool:
        return salted_hash(
            candidate.encode("utf-8"), server["auth_salt"]
        ) == server["auth_hash"]

    result = attack.run(oracle)
    if not result.succeeded:
        return AttackOutcome(
            vector=VECTOR,
            scheme=scheme.name,
            passwords_recovered=0,
            total_passwords=total,
            secrets_learned=("vault-ciphertext", "auth-verifier"),
            attempts=result.attempts,
            notes="master password not in dictionary",
        )
    key = derive_vault_key(result.found, server["vault_salt"])
    try:
        entries = open_vault(key, server["vault"])
    except CryptoError:
        entries = {}
    return AttackOutcome(
        vector=VECTOR,
        scheme=scheme.name,
        passwords_recovered=len(entries),
        total_passwords=total,
        secrets_learned=("master-password", "vault-plaintext"),
        master_password_recovered=True,
        attempts=result.attempts,
        notes=f"MP {result.found!r} guessed; vault decrypted",
    )


def _breach_amnesia(
    scheme: AmnesiaScheme, server: dict[str, bytes], total: int
) -> AttackOutcome:
    """Full ``Ks`` in hand: try the MP verifier, then brute-force tokens."""
    attack = OfflineDictionaryAttack()

    def oracle(candidate: str) -> bool:
        return salted_hash(
            candidate.encode("utf-8"), server["mp_salt"]
        ) == server["mp_hash"]

    mp_result = attack.run(oracle)

    # Even knowing O_id and every seed, a password needs T. Brute-force a
    # bounded slice of the 2^256 token space and verify nothing lands.
    entries = json.loads(server["entries"].decode("utf-8"))
    recovered = 0
    attempts = 0
    real_passwords = {
        (username, domain): scheme.retrieve(username, domain)
        for username, domain, __ in entries
    }
    for username, domain, seed_hex in entries:
        seed = bytes.fromhex(seed_hex)
        for guess in range(_TOKEN_BRUTE_FORCE_BUDGET // max(1, len(entries))):
            attempts += 1
            token_hex = guess.to_bytes(32, "big").hex()
            candidate = render_password(
                intermediate_value(token_hex, server["oid"], seed),
                scheme.policy,
            )
            # The attacker has no verification oracle for candidates (the
            # paper's point); we, the experimenters, compare against truth
            # to confirm the brute force found nothing.
            if candidate == real_passwords[(username, domain)]:
                recovered += 1
                break
    learned = ["account-usernames", "account-domains", "oid", "seeds",
               "registration-id"]
    if mp_result.succeeded:
        learned.append("master-password")
    return AttackOutcome(
        vector=VECTOR,
        scheme=scheme.name,
        passwords_recovered=recovered,
        total_passwords=total,
        secrets_learned=tuple(learned),
        master_password_recovered=mp_result.succeeded,
        attempts=attempts + mp_result.attempts,
        notes=(
            "Ks alone yields no site passwords; token space is 2^256. "
            "Metadata (u, d) and reg-id leak; reg-id enables the rogue-push "
            "social attack of §IV-C."
        ),
    )
