"""Attack outcomes and the full vector × scheme matrix."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.baselines.base import PasswordManagerScheme


@dataclass(frozen=True)
class AttackOutcome:
    """What one attack against one scheme actually achieved."""

    vector: str
    scheme: str
    passwords_recovered: int
    total_passwords: int
    secrets_learned: tuple[str, ...] = ()
    master_password_recovered: bool = False
    attempts: int = 0
    notes: str = ""

    @property
    def compromised(self) -> bool:
        return self.passwords_recovered > 0 or self.master_password_recovered

    def summary_row(self) -> tuple[str, str, str, str]:
        status = "BROKEN" if self.compromised else "safe"
        return (
            self.vector,
            self.scheme,
            f"{self.passwords_recovered}/{self.total_passwords}",
            status,
        )


def attack_matrix(
    schemes: Sequence[PasswordManagerScheme],
    attacks: Sequence[Callable[[PasswordManagerScheme], AttackOutcome]],
) -> list[AttackOutcome]:
    """Run every attack against every scheme (ablation A3)."""
    return [attack(scheme) for scheme in schemes for attack in attacks]
