"""The §IV-C rogue-push social attack, executable.

"The attacker may abscond with the victim's Ks and then send a request
R from his own malicious server using the victim's registration id.
Although it would appear suspicious to the victim that a request R came
in despite the victim never requesting anything, nevertheless the
possibility is there that a naive user may simply press accept and give
away their password."

The experiment runs the scenario on a live testbed: an attacker who
breached the server (so he holds `Ks`: O_id, seeds, account list, and
the registration id) pushes a crafted request through the rendezvous
service. Outcomes, mechanically:

- a *vigilant* user denies the unexpected prompt → nothing leaks;
- a *naive* user accepts → the phone computes the token T — but sends
  it to the *pinned* Amnesia server, whose pending registry has no such
  exchange; the token dies there. The attacker only profits if he can
  ALSO read the phone→server leg (broken TLS), in which case T plus his
  stolen `Ks` yields the password.

So the rogue push alone never suffices; it composes with a second
compromise — which is the two-factor boundary of §II again.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.protocol import generate_request, intermediate_value, render_password
from repro.core.templates import PasswordPolicy
from repro.server.pending import KIND_PASSWORD
from repro.testbed import RENDEZVOUS, SERVER, AmnesiaTestbed
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class RoguePushOutcome:
    """What the §IV-C attacker achieved."""

    user_accepted: bool
    token_observed: bool
    password_recovered: str | None
    notification_origin: str

    @property
    def succeeded(self) -> bool:
        return self.password_recovered is not None


def run_rogue_push(
    bed: AmnesiaTestbed,
    victim_login: str,
    account_id: int,
    naive_user: bool,
    broken_phone_tls: bool,
    attacker_host: str = "mallory",
) -> RoguePushOutcome:
    """Execute the rogue push against an enrolled victim.

    The attacker is assumed to have breached the server (Ks + reg id in
    hand). *naive_user* decides whether the unexpected prompt is
    accepted; *broken_phone_tls* grants the attacker the phone→server
    plaintext (the §IV-A composition).
    """
    user = bed.server.database.user_by_login(victim_login)
    account = bed.server.database.account_by_id(account_id)
    if user.reg_id is None:
        raise ValidationError("victim has no paired phone")

    # The attacker's own infrastructure: a host with a route to the
    # rendezvous server.
    from repro.net.link import Link
    from repro.sim.latency import Constant
    from repro.util.errors import NetworkError

    try:
        bed.network.host(attacker_host)
    except NetworkError:
        bed.network.add_host(attacker_host)
        bed.network.add_link(Link(attacker_host, RENDEZVOUS, Constant(20.0)))

    # With Ks he can craft the *correct* R for the victim's account.
    crafted_request = generate_request(
        account.username, account.domain, account.seed
    )
    rogue_pending_id = "f00d" * 8  # his own correlation id
    from repro.rendezvous.service import RENDEZVOUS_PORT

    import json

    bed.network.send(
        attacker_host,
        RENDEZVOUS,
        RENDEZVOUS_PORT,
        json.dumps(
            {
                "type": "push",
                "reg_id": user.reg_id,
                "data": {
                    "kind": KIND_PASSWORD,
                    "pending_id": rogue_pending_id,
                    "request": crafted_request,
                    "origin": attacker_host,
                },
            },
            sort_keys=True,
        ).encode("utf-8"),
    )

    # If TLS on the phone->server leg is broken, the attacker reads every
    # record; we model the §IV-A grant directly: export the phone
    # channel's keys once it exists and watch the wire.
    observed_tokens: list[str] = []
    if broken_phone_tls:
        import struct

        from repro.crypto.aead import aead_decrypt
        from repro.util.errors import CryptoError

        def tap(datagram):
            if datagram.src != "phone" or datagram.dst != SERVER:
                return
            http_client = bed.phone._http
            if http_client is None:
                return
            session = http_client._channel.session
            if session is None:
                return
            header_size = struct.calcsize(">B16sBQQ")
            payload = datagram.payload
            if len(payload) <= header_size or payload[0] != 4:
                return
            __, __, direction, seq, __ = struct.unpack(
                ">B16sBQQ", payload[:header_size]
            )
            if direction != 0:
                return
            key_c2s, __ = session.export_keys()
            try:
                plaintext = aead_decrypt(
                    key_c2s,
                    struct.pack(">IQ", direction, seq),
                    payload[header_size:],
                    aad=payload[:header_size],
                )
            except CryptoError:
                return
            marker = b'"token": "'
            index = plaintext.find(marker)
            if index >= 0:
                start = index + len(marker)
                observed_tokens.append(
                    plaintext[start : start + 64].decode("ascii")
                )

        bed.network.add_tap(tap)

    # Deliver the push and let the user react.
    bed.run(5_000)
    pending = bed.phone.pending_approvals()
    origin = pending[0].get("origin", "?") if pending else "?"
    accepted = False
    if pending and naive_user:
        bed.phone.approve(pending[0]["pending_id"])
        accepted = True
    elif pending:
        bed.phone.deny(pending[0]["pending_id"])
    bed.run(10_000)

    password = None
    if observed_tokens:
        # Ks (stolen) + T (observed) = the password, offline.
        intermediate = intermediate_value(
            observed_tokens[-1], user.oid, account.seed
        )
        password = render_password(
            intermediate,
            PasswordPolicy(charset=account.charset, length=account.length),
        )
    return RoguePushOutcome(
        user_accepted=accepted,
        token_observed=bool(observed_tokens),
        password_recovered=password,
        notification_origin=origin,
    )
