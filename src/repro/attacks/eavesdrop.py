"""Wire attacks: broken HTTPS (§IV-A) and rendezvous eavesdropping (§IV-B).

Broken HTTPS on the computer↔server leg exposes every password the
victim retrieves — for *any* scheme whose retrieval sends the password
over that leg, Amnesia included; the paper concedes exactly this.

Rendezvous eavesdropping yields ``R = H(u || d || σ)``. The attacker's
best move is a confirmation attack: hash candidate ``(u, d)`` pairs and
compare. With σ in the preimage this fails (σ is 256 random bits);
without σ — the counterfactual design §III-B2 argues against — it
succeeds. Both arms are implemented so the ablation can show the
difference.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.attacks.report import AttackOutcome
from repro.baselines.amnesia_adapter import AmnesiaScheme
from repro.baselines.base import PasswordManagerScheme
from repro.crypto.hashing import sha256_hex

HTTPS_VECTOR = "https-break"
RENDEZVOUS_VECTOR = "rendezvous-eavesdrop"


def https_break_attack(scheme: PasswordManagerScheme) -> AttackOutcome:
    """Read the computer↔server leg in plaintext during retrievals."""
    artifacts = scheme.artifacts()
    total = len(scheme.accounts())
    passwords_seen = sum(
        1 for name in artifacts.wire_retrieval if name.startswith("login:")
    )
    return AttackOutcome(
        vector=HTTPS_VECTOR,
        scheme=scheme.name,
        passwords_recovered=passwords_seen,
        total_passwords=total,
        secrets_learned=("retrieved-passwords",) if passwords_seen else (),
        notes=(
            "passwords cross this leg in the clear once TLS is broken; "
            "over time the attacker collects the victim's active set"
        ),
    )


def confirm_account_from_request(
    request_hex: str,
    candidates: Iterable[tuple[str, str]],
    with_seed: bytes | None = None,
) -> tuple[str, str] | None:
    """The §IV-B confirmation attack.

    For each candidate ``(u, d)`` the attacker computes the hash he
    believes R to be and compares. ``with_seed`` models the
    counterfactual where the attacker somehow knows σ (or the design
    omitted it — pass ``b""``-style known seeds to show the weakness).
    """
    for username, domain in candidates:
        if with_seed is None:
            candidate_hex = sha256_hex(
                username.encode("utf-8"), domain.encode("utf-8")
            )
        else:
            candidate_hex = sha256_hex(
                username.encode("utf-8"), domain.encode("utf-8"), with_seed
            )
        if candidate_hex == request_hex:
            return (username, domain)
    return None


def rendezvous_eavesdrop_attack(
    scheme: PasswordManagerScheme,
    candidate_accounts: Sequence[tuple[str, str]] | None = None,
) -> AttackOutcome:
    """Observe the rendezvous hop; attempt the confirmation attack."""
    total = len(scheme.accounts())
    if not isinstance(scheme, AmnesiaScheme):
        return AttackOutcome(
            vector=RENDEZVOUS_VECTOR,
            scheme=scheme.name,
            passwords_recovered=0,
            total_passwords=total,
            notes="scheme has no rendezvous hop",
        )
    candidates = (
        list(candidate_accounts)
        if candidate_accounts is not None
        else [(a.username, a.domain) for a in scheme.accounts()]
    )
    confirmed = 0
    attempts = 0
    for account in scheme.accounts():
        observed_request = scheme.request_for(account.username, account.domain)
        attempts += len(candidates)
        if confirm_account_from_request(observed_request, candidates) is not None:
            confirmed += 1
    return AttackOutcome(
        vector=RENDEZVOUS_VECTOR,
        scheme=scheme.name,
        passwords_recovered=0,
        total_passwords=total,
        secrets_learned=("request-values",) if total else (),
        attempts=attempts,
        notes=(
            f"confirmation attack identified {confirmed}/{total} accounts "
            "(σ blinds R; 0 expected)"
        ),
    )
