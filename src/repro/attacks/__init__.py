"""Executable attack experiments (§IV, Security Analysis).

The paper walks five attack vectors: broken HTTPS (§IV-A), rendezvous
eavesdropping (§IV-B), server breach (§IV-C), phone compromise (§IV-D)
— plus the guessing-resistance argument for generated passwords
(§IV-E). Each vector here is a function that takes a scheme's
*artifacts* (:class:`repro.baselines.base.SchemeArtifacts`) and
actually runs the attack — dictionary attacks really decrypt vaults,
eavesdroppers really compare hashes — producing an
:class:`~repro.attacks.report.AttackOutcome`.

Running the full matrix (every vector × every scheme) reproduces the
security half of Table III mechanically; see
``benchmarks/test_ablation_attacks.py``.
"""

from repro.attacks.dictionary import (
    candidate_dictionary,
    OfflineDictionaryAttack,
    DictionaryResult,
)
from repro.attacks.report import AttackOutcome, attack_matrix
from repro.attacks.breach import server_breach_attack
from repro.attacks.theft import phone_theft_attack, client_compromise_attack
from repro.attacks.eavesdrop import (
    https_break_attack,
    rendezvous_eavesdrop_attack,
    confirm_account_from_request,
)
from repro.attacks.guessing import (
    online_guessing_attack,
    unthrottled_guessing_estimate,
)
from repro.attacks.composed import (
    phone_plus_server_attack,
    phone_plus_master_attack,
)
from repro.attacks.rogue_push import run_rogue_push, RoguePushOutcome

__all__ = [
    "candidate_dictionary",
    "OfflineDictionaryAttack",
    "DictionaryResult",
    "AttackOutcome",
    "attack_matrix",
    "server_breach_attack",
    "phone_theft_attack",
    "client_compromise_attack",
    "https_break_attack",
    "rendezvous_eavesdrop_attack",
    "confirm_account_from_request",
    "online_guessing_attack",
    "unthrottled_guessing_estimate",
    "phone_plus_server_attack",
    "phone_plus_master_attack",
    "run_rogue_push",
    "RoguePushOutcome",
]
