"""Device theft/compromise attacks (§IV-D and the client-side analogue).

Phone theft yields the scheme's phone-side artifacts; client compromise
yields the computer's disk. Both attacks then try everything the stolen
half permits: decrypt what's decryptable, dictionary-attack what's
guessable, and report what remains out of reach.
"""

from __future__ import annotations

from repro.attacks.dictionary import OfflineDictionaryAttack
from repro.attacks.report import AttackOutcome
from repro.baselines.amnesia_adapter import AmnesiaScheme
from repro.baselines.base import PasswordManagerScheme
from repro.baselines.firefox import FirefoxLikeScheme
from repro.baselines.tapas import TapasLikeScheme
from repro.baselines.vault import derive_vault_key, open_vault
from repro.core.protocol import generate_token, intermediate_value, render_password
from repro.core.secrets import EntryTable
from repro.util.errors import CryptoError

PHONE_VECTOR = "phone-theft"
CLIENT_VECTOR = "client-compromise"

_OID_BRUTE_FORCE_BUDGET = 1_000


def phone_theft_attack(scheme: PasswordManagerScheme) -> AttackOutcome:
    """Steal the phone; attack its data at rest."""
    artifacts = scheme.artifacts()
    total = len(scheme.accounts())
    phone = artifacts.phone_side
    if not phone:
        return AttackOutcome(
            vector=PHONE_VECTOR,
            scheme=scheme.name,
            passwords_recovered=0,
            total_passwords=total,
            notes="scheme stores nothing on a phone",
        )
    if isinstance(scheme, TapasLikeScheme):
        # Ciphertext wallet without the computer-held key.
        try:
            open_vault(b"\x00" * 32, phone["wallet"])
            recovered = total  # unreachable: wrong key must fail
        except CryptoError:
            recovered = 0
        return AttackOutcome(
            vector=PHONE_VECTOR,
            scheme=scheme.name,
            passwords_recovered=recovered,
            total_passwords=total,
            secrets_learned=("wallet-ciphertext",),
            notes="wallet is ciphertext; key lives on the computer",
        )
    if isinstance(scheme, AmnesiaScheme):
        return _phone_theft_amnesia(scheme, phone, total)
    return AttackOutcome(
        vector=PHONE_VECTOR,
        scheme=scheme.name,
        passwords_recovered=0,
        total_passwords=total,
        secrets_learned=tuple(sorted(phone)),
        notes="phone-side data present but no modelled offline attack",
    )


def _phone_theft_amnesia(
    scheme: AmnesiaScheme, phone: dict[str, bytes], total: int
) -> AttackOutcome:
    """Full ``Kp`` (P_id + entry table) in hand — but no ``Ks``.

    The thief can compute T for any R he invents, but a password needs
    O_id and σ, and he does not even know which (u, d) an observed R
    was for (σ blinds it). Verify by brute-forcing a bounded slice of
    the O_id space for one account.
    """
    entry_bytes = phone["entry_table"]
    entry_size = scheme.params.entry_bytes
    table = EntryTable(
        [
            entry_bytes[i : i + entry_size]
            for i in range(0, len(entry_bytes), entry_size)
        ],
        scheme.params,
    )
    recovered = 0
    attempts = 0
    accounts = scheme.accounts()
    if accounts:
        target = accounts[0]
        truth = scheme.retrieve(target.username, target.domain)
        # The thief can compute T for any R he invents — but without σ he
        # cannot form the *right* R, and he lacks O_id and σ regardless.
        token_from_guessed_request = generate_token("0" * 64, table, scheme.params)
        for guess in range(_OID_BRUTE_FORCE_BUDGET):
            attempts += 1
            fake_oid = guess.to_bytes(scheme.params.oid_bytes, "big")
            fake_seed = guess.to_bytes(scheme.params.seed_bytes, "big")
            candidate = render_password(
                intermediate_value(token_from_guessed_request, fake_oid, fake_seed),
                scheme.policy,
            )
            if candidate == truth:
                recovered = 1
                break
    return AttackOutcome(
        vector=PHONE_VECTOR,
        scheme=scheme.name,
        passwords_recovered=recovered,
        total_passwords=total,
        secrets_learned=("pid", "entry-table"),
        attempts=attempts,
        notes=(
            "Kp alone yields no passwords: missing O_id and σ, and R values "
            "are blinded by σ. Recovery protocol (§III-C1) rotates Kp."
        ),
    )


def client_compromise_attack(scheme: PasswordManagerScheme) -> AttackOutcome:
    """Read the user computer's disk; attack what's there."""
    artifacts = scheme.artifacts()
    total = len(scheme.accounts())
    client = artifacts.client_side
    if not client:
        return AttackOutcome(
            vector=CLIENT_VECTOR,
            scheme=scheme.name,
            passwords_recovered=0,
            total_passwords=total,
            notes="nothing stored client-side",
        )
    if isinstance(scheme, FirefoxLikeScheme):
        attack = OfflineDictionaryAttack()

        def oracle(candidate: str) -> bool:
            key = derive_vault_key(candidate, client["vault_salt"])
            try:
                open_vault(key, client["vault"])
                return True
            except CryptoError:
                return False

        result = attack.run(oracle)
        if result.succeeded:
            key = derive_vault_key(result.found, client["vault_salt"])
            entries = open_vault(key, client["vault"])
            return AttackOutcome(
                vector=CLIENT_VECTOR,
                scheme=scheme.name,
                passwords_recovered=len(entries),
                total_passwords=total,
                secrets_learned=("master-password", "vault-plaintext"),
                master_password_recovered=True,
                attempts=result.attempts,
                notes=f"local vault cracked with MP {result.found!r}",
            )
        return AttackOutcome(
            vector=CLIENT_VECTOR,
            scheme=scheme.name,
            passwords_recovered=0,
            total_passwords=total,
            secrets_learned=("vault-ciphertext",),
            attempts=result.attempts,
            notes="master password not in dictionary",
        )
    if isinstance(scheme, TapasLikeScheme):
        # The key without the phone's ciphertext decrypts nothing.
        return AttackOutcome(
            vector=CLIENT_VECTOR,
            scheme=scheme.name,
            passwords_recovered=0,
            total_passwords=total,
            secrets_learned=("wallet-key",),
            notes="wallet key useless without the phone's ciphertext",
        )
    return AttackOutcome(
        vector=CLIENT_VECTOR,
        scheme=scheme.name,
        passwords_recovered=0,
        total_passwords=total,
        secrets_learned=tuple(sorted(client)),
        notes="client-side data present but no modelled offline attack",
    )
