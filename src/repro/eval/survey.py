"""The §VII user study: published counts plus a respondent model.

A human study cannot be re-run offline, so the reproduction encodes the
paper's published responses as a dataset (Figure 4a-d, demographics,
usability and preference numbers) and validates every aggregate the
text reports against it. A generative :class:`RespondentModel` can then
synthesise larger populations with the same marginal distributions for
sensitivity analyses.

One reconciliation (documented in EXPERIMENTS.md): Figure 4d's printed
bars (1, 14, 10, 6) sum to 31 only if the fifth category (Frequently)
is 0, which is how we encode it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.util.errors import ValidationError

N_PARTICIPANTS = 31


@dataclass(frozen=True)
class SurveyDataset:
    """Aggregated responses, exactly as the paper reports them."""

    n: int
    male: int
    age_mean: float
    age_std: float
    age_min: int
    age_max: int

    # Hours online per day (§VII-B)
    hours_online: Dict[str, int]

    # Figure 4a: "how often do you reuse passwords?"
    reuse: Dict[str, int]
    # Figure 4b: typical password length
    length: Dict[str, int]
    # Figure 4c: creation technique
    technique: Dict[str, int]
    # Figure 4d: change frequency
    change: Dict[str, int]

    # Accounts under management (§VII-C)
    accounts_10_or_less: int
    accounts_11_to_20: int
    believe_amnesia_increases_security: int

    # Usability (§VII-D)
    registering_convenient: int
    adding_easy: int
    generating_easy: int

    # Preference (§VII-E)
    prefer_amnesia: int
    non_pm_users: int
    non_pm_prefer_amnesia: int
    pm_users: int
    pm_prefer_amnesia: int

    def validate(self) -> None:
        """Check every published aggregate for internal consistency."""
        for name, distribution in (
            ("reuse", self.reuse),
            ("length", self.length),
            ("technique", self.technique),
            ("change", self.change),
            ("hours_online", self.hours_online),
        ):
            total = sum(distribution.values())
            if total != self.n:
                raise ValidationError(
                    f"{name} counts sum to {total}, expected n={self.n}"
                )
        if self.accounts_10_or_less + self.accounts_11_to_20 != self.n:
            raise ValidationError("account-count split does not cover n")
        if self.non_pm_users + self.pm_users != self.n:
            raise ValidationError("PM-user split does not cover n")
        if self.prefer_amnesia > self.n:
            raise ValidationError("preference count exceeds n")

    # -- the percentages the text quotes ------------------------------------------

    def registering_convenient_pct(self) -> float:
        return 100.0 * self.registering_convenient / self.n  # 77.4 %

    def adding_easy_pct(self) -> float:
        return 100.0 * self.adding_easy / self.n  # 83.8 % (26/31)

    def generating_easy_pct(self) -> float:
        return 100.0 * self.generating_easy / self.n

    def prefer_amnesia_pct(self) -> float:
        return 100.0 * self.prefer_amnesia / self.n  # 70.9 % (22/31)


PAPER_SURVEY = SurveyDataset(
    n=N_PARTICIPANTS,
    male=21,
    age_mean=33.32,
    age_std=9.92,
    age_min=20,
    age_max=61,
    hours_online={"1-4h": 4, "4-8h": 13, "8-12h": 8, "12h+": 6},
    reuse={"Never": 2, "Rarely": 5, "Sometimes": 8, "Mostly": 10, "Always": 6},
    length={"6~8": 12, "9~11": 16, "12~14": 2, "14+": 1},
    technique={"Personal Info": 20, "Mnemonic": 6, "Other": 5},
    change={"Never": 1, "Rarely": 14, "Yearly": 10, "Monthly": 6, "Frequently": 0},
    accounts_10_or_less=17,
    accounts_11_to_20=14,
    believe_amnesia_increases_security=27,
    registering_convenient=24,
    adding_easy=26,
    generating_easy=26,
    prefer_amnesia=22,
    non_pm_users=24,
    non_pm_prefer_amnesia=14,
    pm_users=7,
    pm_prefer_amnesia=6,
)


@dataclass
class Respondent:
    """One synthesised participant."""

    age: int
    male: bool
    reuse: str
    length: str
    technique: str
    change: str
    uses_password_manager: bool
    prefers_amnesia: bool


class RespondentModel:
    """Synthesise populations matching the published marginals.

    Useful for sensitivity sweeps (e.g. "would the preference result
    survive at n = 500 with the same rates?"). Draws each attribute
    independently from the dataset's marginal distribution.
    """

    def __init__(self, dataset: SurveyDataset = PAPER_SURVEY, seed: int = 0) -> None:
        dataset.validate()
        self.dataset = dataset
        self._rng = random.Random(seed)

    def _draw(self, distribution: Dict[str, int]) -> str:
        choices = list(distribution)
        weights = [distribution[c] for c in choices]
        return self._rng.choices(choices, weights=weights, k=1)[0]

    def sample(self) -> Respondent:
        data = self.dataset
        uses_pm = self._rng.random() < data.pm_users / data.n
        if uses_pm:
            prefers = self._rng.random() < data.pm_prefer_amnesia / max(
                1, data.pm_users
            )
        else:
            prefers = self._rng.random() < data.non_pm_prefer_amnesia / max(
                1, data.non_pm_users
            )
        # Clamped normal ages reproduce the published mean/std envelope.
        age = int(
            min(
                data.age_max,
                max(data.age_min, self._rng.gauss(data.age_mean, data.age_std)),
            )
        )
        return Respondent(
            age=age,
            male=self._rng.random() < data.male / data.n,
            reuse=self._draw(data.reuse),
            length=self._draw(data.length),
            technique=self._draw(data.technique),
            change=self._draw(data.change),
            uses_password_manager=uses_pm,
            prefers_amnesia=prefers,
        )

    def population(self, size: int) -> List[Respondent]:
        if size < 1:
            raise ValidationError(f"population size must be >= 1, got {size}")
        return [self.sample() for __ in range(size)]

    def preference_rate(self, size: int = 10_000) -> float:
        """Monte-Carlo preference share at a larger n."""
        population = self.population(size)
        return sum(1 for r in population if r.prefers_amnesia) / size
