"""Evaluation: every table and figure of the paper's §VI and §VII.

- :mod:`repro.eval.bonneau` — the Bonneau et al. UDS comparative
  framework [11] and Table III's ratings, with mechanical consistency
  checks against the implemented schemes and attacks.
- :mod:`repro.eval.latency` — the Figure 3 experiment: 100 password
  generations over the Wi-Fi and 4G profiles, mean and σ.
- :mod:`repro.eval.survey` — the §VII user study: the published counts
  behind Figure 4a-d, demographics, usability and preference numbers,
  plus a generative respondent model for sensitivity sweeps.
- :mod:`repro.eval.strength` — §IV-E's generated-password strength:
  composition expectations, password space, and the modulo-bias
  analysis for the entry-table ablation.
"""

from repro.eval.bonneau import (
    Rating,
    Property,
    ALL_PROPERTIES,
    TABLE_III,
    render_table_iii,
    mechanical_checks,
)
from repro.eval.latency import LatencyExperiment, LatencyStats, PAPER_FIGURE_3
from repro.eval.survey import (
    SurveyDataset,
    PAPER_SURVEY,
    RespondentModel,
)
from repro.eval.strength import (
    composition_expectation,
    composition_of,
    empirical_composition,
    index_bias,
    PAPER_COMPOSITION,
)

__all__ = [
    "Rating",
    "Property",
    "ALL_PROPERTIES",
    "TABLE_III",
    "render_table_iii",
    "mechanical_checks",
    "LatencyExperiment",
    "LatencyStats",
    "PAPER_FIGURE_3",
    "SurveyDataset",
    "PAPER_SURVEY",
    "RespondentModel",
    "composition_expectation",
    "composition_of",
    "empirical_composition",
    "index_bias",
    "PAPER_COMPOSITION",
]
