"""The disaster-recovery drill: rehearse total shard loss, verify bytes.

Failover (PR 4) answers the loss of one machine; this drill rehearses
the disaster failover cannot answer — a shard's primary AND standby
dying mid-exchange — and proves the durability plane's whole chain
end-to-end on one deterministic sim timeline:

1. a 2-shard cluster enrolls users and warms generations; the
   durability plane cuts periodic encrypted bundles to the off-site
   archive, with the bundle key escrowed k-of-n at install;
2. after a bundle lands, one affected account's seed is *rotated* —
   so the newest bundle alone is stale and a correct restore must
   replay the archived op-log tail;
3. a generation is issued and, 2 ms in, both of the victim shard's
   hosts are hard-crashed.  The probe plane detects it, attempts the
   (futile) failover, and the stuck exchange surfaces as a degraded
   502 — exactly what the client retry plane is for;
4. disaster recovery: the drill first proves ``k-1`` trustee shares
   CANNOT reconstruct the bundle key, then recovers it from ``k``
   shares, cold-restores the shard from the newest bundle + tail onto
   fresh hosts, re-joins the ring, and re-registers affected phones;
5. verification: every user's generated ``P`` — affected or not — must
   be bit-identical to its pre-disaster value (including the
   post-backup rotation), and browser sessions must still resolve
   without a re-login.

Everything runs on the sim clock, so two runs with the same seed must
produce bit-identical transition fingerprints — asserted by
``verify_drill`` (the ``drill --check`` smoke) and the test suite.
The headline DR number, ``restore_ms`` (sim time from starting the
restore to the last affected user re-verified), feeds the bench
harness as an absolute bound (``macro.drill.restore_ms``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cluster.chaos import CLUSTER_RETRY
from repro.cluster.testbed import ClusterTestbed
from repro.crypto.shamir import recover_secret
from repro.util.errors import CryptoError, ValidationError
from repro.web.http import HttpRequest

_USERS = ("dana", "drew", "dave")
_BACKUP_INTERVAL_MS = 5_000.0
_TRUSTEES = 5
_THRESHOLD = 3

#: Timeline (ms after the load phase starts).
_FIRST_BACKUP_SETTLE_MS = 5_500.0  # one periodic backup has landed
_ROTATE_SETTLE_MS = 500.0  # post-rotation op reaches the archive tail
_CRASH_DELAY_MS = 2.0  # hosts die this far into the doomed exchange
_DETECTION_MS = 2_500.0  # probes flag the shard down in this window
_RESTORE_SETTLE_MS = 1_000.0  # ring re-join + re-registrations land


@dataclass
class DrillResult:
    """One rehearsal, reduced to its verifiable story."""

    seed: str
    victim: str = ""
    affected: List[str] = field(default_factory=list)
    #: (t_ms, event) on the sim clock — the determinism contract.
    transitions: List[tuple] = field(default_factory=list)
    #: login -> post-restore P equals pre-disaster P.
    identical: Dict[str, bool] = field(default_factory=dict)
    sessions_survived: bool = False
    k_minus_one_rejected: bool = False
    mid_exchange_failures: int = 0
    failovers: int = 0
    reregistrations: List[str] = field(default_factory=list)
    bundle_seq: int = 0
    replayed_ops: int = 0
    backup_age_at_disaster_ms: float = 0.0
    restore_ms: float = 0.0

    def note(self, t_ms: float, event: str) -> None:
        self.transitions.append((t_ms, event))

    def fingerprint(self) -> str:
        """Bit-identical across runs with the same seed, or the drill
        is not deterministic."""
        parts = [
            f"seed={self.seed}",
            f"victim={self.victim}",
            "affected=" + ",".join(self.affected),
            "events=["
            + ";".join(f"{t:.3f}:{event}" for t, event in self.transitions)
            + "]",
            "identical="
            + ",".join(
                f"{login}:{int(ok)}" for login, ok in sorted(self.identical.items())
            ),
            f"sessions={int(self.sessions_survived)}",
            f"km1={int(self.k_minus_one_rejected)}",
            f"midfail={self.mid_exchange_failures}",
            f"failovers={self.failovers}",
            "rereg=" + ",".join(self.reregistrations),
            f"bundle={self.bundle_seq}+{self.replayed_ops}",
            f"age={self.backup_age_at_disaster_ms:.3f}",
            f"restore={self.restore_ms:.3f}",
        ]
        return "|".join(parts)

    def render(self) -> str:
        lines = [
            f"[drill] seed={self.seed} victim={self.victim} "
            f"affected={','.join(self.affected)}",
        ]
        for t_ms, event in self.transitions:
            lines.append(f"  {t_ms:>10.1f} ms  {event}")
        lines.append(
            f"  P bit-identical: "
            + ", ".join(
                f"{login}={'yes' if ok else 'NO'}"
                for login, ok in sorted(self.identical.items())
            )
        )
        lines.append(
            f"  sessions survived: {self.sessions_survived}; "
            f"k-1 shares rejected: {self.k_minus_one_rejected}; "
            f"mid-exchange failures: {self.mid_exchange_failures}"
        )
        lines.append(
            f"  bundle seq {self.bundle_seq} + {self.replayed_ops} replayed "
            f"tail ops; backup age at disaster "
            f"{self.backup_age_at_disaster_ms:.1f} ms; "
            f"restore-to-verified {self.restore_ms:.1f} ms"
        )
        return "\n".join(lines)


def run_drill(seed: int | str = "drill") -> DrillResult:
    """Run the rehearsal once on a fresh cluster; fully deterministic."""

    bed = ClusterTestbed(shards=2, seed=f"drill|{seed}")
    plane = bed.install_durability(
        trustees=_TRUSTEES,
        threshold=_THRESHOLD,
        interval_ms=_BACKUP_INTERVAL_MS,
    )
    result = DrillResult(seed=str(seed))

    browsers: Dict[str, object] = {}
    accounts: Dict[str, int] = {}
    for login in _USERS:
        browsers[login] = bed.enroll(login, f"master-{login}-password")
        accounts[login] = browsers[login].add_account(login, f"{login}.example.com")
    bed.run_until_idle()

    victim = bed.shard_of(_USERS[0]).name
    result.victim = victim
    result.affected = [
        login for login in _USERS if bed.shard_of(login).name == victim
    ]

    # Warm P for everyone (also establishes the token-session fast path
    # whose cache the restore must NOT serve from).
    before: Dict[str, str] = {}
    for login in _USERS:
        before[login] = browsers[login].generate_password(accounts[login])[
            "password"
        ]
    result.note(bed.kernel.now, "warm")

    plane.start()
    bed.gateway.start_probing()
    bed.run(_FIRST_BACKUP_SETTLE_MS)  # first periodic bundles land
    for name in sorted(bed.shards):
        result.note(
            bed.kernel.now, f"backup {name}@{plane.archive.newest_seq(name)}"
        )

    # Post-backup rotation: the newest bundle is now stale for this
    # account; only a tail replay restores the rotated seed.
    rotated = result.affected[0]
    browsers[rotated].rotate_password(accounts[rotated])
    before[rotated] = browsers[rotated].generate_password(accounts[rotated])[
        "password"
    ]
    bed.run(_ROTATE_SETTLE_MS)
    result.note(bed.kernel.now, f"rotate {rotated}")

    # The doomed exchange: issue a generation, then kill BOTH of the
    # victim's hosts 2 ms in.
    def on_response(response) -> None:
        if not response.ok:
            result.mid_exchange_failures += 1

    browsers[rotated].http.send(
        HttpRequest.json_request(
            "POST", f"/accounts/{accounts[rotated]}/generate", {}
        ),
        on_response,
        lambda error: setattr(
            result, "mid_exchange_failures", result.mid_exchange_failures + 1
        ),
    )
    bed.kernel.schedule(
        _CRASH_DELAY_MS, lambda: bed.crash_shard(victim), label="drill-disaster"
    )
    bed.run(_DETECTION_MS)
    disaster_at = bed.kernel.now
    result.note(disaster_at, f"disaster {victim}")
    result.backup_age_at_disaster_ms = plane.archive.backup_age_ms(
        victim, disaster_at
    )

    # -- disaster recovery ------------------------------------------------
    # First prove the escrow threshold: k-1 shares reconstruct nothing.
    try:
        recover_secret(plane.trustee_shares[: _THRESHOLD - 1])
    except CryptoError:
        result.k_minus_one_rejected = True
    key = recover_secret(plane.trustee_shares[1 : 1 + _THRESHOLD])

    restore_started = bed.kernel.now
    report = bed.restore_shard(victim, key=key)
    result.bundle_seq = report.bundle_seq
    result.replayed_ops = report.replayed_ops
    result.note(
        bed.kernel.now,
        f"restore {victim}@{report.bundle_seq}+{report.replayed_ops} "
        f"epoch={report.ring_epoch}",
    )
    bed.run(_RESTORE_SETTLE_MS)

    # -- verification -----------------------------------------------------
    # Every user — on the restored shard or not — must regenerate the
    # byte-identical P, through the existing cookie (no re-login).
    for login in _USERS:
        outcome = browsers[login].generate_password(
            accounts[login],
            retry=CLUSTER_RETRY,
            rng=bed.network.rng_stream(f"drill-verify-{login}"),
        )
        result.identical[login] = outcome["password"] == before[login]
    result.restore_ms = bed.kernel.now - restore_started
    result.note(bed.kernel.now, "verified")
    result.sessions_survived = all(
        browsers[login].http.get("/me").ok for login in _USERS
    )
    result.failovers = bed.gateway.failovers
    result.reregistrations = list(bed.reregistrations)

    plane.stop()
    bed.gateway.stop_probing()
    bed.run_until_idle()
    return result


def verify_drill(seed: int | str = "drill") -> DrillResult:
    """The ``drill --check`` smoke: one full rehearsal asserted, then a
    replay that must reproduce the fingerprint bit-for-bit."""

    first = run_drill(seed)
    failures: List[str] = []
    if not all(first.identical.values()):
        broken = [login for login, ok in first.identical.items() if not ok]
        failures.append(f"post-restore P diverged for {broken}")
    if not first.k_minus_one_rejected:
        failures.append("k-1 trustee shares were not rejected")
    if first.replayed_ops < 1:
        failures.append(
            "no tail ops replayed — the post-backup rotation never "
            "exercised the archive tail"
        )
    if not first.sessions_survived:
        failures.append("a browser session did not survive the restore")
    if first.mid_exchange_failures < 1:
        failures.append("the mid-exchange disaster never bit the workload")
    if not first.reregistrations:
        failures.append("no phone re-registrations were driven")
    if failures:
        raise ValidationError(
            "drill check FAILED:\n" + "\n".join(f"  - {line}" for line in failures)
        )
    second = run_drill(seed)
    if first.fingerprint() != second.fingerprint():
        raise ValidationError(
            "drill replay diverged:\n"
            f"  first : {first.fingerprint()}\n"
            f"  second: {second.fingerprint()}"
        )
    return first


__all__ = ["DrillResult", "run_drill", "verify_drill"]
