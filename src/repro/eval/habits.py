"""Quantifying the security uplift the survey only asserts (§VII-C).

The user study reports that 27/31 participants *believe* Amnesia
increases password security. This module measures the increase: it
builds a population of simulated users whose habits follow the survey's
marginal distributions (technique, reuse), gives each a handful of site
accounts, and compares their human-chosen passwords against Amnesia's
generated ones on the axes that matter to an attacker:

- dictionary coverage (what fraction of passwords a cracker's candidate
  list recovers),
- reuse blast radius (how many sites one recovered password opens),
- length and estimated entropy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.attacks.dictionary import candidate_dictionary
from repro.client.user import UserModel
from repro.core.protocol import generate_password
from repro.core.secrets import PhoneSecret
from repro.core.templates import PasswordPolicy
from repro.crypto.randomness import SeededRandomSource
from repro.eval.survey import PAPER_SURVEY, RespondentModel, SurveyDataset
from repro.util.errors import ValidationError

_TECHNIQUE_KEYS = {
    "Personal Info": "personal_info",
    "Mnemonic": "mnemonic",
    "Other": "other",
}
_REUSE_RATES = {
    "Never": 0.0,
    "Rarely": 0.25,
    "Sometimes": 0.5,
    "Mostly": 0.75,
    "Always": 0.95,
}


@dataclass(frozen=True)
class HabitReport:
    """Population-level password-security measurements."""

    population: int
    sites_per_user: int
    dictionary_crack_rate: float  # fraction of site passwords recovered
    mean_blast_radius: float  # sites opened per cracked password
    mean_length: float
    mean_entropy_bits: float  # crude log2(charset^length) estimate

    def summary(self) -> str:
        return (
            f"n={self.population} users x {self.sites_per_user} sites: "
            f"{100 * self.dictionary_crack_rate:.1f}% crackable, "
            f"blast radius {self.mean_blast_radius:.2f}, "
            f"len {self.mean_length:.1f}, "
            f"~{self.mean_entropy_bits:.0f} bits"
        )


def _charset_size(password: str) -> int:
    size = 0
    if any(c.islower() for c in password):
        size += 26
    if any(c.isupper() for c in password):
        size += 26
    if any(c.isdigit() for c in password):
        size += 10
    if any(not c.isalnum() for c in password):
        size += 32
    return max(size, 1)


def _entropy_estimate(password: str) -> float:
    return len(password) * math.log2(_charset_size(password))


def survey_population_users(
    dataset: SurveyDataset = PAPER_SURVEY,
    population: int = 31,
    seed: int = 0,
) -> list[UserModel]:
    """Users whose technique/reuse marginals follow the survey."""
    if population < 1:
        raise ValidationError("population must be >= 1")
    model = RespondentModel(dataset, seed=seed)
    users = []
    for index, respondent in enumerate(model.population(population)):
        users.append(
            UserModel(
                name=f"participant-{index}",
                master_password="",
                technique=_TECHNIQUE_KEYS[respondent.technique],
                reuse_rate=_REUSE_RATES[respondent.reuse],
                seed=seed * 10_000 + index,
            )
        )
    return users


def measure_human_habits(
    users: list[UserModel], sites_per_user: int = 8
) -> HabitReport:
    """Attack the population's human-chosen passwords."""
    dictionary = set(candidate_dictionary())
    total = 0
    cracked = 0
    blast_radii = []
    lengths = []
    entropies = []
    for user in users:
        domains = [f"site{i}.example" for i in range(sites_per_user)]
        passwords = [user.password_for(domain) for domain in domains]
        total += len(passwords)
        for password in passwords:
            lengths.append(len(password))
            entropies.append(_entropy_estimate(password))
        recovered = {p for p in set(passwords) if p in dictionary}
        cracked += sum(1 for p in passwords if p in recovered)
        for password in recovered:
            blast_radii.append(passwords.count(password))
    return HabitReport(
        population=len(users),
        sites_per_user=sites_per_user,
        dictionary_crack_rate=cracked / total if total else 0.0,
        mean_blast_radius=(
            sum(blast_radii) / len(blast_radii) if blast_radii else 0.0
        ),
        mean_length=sum(lengths) / len(lengths),
        mean_entropy_bits=sum(entropies) / len(entropies),
    )


def measure_amnesia(
    population: int = 31, sites_per_user: int = 8, seed: int = 0
) -> HabitReport:
    """The same measurement over Amnesia-generated passwords."""
    rng = SeededRandomSource(f"habits|{seed}")
    dictionary = set(candidate_dictionary())
    policy = PasswordPolicy()
    lengths = []
    entropies = []
    cracked = 0
    total = 0
    secret = PhoneSecret.generate(rng)
    for user_index in range(population):
        oid = rng.token_bytes(64)
        for site_index in range(sites_per_user):
            password = generate_password(
                f"user{user_index}",
                f"site{site_index}.example",
                rng.token_bytes(32),
                oid,
                secret.entry_table,
                policy,
            )
            total += 1
            lengths.append(len(password))
            entropies.append(_entropy_estimate(password))
            if password in dictionary:
                cracked += 1
    return HabitReport(
        population=population,
        sites_per_user=sites_per_user,
        dictionary_crack_rate=cracked / total,
        mean_blast_radius=0.0,  # every password is site-unique by design
        mean_length=sum(lengths) / len(lengths),
        mean_entropy_bits=sum(entropies) / len(entropies),
    )
