"""Stage-level latency attribution for the Figure 1 pipeline.

Figure 3 reports only the total ``t_end - t_start`` per generation;
this module runs the same experiment with the span recorder armed and
breaks the total into its pipeline stages — push wait (server →
rendezvous → phone delivery), phone compute, return hop, and server
render — so BENCH runs can say *where* the milliseconds go before and
after a performance change.

The breakdown is trustworthy by construction: the four stages partition
``[t_start, t_end]`` exactly (the test suite asserts the sum matches
the Figure 3 latency to within floating-point epsilon).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.net.profiles import WIFI_PROFILE, NetworkProfile
from repro.obs.spans import GENERATION_STAGES, StageStats, render_stage_table
from repro.phone.app import ApprovalPolicy
from repro.testbed import AmnesiaTestbed
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class StageBreakdown:
    """One transport's per-stage attribution."""

    transport: str
    trials: int
    stages: Dict[str, StageStats]
    total_mean_ms: float

    def ordered_stages(self) -> List[StageStats]:
        """Stages in pipeline order, then any extras alphabetically."""
        ordered = [
            self.stages[name] for name in GENERATION_STAGES if name in self.stages
        ]
        extras = sorted(set(self.stages) - set(GENERATION_STAGES))
        ordered.extend(self.stages[name] for name in extras)
        return ordered

    def share_of_total(self, stage: str) -> float:
        """A stage's share of the summed mean latency (0..1)."""
        stats = self.stages.get(stage)
        if stats is None or self.total_mean_ms <= 0:
            return math.nan
        return stats.mean_ms / self.total_mean_ms

    def render(self) -> str:
        header = (
            f"Stage breakdown — {self.transport}, {self.trials} generations"
        )
        return header + "\n" + render_stage_table(self.ordered_stages())


class StageBreakdownExperiment:
    """Run *trials* generations and attribute latency per stage."""

    def __init__(
        self,
        profile: NetworkProfile = WIFI_PROFILE,
        trials: int = 20,
        seed: int | str = 2016,
        warmup: int = 1,
    ) -> None:
        if trials < 1:
            raise ValidationError(f"trials must be >= 1, got {trials}")
        self.profile = profile
        self.trials = trials
        self.seed = seed
        self.warmup = warmup

    def run(self) -> StageBreakdown:
        bed = AmnesiaTestbed(
            seed=f"stages|{self.profile.name}|{self.seed}",
            profile=self.profile,
            approval=ApprovalPolicy.AUTO,
        )
        browser = bed.enroll("stage-tester", "master-password-2016")
        account_id = browser.add_account("stage-tester", "stages.example.com")
        for __ in range(self.warmup):
            browser.generate_password(account_id)
        bed.server.spans.clear()  # drop the warm-up traces
        for __ in range(self.trials):
            browser.generate_password(account_id)
        stages = bed.server.spans.stage_breakdown()
        total_mean = sum(
            stats.mean_ms
            for stats in stages.values()
            if not math.isnan(stats.mean_ms)
        )
        return StageBreakdown(
            transport=self.profile.name,
            trials=self.trials,
            stages=stages,
            total_mean_ms=total_mean,
        )


def run_stage_breakdown(
    trials: int = 20, seed: int | str = 2016
) -> Dict[str, StageBreakdown]:
    """The breakdown over both Figure 3 transports."""
    from repro.net.profiles import CELLULAR_4G_PROFILE

    return {
        "wifi": StageBreakdownExperiment(WIFI_PROFILE, trials, seed).run(),
        "4g": StageBreakdownExperiment(CELLULAR_4G_PROFILE, trials, seed).run(),
    }
