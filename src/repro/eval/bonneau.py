"""Bonneau et al.'s comparative framework [11] and Table III.

The framework scores authentication schemes on 25 properties across
usability (8), deployability (6) and security (11); each property is
fulfilled (●), quasi-fulfilled (◐) or unfulfilled (blank).

Ratings are *judgments*, so Table III is encoded as data — but the
paper's prose makes several explicit claims which the encoding must
honour and which :func:`mechanical_checks` validates against the
*implemented* schemes and attacks:

- Amnesia fulfils every deployability property except Mature (§VI-A);
- Amnesia is NOT resilient to physical observation (password shown as
  text) nor to internal observation (broken TLS exposes passwords);
- Amnesia and Tapas score similarly on usability (both bilateral);
- generative high-entropy passwords ⇒ resilient to unthrottled
  guessing; the login throttle ⇒ resilient to throttled guessing;
- per-site independent passwords ⇒ resilient to leaks from other
  verifiers.

Note on fidelity: the source PDF's table glyphs do not survive text
extraction cleanly, so cells not pinned by prose are reconstructed from
Bonneau's canonical ratings (for Password/Firefox/LastPass) and the
Tapas paper's self-evaluation; EXPERIMENTS.md lists which cells are
prose-pinned versus reconstructed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.util.errors import ValidationError


class Rating(enum.Enum):
    """One cell of the framework table."""

    FULL = "●"
    QUASI = "◐"
    NO = " "

    def __str__(self) -> str:
        return self.value


class Category(enum.Enum):
    USABILITY = "Usability"
    DEPLOYABILITY = "Deployability"
    SECURITY = "Security"


@dataclass(frozen=True)
class Property:
    """One of the 25 UDS properties."""

    name: str
    category: Category


USABILITY = [
    Property("Memorywise-Effortless", Category.USABILITY),
    Property("Scalable-for-Users", Category.USABILITY),
    Property("Nothing-to-Carry", Category.USABILITY),
    Property("Physically-Effortless", Category.USABILITY),
    Property("Easy-to-Learn", Category.USABILITY),
    Property("Efficient-to-Use", Category.USABILITY),
    Property("Infrequent-Errors", Category.USABILITY),
    Property("Easy-Recovery-from-Loss", Category.USABILITY),
]
DEPLOYABILITY = [
    Property("Accessible", Category.DEPLOYABILITY),
    Property("Negligible-Cost-per-User", Category.DEPLOYABILITY),
    Property("Server-Compatible", Category.DEPLOYABILITY),
    Property("Browser-Compatible", Category.DEPLOYABILITY),
    Property("Mature", Category.DEPLOYABILITY),
    Property("Non-Proprietary", Category.DEPLOYABILITY),
]
SECURITY = [
    Property("Resilient-to-Physical-Observation", Category.SECURITY),
    Property("Resilient-to-Targeted-Impersonation", Category.SECURITY),
    Property("Resilient-to-Throttled-Guessing", Category.SECURITY),
    Property("Resilient-to-Unthrottled-Guessing", Category.SECURITY),
    Property("Resilient-to-Internal-Observation", Category.SECURITY),
    Property("Resilient-to-Leaks-from-Other-Verifiers", Category.SECURITY),
    Property("Resilient-to-Phishing", Category.SECURITY),
    Property("Resilient-to-Theft", Category.SECURITY),
    Property("No-Trusted-Third-Party", Category.SECURITY),
    Property("Requiring-Explicit-Consent", Category.SECURITY),
    Property("Unlinkable", Category.SECURITY),
]
ALL_PROPERTIES: List[Property] = USABILITY + DEPLOYABILITY + SECURITY

_F, _Q, _N = Rating.FULL, Rating.QUASI, Rating.NO

# Ratings per scheme, in ALL_PROPERTIES order.
TABLE_III: Dict[str, List[Rating]] = {
    # Bonneau's canonical "Web passwords" row.
    "Password": [
        _N, _N, _F, _N, _F, _F, _Q, _F,          # usability
        _F, _F, _F, _F, _F, _F,                  # deployability
        _N, _Q, _N, _N, _N, _N, _N, _F, _F, _F, _F,  # security
    ],
    # Built-in browser manager with a master password.
    "Firefox (MP)": [
        _Q, _F, _N, _N, _F, _F, _Q, _N,          # vault tied to one machine
        _F, _F, _F, _F, _F, _F,
        _N, _Q, _Q, _Q, _N, _N, _Q, _N, _F, _Q, _F,
    ],
    # Cloud vault manager.
    "LastPass": [
        _Q, _F, _F, _Q, _F, _F, _Q, _F,
        _F, _F, _F, _Q, _F, _N,                  # proprietary
        _N, _Q, _Q, _Q, _N, _Q, _Q, _Q, _N, _Q, _F,
    ],
    # Bilateral retrieval manager (McCarney et al. [13]).
    "Tapas": [
        _F, _F, _N, _N, _F, _Q, _Q, _N,          # bilateral: phone required
        _F, _F, _F, _F, _N, _F,
        _N, _F, _F, _F, _N, _Q, _F, _Q, _F, _F, _F,
    ],
    # This paper.
    "Amnesia": [
        _Q, _F, _N, _N, _F, _Q, _Q, _Q,          # one MP; carry the phone
        _F, _F, _F, _F, _N, _F,                  # all but Mature (§VI-A)
        _N, _F, _F, _F, _N, _F, _Q, _F, _N, _F, _F,
    ],
}

SCHEME_ORDER = ["Password", "Firefox (MP)", "LastPass", "Tapas", "Amnesia"]


def rating_for(scheme: str, property_name: str) -> Rating:
    """Look up one Table III cell."""
    try:
        ratings = TABLE_III[scheme]
    except KeyError:
        raise ValidationError(f"unknown scheme {scheme!r}") from None
    for prop, rating in zip(ALL_PROPERTIES, ratings):
        if prop.name == property_name:
            return rating
    raise ValidationError(f"unknown property {property_name!r}")


def render_table_iii() -> str:
    """Render Table III in the paper's orientation (schemes × properties)."""
    lines = []
    header = f"{'Scheme':14s} " + " ".join(
        f"{i:>2d}" for i in range(1, len(ALL_PROPERTIES) + 1)
    )
    lines.append(header)
    for scheme in SCHEME_ORDER:
        cells = " ".join(f"{str(r):>2s}" for r in TABLE_III[scheme])
        lines.append(f"{scheme:14s} {cells}")
    lines.append("")
    lines.append("Legend: ● fulfilled, ◐ quasi-fulfilled, (blank) unfulfilled")
    for index, prop in enumerate(ALL_PROPERTIES, start=1):
        lines.append(f"  {index:2d}. [{prop.category.value[:1]}] {prop.name}")
    return "\n".join(lines)


@dataclass(frozen=True)
class ConsistencyCheck:
    """One mechanical validation of an encoded rating."""

    scheme: str
    property_name: str
    encoded: Rating
    observed: bool  # True = behaviour supports at least QUASI
    consistent: bool
    evidence: str


def mechanical_checks() -> list[ConsistencyCheck]:
    """Validate prose-pinned Table III cells against the implementation.

    Each check derives the *behavioural* truth from the implemented
    schemes/attacks and compares it with the encoded rating.
    """
    from repro.attacks.breach import server_breach_attack
    from repro.attacks.eavesdrop import https_break_attack
    from repro.attacks.theft import phone_theft_attack
    from repro.baselines.amnesia_adapter import AmnesiaScheme
    from repro.core.templates import PasswordPolicy

    checks: list[ConsistencyCheck] = []
    scheme = AmnesiaScheme()
    scheme.add_account("alice", "mail.example.com")
    scheme.add_account("alice", "shop.example.com")

    # Unthrottled guessing: entropy of a default generated password.
    entropy = PasswordPolicy().entropy_bits()
    encoded = rating_for("Amnesia", "Resilient-to-Unthrottled-Guessing")
    checks.append(
        ConsistencyCheck(
            "Amnesia",
            "Resilient-to-Unthrottled-Guessing",
            encoded,
            entropy >= 128,
            (entropy >= 128) == (encoded is Rating.FULL),
            f"default policy entropy = {entropy:.1f} bits",
        )
    )

    # Leaks from other verifiers: per-site passwords must be independent.
    p1 = scheme.retrieve("alice", "mail.example.com")
    p2 = scheme.retrieve("alice", "shop.example.com")
    encoded = rating_for("Amnesia", "Resilient-to-Leaks-from-Other-Verifiers")
    checks.append(
        ConsistencyCheck(
            "Amnesia",
            "Resilient-to-Leaks-from-Other-Verifiers",
            encoded,
            p1 != p2,
            (p1 != p2) == (encoded is Rating.FULL),
            "distinct passwords per site",
        )
    )

    # Theft: the phone-theft attack must recover nothing.
    outcome = phone_theft_attack(scheme)
    encoded = rating_for("Amnesia", "Resilient-to-Theft")
    checks.append(
        ConsistencyCheck(
            "Amnesia",
            "Resilient-to-Theft",
            encoded,
            not outcome.compromised,
            (not outcome.compromised) == (encoded is Rating.FULL),
            outcome.notes,
        )
    )

    # Internal observation: broken TLS exposes retrieved passwords, so the
    # encoded rating must be NO.
    wire = https_break_attack(scheme)
    encoded = rating_for("Amnesia", "Resilient-to-Internal-Observation")
    checks.append(
        ConsistencyCheck(
            "Amnesia",
            "Resilient-to-Internal-Observation",
            encoded,
            not wire.compromised,
            wire.compromised == (encoded is Rating.NO),
            "broken TLS exposes generated passwords (§VI-A)",
        )
    )

    # Server breach must not break Amnesia (supports the security column
    # generally and the paper's central claim).
    breach = server_breach_attack(scheme)
    checks.append(
        ConsistencyCheck(
            "Amnesia",
            "Resilient-to-Leaks-from-Other-Verifiers",
            rating_for("Amnesia", "Resilient-to-Leaks-from-Other-Verifiers"),
            not breach.compromised,
            not breach.compromised,
            "server breach recovers 0 passwords",
        )
    )

    # Requiring-Explicit-Consent: the phone's manual-approval mode makes
    # every generation wait for a user tap.
    from repro.phone.app import ApprovalPolicy
    from repro.testbed import AmnesiaTestbed
    from repro.web.http import HttpRequest

    bed = AmnesiaTestbed(seed="bonneau-consent", approval=ApprovalPolicy.MANUAL)
    browser = bed.enroll("checker", "bonneau-master-pw")
    account_id = browser.add_account("checker", "consent.example")
    outcome: dict = {}
    browser.http.send(
        HttpRequest.json_request("POST", f"/accounts/{account_id}/generate", {}),
        lambda response: outcome.update(response=response),
    )
    bed.run(1_000)
    waits_for_tap = "response" not in outcome and bool(
        bed.phone.pending_approvals()
    )
    if waits_for_tap:
        bed.phone.approve(bed.phone.pending_approvals()[0]["pending_id"])
        bed.drive_until(lambda: "response" in outcome)
    encoded = rating_for("Amnesia", "Requiring-Explicit-Consent")
    checks.append(
        ConsistencyCheck(
            "Amnesia",
            "Requiring-Explicit-Consent",
            encoded,
            waits_for_tap,
            waits_for_tap == (encoded is Rating.FULL),
            "generation blocks until the user's phone tap",
        )
    )

    # Resilient-to-Throttled-Guessing: the live login endpoint must
    # actually throttle a dictionary run.
    from repro.attacks.guessing import online_guessing_attack

    bed2 = AmnesiaTestbed(seed="bonneau-throttle")
    victim = bed2.new_browser()
    victim.signup("victim", "monkey123")  # in-dictionary on purpose
    report = online_guessing_attack(bed2, "victim", budget=60)
    throttled = (
        not report.master_password_found
        and report.attempts_rejected_by_throttle > 0
    )
    encoded = rating_for("Amnesia", "Resilient-to-Throttled-Guessing")
    checks.append(
        ConsistencyCheck(
            "Amnesia",
            "Resilient-to-Throttled-Guessing",
            encoded,
            throttled,
            throttled == (encoded is Rating.FULL),
            f"throttle rejected {report.attempts_rejected_by_throttle} of 60 "
            "guesses at an in-dictionary MP",
        )
    )

    # Resilient-to-Phishing (quasi): the derivation binds the domain, so
    # a password generated "for" a look-alike domain differs from the
    # real one — but a user pasting the *real* password into a phish
    # still loses it, hence QUASI rather than FULL.
    real = scheme.retrieve("alice", "mail.example.com")
    scheme.add_account("alice", "mail.examp1e.com")  # the look-alike
    phished = scheme.retrieve("alice", "mail.examp1e.com")
    domain_bound = real != phished
    encoded = rating_for("Amnesia", "Resilient-to-Phishing")
    checks.append(
        ConsistencyCheck(
            "Amnesia",
            "Resilient-to-Phishing",
            encoded,
            domain_bound,
            domain_bound == (encoded in (Rating.FULL, Rating.QUASI)),
            "R = H(u||d||sigma) binds the domain; look-alike derives a "
            "different password",
        )
    )
    return checks
