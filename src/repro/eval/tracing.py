"""The tracing-plane acceptance and chaos scenarios (``trace --check``).

Two deterministic arcs over the sharded cluster testbed:

**Acceptance** — one bilateral generation with sampling wide open. The
assembled trace must be a single complete tree rooted at the gateway,
the shard's generate server span must equal the Figure 3 latency the
browser measured, the four stage spans must match the PR 1
:class:`~repro.obs.spans.SpanRecorder` breakdown span-for-span, and the
critical path's per-stage exclusive time must sum back to that latency.

**Chaos** — steady generation load with default tail sampling, a
latency spike on the push leg (one exchange crosses the slow-keep
threshold), and a mid-exchange shard-primary crash (the primary's open
server span dies with the host, so the survivors' spans assemble into
an ``incomplete``-flagged tree; the gateway drains its in-flight entry
as a ``gateway.failover_drain`` span). The run must produce at least
one sampled-out, one kept-slow, one kept-error and one incomplete
trace — and replay bit-identically under the same seed, which is what
makes traces usable as regression artifacts at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cluster.testbed import ClusterTestbed, RENDEZVOUS, phone_host
from repro.faults.plane import FaultSchedule
from repro.obs.spans import GENERATION_STAGES
from repro.util.errors import ValidationError
from repro.web.http import HttpRequest

#: Chaos load shape: two users, one generation every ~450 ms each.
_USERS = ("tina", "tom")
_ISSUE_GAP_MS = 450.0
_LOAD_STOP_MS = 12_000.0
_RUN_MS = 22_000.0

#: Push-leg latency spike: tina's exchange issued at t=2350 rides
#: gcm->phone hops inflated enough to cross the slow-keep threshold.
_SPIKE_AT_MS = 2_150.0
_SPIKE_MS = 400.0
_SPIKE_EXTRA_MS = 80.0
_SLOW_KEEP_MS = 120.0

#: Crash the serving primary 12 ms into an exchange (ticks land at
#: 100 + k*450): the push is already at the rendezvous, the server
#: span is still open — and dies unexported with the host.
_CRASH_AT_MS = 3_712.0

#: A rendezvous outage mid-run: pushes fail fast (degraded 503), so
#: complete-but-errored traces accumulate — the error-keep arm of the
#: tail sampler. Heartbeats re-register the phones after restart.
_GCM_CRASH_AT_MS = 6_000.0
_GCM_DOWN_MS = 3_000.0
_HEARTBEAT_INTERVAL_MS = 1_000.0
_HEARTBEAT_MISS_THRESHOLD = 2

_QUIESCE_MS = 2_000.0

#: Stage-sum and duration comparisons: everything derives from the one
#: sim clock, so only float accumulation noise is tolerated.
_EPS_MS = 1e-6


@dataclass
class TracingAcceptanceResult:
    """One clean bilateral generation, reduced to its trace facts."""

    seed: str
    latency_ms: float = 0.0
    generate_span_ms: float = 0.0
    root_node: str = ""
    span_count: int = 0
    incomplete: bool = True
    #: Stage name -> (recorder duration, trace-span duration).
    stages: Dict[str, tuple] = field(default_factory=dict)
    #: Stage name -> exclusive ms on the critical path.
    critical: Dict[str, float] = field(default_factory=dict)
    critical_total_ms: float = 0.0
    root_duration_ms: float = 0.0
    trace_fingerprint: str = ""

    def render(self) -> str:
        lines = [
            f"[tracing-accept] seed={self.seed} latency={self.latency_ms:.3f}ms"
            f" spans={self.span_count} root={self.root_node}"
            f" incomplete={self.incomplete}",
            f"  generate span {self.generate_span_ms:.3f}ms"
            f"  critical path {self.critical_total_ms:.3f}ms"
            f" of root {self.root_duration_ms:.3f}ms",
        ]
        for name in GENERATION_STAGES:
            recorded, traced = self.stages.get(name, (0.0, 0.0))
            lines.append(
                f"  stage {name:<14} recorder={recorded:8.3f}ms"
                f" trace={traced:8.3f}ms"
                f" critical={self.critical.get(name, 0.0):8.3f}ms"
            )
        return "\n".join(lines)


def run_tracing_acceptance(
    seed: int | str = "tracing",
) -> TracingAcceptanceResult:
    """One generation through the 2-shard cluster, sampling wide open."""
    bed = ClusterTestbed(shards=2, seed=f"tracing-accept|{seed}")
    store = bed.install_tracing(keep_pct=100, quiesce_ms=_QUIESCE_MS)
    plane = bed.install_telemetry()
    result = TracingAcceptanceResult(seed=str(seed))

    browser = bed.enroll("tina", "tina-master-password")
    account_id = browser.add_account("tina", "tina.example.com")
    generated = browser.generate_password(account_id)
    result.latency_ms = float(generated["latency_ms"])
    shard = bed.shard_of("tina")
    corr_id = shard.serving.spans.trace_ids()[-1]
    recorder_stages = {
        span.name: span.duration_ms
        for span in shard.serving.spans.trace(corr_id)
    }

    bed.run(_QUIESCE_MS + 4_000.0)  # quiesce, then scrape + decide
    plane.stop()
    bed.run_until_idle()
    store.finalize()

    tree = store.trace_for_corr(corr_id)
    if tree is None:
        raise ValidationError(
            f"no stored trace for generation corr id {corr_id!r}"
        )
    result.incomplete = tree.incomplete
    result.span_count = tree.span_count
    result.root_duration_ms = tree.root_duration_ms
    result.trace_fingerprint = tree.fingerprint()
    if tree.root is not None:
        result.root_node = tree.root.node
    generate_spans = [
        span
        for span in tree.spans
        if span.name.endswith("/generate") and span.kind == "server"
        and span.node == shard.serving.host.name
    ]
    if generate_spans:
        result.generate_span_ms = generate_spans[0].duration_ms
    for name in GENERATION_STAGES:
        traced = tree.spans_named(name)
        result.stages[name] = (
            recorder_stages.get(name, 0.0),
            traced[0].duration_ms if traced else -1.0,
        )
    for span, exclusive in tree.critical_path():
        result.critical_total_ms += exclusive
        if span.name in GENERATION_STAGES:
            result.critical[span.name] = (
                result.critical.get(span.name, 0.0) + exclusive
            )
    return result


def check_acceptance(result: TracingAcceptanceResult) -> List[str]:
    """The acceptance contract, as a list of failures (empty = pass)."""
    failures: List[str] = []
    if result.incomplete:
        failures.append("clean generation assembled as an incomplete trace")
    if result.root_node != "gateway":
        failures.append(
            f"trace is not rooted at the gateway (root on {result.root_node!r})"
        )
    if abs(result.generate_span_ms - result.latency_ms) > _EPS_MS:
        failures.append(
            "generate server span does not equal the Figure 3 latency: "
            f"span={result.generate_span_ms!r} latency={result.latency_ms!r}"
        )
    for name in GENERATION_STAGES:
        recorded, traced = result.stages.get(name, (0.0, -1.0))
        if abs(recorded - traced) > _EPS_MS:
            failures.append(
                f"stage {name!r} differs between SpanRecorder ({recorded!r})"
                f" and the stored trace ({traced!r})"
            )
    stage_critical = sum(result.critical.values())
    if abs(stage_critical - result.latency_ms) > 1e-3:
        failures.append(
            "critical-path stage exclusives do not sum to the latency: "
            f"{stage_critical!r} vs {result.latency_ms!r}"
        )
    if result.critical_total_ms > result.root_duration_ms + _EPS_MS:
        failures.append(
            "critical path exceeds the root span duration: "
            f"{result.critical_total_ms!r} > {result.root_duration_ms!r}"
        )
    return failures


@dataclass
class TracingChaosResult:
    """One chaos run, reduced to its observable story."""

    seed: str
    issued: int = 0
    completed: int = 0
    failed: int = 0
    stats: Dict[str, object] = field(default_factory=dict)
    kept_by_reason: Dict[str, int] = field(default_factory=dict)
    incomplete_traces: int = 0
    drain_spans: int = 0
    store_fingerprint: str = ""
    #: The run's TraceStore, for rendering (not part of the fingerprint).
    store: object = None

    def fingerprint(self) -> str:
        """Bit-identical across runs with the same seed, or traces are
        not usable as regression artifacts."""
        reasons = ",".join(
            f"{reason}:{count}"
            for reason, count in sorted(self.kept_by_reason.items())
        )
        return "|".join(
            [
                f"seed={self.seed}",
                f"io={self.issued}/{self.completed}/{self.failed}",
                f"kept={self.stats.get('traces_kept', 0)}",
                f"out={self.stats.get('traces_sampled_out', 0)}",
                f"reasons=[{reasons}]",
                f"incomplete={self.incomplete_traces}",
                f"drain={self.drain_spans}",
                f"store={self.store_fingerprint}",
            ]
        )

    def render(self) -> str:
        return (
            f"[tracing-chaos] seed={self.seed} issued={self.issued}"
            f" ok={self.completed} failed={self.failed}\n"
            f"  kept={self.stats.get('traces_kept', 0)}"
            f" sampled_out={self.stats.get('traces_sampled_out', 0)}"
            f" by_reason={dict(sorted(self.kept_by_reason.items()))}"
            f" incomplete={self.incomplete_traces}"
            f" failover_drains={self.drain_spans}"
        )


def run_tracing_chaos(seed: int | str = "tracing") -> TracingChaosResult:
    """Steady load + latency spike + mid-exchange primary crash."""
    bed = ClusterTestbed(shards=2, seed=f"tracing|{seed}")
    store = bed.install_tracing(slow_ms=_SLOW_KEEP_MS, quiesce_ms=_QUIESCE_MS)
    bed.install_telemetry()
    result = TracingChaosResult(seed=str(seed))

    population = []
    for login in _USERS:
        browser = bed.enroll(login, f"master-{login}-password")
        account_id = browser.add_account(login, f"{login}.example.com")
        bed.phones[login].enable_resilience(
            login,
            heartbeat_interval_ms=_HEARTBEAT_INTERVAL_MS,
            miss_threshold=_HEARTBEAT_MISS_THRESHOLD,
        )
        population.append((browser, account_id))

    bed.install_fault_plane(
        FaultSchedule()
        .latency_spike(
            _SPIKE_AT_MS,
            _SPIKE_MS,
            RENDEZVOUS,
            phone_host(_USERS[0]),
            extra_ms=_SPIKE_EXTRA_MS,
        )
        .crash(_GCM_CRASH_AT_MS, RENDEZVOUS, down_ms=_GCM_DOWN_MS)
    )
    bed.gateway.start_probing()
    crash_shard = bed.shard_of(_USERS[0]).name
    bed.kernel.schedule(
        _CRASH_AT_MS,
        lambda: bed.crash_primary(crash_shard),
        label="tracing-crash",
    )

    start = bed.kernel.now

    def issue(browser, account_id) -> None:
        result.issued += 1

        def on_response(response) -> None:
            if response.ok:
                result.completed += 1
            else:
                result.failed += 1

        browser.http.send(
            HttpRequest.json_request(
                "POST", f"/accounts/{account_id}/generate", {}
            ),
            on_response,
            lambda error: setattr(result, "failed", result.failed + 1),
        )

    def schedule_load(browser, account_id, offset_ms: float) -> None:
        def tick() -> None:
            if bed.kernel.now - start >= _LOAD_STOP_MS:
                return
            issue(browser, account_id)
            bed.kernel.schedule(_ISSUE_GAP_MS, tick, label="tracing-load")

        bed.kernel.schedule(offset_ms, tick, label="tracing-load")

    for index, (browser, account_id) in enumerate(population):
        schedule_load(browser, account_id, 100.0 + index * (_ISSUE_GAP_MS / 2))

    bed.run(_RUN_MS)
    bed.telemetry.stop()
    bed.gateway.stop_probing()
    bed.run_until_idle()
    store.finalize()

    result.stats = store.stats()
    result.kept_by_reason = dict(result.stats.get("kept_by_reason", {}))
    result.incomplete_traces = sum(
        1 for tree in store.traces() if tree.incomplete
    )
    result.drain_spans = sum(
        len(tree.spans_named("gateway.failover_drain"))
        for tree in store.traces()
    )
    result.store_fingerprint = store.fingerprint()
    result.store = store
    return result


def verify_tracing(seed: int | str = "tracing") -> tuple:
    """The ``trace --check`` smoke: acceptance contract + chaos arc +
    bit-identical replay. Returns ``(acceptance, chaos)`` results."""
    acceptance = run_tracing_acceptance(seed)
    failures = check_acceptance(acceptance)
    replay = run_tracing_acceptance(seed)
    if acceptance.trace_fingerprint != replay.trace_fingerprint:
        failures.append("acceptance trace replay diverged")
    chaos = run_tracing_chaos(seed)
    if int(chaos.stats.get("traces_sampled_out", 0)) < 1:
        failures.append("tail sampling never dropped a trace")
    if chaos.kept_by_reason.get("slow", 0) < 1:
        failures.append("latency spike never produced a kept-slow trace")
    if chaos.kept_by_reason.get("error", 0) < 1:
        failures.append("primary crash never produced a kept-error trace")
    if chaos.incomplete_traces < 1:
        failures.append("mid-exchange crash never yielded an incomplete trace")
    if chaos.drain_spans < 1:
        failures.append("failover drained no traced in-flight entries")
    second = run_tracing_chaos(seed)
    if chaos.fingerprint() != second.fingerprint():
        failures.append(
            "tracing chaos replay diverged:\n"
            f"  first : {chaos.fingerprint()[:400]}\n"
            f"  second: {second.fingerprint()[:400]}"
        )
    if failures:
        raise ValidationError(
            "tracing check failed:\n  - " + "\n  - ".join(failures)
        )
    return acceptance, chaos


__all__ = [
    "TracingAcceptanceResult",
    "TracingChaosResult",
    "run_tracing_acceptance",
    "run_tracing_chaos",
    "check_acceptance",
    "verify_tracing",
]
