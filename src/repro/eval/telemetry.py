"""The telemetry chaos arm: do the alerts actually fire?

A monitoring stack that has never seen an outage is untested code. This
scenario runs the full sharded cluster with the telemetry plane
installed, drives a steady generation load through the gateway, then
crashes the rendezvous service mid-run. While gcm is down every
generation stalls on the push leg and surfaces as a degraded 503 at the
gateway — exactly the traffic the availability SLO watches. The
expected arc:

1. scrapes of ``gcm`` start failing → its series go stale,
2. 5xx responses accumulate → fast+slow burn rates cross the
   threshold → ``gateway-availability`` goes ``pending`` then
   ``firing``,
3. gcm restarts, phones re-register via heartbeat, generations
   succeed again → burn decays → the alert ``resolved``.

Everything runs on the sim clock, so the *transition timestamps
themselves* are deterministic: two runs with the same seed must
produce bit-identical fingerprints. That property is asserted by
``verify_telemetry_chaos`` (the ``slo --check`` smoke) and the test
suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cluster.testbed import RENDEZVOUS, ClusterTestbed
from repro.faults.plane import FaultSchedule
from repro.obs.slo import FIRING, OK, PENDING, RESOLVED
from repro.util.errors import ValidationError
from repro.web.http import HttpRequest

#: Load shape: two users, one generation every ~450 ms each.
_USERS = ("tina", "tom")
_ISSUE_GAP_MS = 450.0
_LOAD_STOP_MS = 30_000.0

#: Fault shape: crash gcm shortly after the load warms up, long enough
#: that the fast *and* slow burn windows both cross their threshold.
_CRASH_AT_MS = 6_000.0
_CRASH_DOWN_MS = 8_000.0
_RUN_MS = 45_000.0

_HEARTBEAT_INTERVAL_MS = 1_000.0
_HEARTBEAT_MISS_THRESHOLD = 2


@dataclass
class TelemetryChaosResult:
    """One run of the scenario, reduced to its observable story."""

    seed: str
    issued: int = 0
    completed: int = 0
    failed: int = 0
    #: (t_ms, from, to) per SLO, straight off the evaluator.
    transitions: Dict[str, List[tuple]] = field(default_factory=dict)
    #: Scrape failures per node over the whole run.
    scrape_failures: Dict[str, int] = field(default_factory=dict)
    gcm_went_stale: bool = False
    gcm_recovered: bool = False

    def states(self, slo: str) -> List[str]:
        """The destination-state sequence one SLO walked through."""
        return [to for (_, __, to) in self.transitions.get(slo, [])]

    def fingerprint(self) -> str:
        """Bit-identical across runs with the same seed, or the plane
        is not deterministic."""
        parts = [
            f"seed={self.seed}",
            f"io={self.issued}/{self.completed}/{self.failed}",
            f"stale={int(self.gcm_went_stale)}{int(self.gcm_recovered)}",
        ]
        for slo in sorted(self.transitions):
            steps = ",".join(
                f"{t:.3f}:{frm}>{to}" for (t, frm, to) in self.transitions[slo]
            )
            parts.append(f"{slo}=[{steps}]")
        parts.append(
            "scrapes="
            + ",".join(
                f"{node}:{count}"
                for node, count in sorted(self.scrape_failures.items())
            )
        )
        return "|".join(parts)

    def render(self) -> str:
        lines = [
            f"[telemetry-chaos] seed={self.seed} "
            f"issued={self.issued} ok={self.completed} failed={self.failed}",
            f"  gcm stale during outage: {self.gcm_went_stale}, "
            f"recovered after restart: {self.gcm_recovered}",
        ]
        for slo in sorted(self.transitions):
            for t_ms, frm, to in self.transitions[slo]:
                lines.append(f"  {t_ms:>10.1f} ms  {slo}: {frm} -> {to}")
        return "\n".join(lines)


def run_telemetry_chaos(seed: int | str = "telemetry") -> TelemetryChaosResult:
    """Run the scenario once on a fresh cluster; fully deterministic."""
    bed = ClusterTestbed(shards=2, seed=f"telemetry|{seed}")
    result = TelemetryChaosResult(seed=str(seed))

    population = []
    for login in _USERS:
        browser = bed.enroll(login, f"master-{login}-password")
        account_id = browser.add_account(login, f"{login}.example.com")
        bed.phones[login].enable_resilience(
            login,
            heartbeat_interval_ms=_HEARTBEAT_INTERVAL_MS,
            miss_threshold=_HEARTBEAT_MISS_THRESHOLD,
        )
        population.append((browser, account_id))

    plane = bed.install_telemetry()
    # at_ms is relative to apply time: the outage plays out from here.
    bed.install_fault_plane(
        FaultSchedule().crash(_CRASH_AT_MS, RENDEZVOUS, down_ms=_CRASH_DOWN_MS)
    )

    start = bed.kernel.now

    def issue(browser, account_id) -> None:
        result.issued += 1

        def on_response(response) -> None:
            if response.ok:
                result.completed += 1
            else:
                result.failed += 1

        browser.http.send(
            HttpRequest.json_request(
                "POST", f"/accounts/{account_id}/generate", {}
            ),
            on_response,
            lambda error: setattr(result, "failed", result.failed + 1),
        )

    def schedule_load(browser, account_id, offset_ms: float) -> None:
        def tick() -> None:
            if bed.kernel.now - start >= _LOAD_STOP_MS:
                return
            issue(browser, account_id)
            bed.kernel.schedule(_ISSUE_GAP_MS, tick, label="telemetry-load")

        bed.kernel.schedule(offset_ms, tick, label="telemetry-load")

    for index, (browser, account_id) in enumerate(population):
        # Offset the two users so requests interleave, not collide.
        schedule_load(browser, account_id, 100.0 + index * (_ISSUE_GAP_MS / 2))

    # Observe staleness at two checkpoints: mid-outage and end-of-run.
    def mid_outage_check() -> None:
        result.gcm_went_stale = plane.store.stale(
            RENDEZVOUS, bed.kernel.now, plane.scraper.stale_after_ms
        )

    bed.kernel.schedule(
        _CRASH_AT_MS + _CRASH_DOWN_MS - 500.0,
        mid_outage_check,
        label="telemetry-check",
    )

    bed.run(_RUN_MS)
    # Judge recovery while the scraper is still live — once it stops,
    # every series goes stale by construction as the clock advances.
    result.gcm_recovered = not plane.store.stale(
        RENDEZVOUS, bed.kernel.now, plane.scraper.stale_after_ms
    ) and plane.scraper.up(RENDEZVOUS)
    plane.stop()
    bed.run_until_idle()
    for name in sorted(plane.scraper.targets):
        result.scrape_failures[name] = plane.scraper.state(name).failures
    for slo_name in sorted(plane.evaluator.slos):
        result.transitions[slo_name] = [
            (t.t_ms, t.from_state, t.to_state)
            for t in plane.evaluator.transitions_for(slo_name)
        ]
    return result


def verify_telemetry_chaos(seed: int | str = "telemetry") -> TelemetryChaosResult:
    """The ``slo --check`` smoke: run the scenario twice and assert the
    full alerting arc *and* replay determinism."""
    first = run_telemetry_chaos(seed)
    states = first.states("gateway-availability")
    expected = [PENDING, FIRING, RESOLVED]
    if states[: len(expected)] != expected:
        raise ValidationError(
            "availability alert did not walk pending->firing->resolved: "
            f"got {states!r}"
        )
    if not first.gcm_went_stale:
        raise ValidationError("gcm series never went stale during the outage")
    if not first.gcm_recovered:
        raise ValidationError("gcm scrapes never recovered after restart")
    if first.failed == 0:
        raise ValidationError(
            "no failed generations — the outage never bit the workload"
        )
    if first.completed == 0:
        raise ValidationError("no successful generations at all")
    second = run_telemetry_chaos(seed)
    if first.fingerprint() != second.fingerprint():
        raise ValidationError(
            "telemetry chaos replay diverged:\n"
            f"  first : {first.fingerprint()}\n"
            f"  second: {second.fingerprint()}"
        )
    return first


# Re-exported so callers can assert on states without importing obs.slo.
__all__ = [
    "TelemetryChaosResult",
    "run_telemetry_chaos",
    "verify_telemetry_chaos",
    "OK",
    "PENDING",
    "FIRING",
    "RESOLVED",
]
