"""The Figure 3 experiment: password-generation latency.

Reproduces the paper's instrumentation exactly: the app's approval
notification is disabled (AUTO policy — "we removed the user
verification notification ... and instead made the phone automatically
compute T"), ``t_start`` stamps R leaving for GCM, ``t_end`` stamps the
password computed, and 100 trials run per transport.

Paper's results: Wi-Fi x̄ = 785.3 ms σ = 171.5; 4G x̄ = 978.7 ms
σ = 137.9 (n = 100 each).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.net.profiles import CELLULAR_4G_PROFILE, WIFI_PROFILE, NetworkProfile
from repro.phone.app import ApprovalPolicy
from repro.testbed import AmnesiaTestbed
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics for one transport's trials."""

    transport: str
    samples_ms: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.samples_ms)

    @property
    def mean_ms(self) -> float:
        return sum(self.samples_ms) / self.n

    @property
    def std_ms(self) -> float:
        if self.n < 2:
            return math.nan
        mean = self.mean_ms
        return math.sqrt(
            sum((s - mean) ** 2 for s in self.samples_ms) / (self.n - 1)
        )

    @property
    def min_ms(self) -> float:
        return min(self.samples_ms)

    @property
    def max_ms(self) -> float:
        return max(self.samples_ms)

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile, q in [0, 100]."""
        if not (0 <= q <= 100):
            raise ValidationError(f"percentile q must be in [0, 100], got {q}")
        ordered = sorted(self.samples_ms)
        if len(ordered) == 1:
            return ordered[0]
        position = (q / 100) * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1 - fraction) + ordered[high] * fraction


# The paper's published Figure 3 statistics, for comparison in benches.
PAPER_FIGURE_3 = {
    "wifi": {"mean_ms": 785.3, "std_ms": 171.5, "n": 100},
    "4g": {"mean_ms": 978.7, "std_ms": 137.9, "n": 100},
}


class LatencyExperiment:
    """Run n password generations over a profile and collect latencies."""

    def __init__(
        self,
        profile: NetworkProfile,
        trials: int = 100,
        seed: int | str = 2016,
        warmup: int = 1,
    ) -> None:
        if trials < 1:
            raise ValidationError(f"trials must be >= 1, got {trials}")
        self.profile = profile
        self.trials = trials
        self.seed = seed
        self.warmup = warmup

    def run(self) -> LatencyStats:
        bed = AmnesiaTestbed(
            seed=f"latency|{self.profile.name}|{self.seed}",
            profile=self.profile,
            approval=ApprovalPolicy.AUTO,
        )
        browser = bed.enroll("tester", "master-password-2016")
        account_id = browser.add_account("tester", "dummy.example.com")
        # Warm-up generations absorb one-time costs (TLS handshakes) that
        # the paper's steady-state measurement would not include.
        for __ in range(self.warmup):
            browser.generate_password(account_id)
        samples = []
        for __ in range(self.trials):
            result = browser.generate_password(account_id)
            samples.append(float(result["latency_ms"]))
        return LatencyStats(
            transport=self.profile.name, samples_ms=tuple(samples)
        )


def run_figure_3(trials: int = 100, seed: int | str = 2016) -> dict[str, LatencyStats]:
    """Both transports, as the figure plots them."""
    return {
        "wifi": LatencyExperiment(WIFI_PROFILE, trials, seed).run(),
        "4g": LatencyExperiment(CELLULAR_4G_PROFILE, trials, seed).run(),
    }
