"""Continuous benchmark harness with regression gating.

Two suites, one schema-versioned JSON artefact:

- **micro** — wall-clock throughput of the primitives on the hot path
  (SHA-256/512, the pure-Python SHA cores, PBKDF2, HKDF) and the pure
  protocol pipeline (Algorithm 1 token computation, template render,
  cache-hit render through :class:`~repro.server.cache.DerivationCache`).
  Wall-clock numbers vary with the machine, so most are recorded as
  trajectory data only; a small set (PBKDF2 iterations/s, SHA-256
  MB/s, cache-hit render latency) *is* gated in full-mode runs,
  because those are the metrics the fast path exists to move and — at
  the full-mode iteration counts — a 25 % swing on the same machine is
  a code change, not scheduler noise. Smoke runs keep the
  measurements but drop the wall-clock gates (their iteration counts
  are too small to be stable).
- **macro** — deterministic *simulated* metrics: end-to-end generation
  p50/p95 under the Wi-Fi and 4G profiles (the Figure 3 pipeline),
  sustained-load throughput through the server's worker pool, chaos-on
  overhead (the ``lossy-uplink`` scenario with retries), and the
  sharded cluster's generation p50/p95 + throughput through the
  consistent-hash gateway, side by side with a single-server run on the
  same network profile (the gateway-hop overhead, measured). These
  replay bit-for-bit under the seed, so a >25 % shift is a code change,
  not noise — they are the gated regression surface.

``run_bench`` produces a document; the ``bench`` CLI subcommand writes
it as ``BENCH_<UTC-date>.json`` at the repo root and ``bench --check``
compares the gated metrics against the newest prior ``BENCH_*.json``,
failing on regressions past the threshold.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.util.errors import ValidationError

BENCH_SCHEMA = "amnesia-bench/1"
DEFAULT_THRESHOLD = 0.25

# Gate directions: what counts as a regression for each metric kind.
LOWER_IS_BETTER = "lower_is_better"  # latencies
HIGHER_IS_BETTER = "higher_is_better"  # rates, throughput

#: Absolute cap on the telemetry plane's workload-p95 overhead. Gates
#: carrying a ``limit`` are *bounds*, not trends: ``check_limits``
#: enforces them against the run itself, and ``compare_documents``
#: leaves them out of baseline-relative comparison (a near-zero
#: baseline would turn any nonzero value into a spurious regression).
TELEMETRY_OVERHEAD_LIMIT_PCT = 5.0

#: Absolute cap on the DR drill's restore-to-verified time (simulated
#: ms from starting the cold restore to the last user re-verified).
#: A bound rather than a trend: the drill measures a recovery SLO, and
#: "restores complete within 5 simulated seconds" is the contract.
DRILL_RESTORE_LIMIT_MS = 5_000.0

#: Absolute floor on the batched cluster arm's sustained throughput:
#: 10x the sequential cluster arm's 1477.41/min (BENCH_2026-08-06).
#: A bound, not a trend — the batch engine's reason to exist is this
#: order-of-magnitude, and the gate is forced to 0.0 (a loud failure)
#: if a single derived password disagrees with the reference oracle.
CLUSTER_BATCH_FLOOR_PER_MIN = 14_774.1

# Pinned iteration counts for the micro suite (full / smoke). Pinning
# them in one place keeps successive BENCH files comparable.
_MICRO_ITERATIONS = {
    "sha256": (4_000, 200),
    "sha512": (4_000, 200),
    "sha256_pure": (200, 10),
    "pbkdf2": (50, 2),
    "hkdf": (1_000, 50),
    "token": (2_000, 100),
    "template": (2_000, 100),
    "render_cached": (10_000, 200),
    "render_batch": (400, 20),
    "kernel_events": (200_000, 5_000),
}
_RENDER_BATCH_JOBS = 64  # jobs per timed render_batch call
_PBKDF2_ROUNDS = 400  # inner HMAC rounds per pbkdf2 op
_PAYLOAD = bytes(range(256)) * 4  # 1 KiB hashing payload


def bench_filename(date_utc: str | None = None) -> str:
    """``BENCH_<UTC-date>.json`` — one artefact per day of trajectory."""
    if date_utc is None:
        date_utc = time.strftime("%Y-%m-%d", time.gmtime())
    return f"BENCH_{date_utc}.json"


# -- micro suite -----------------------------------------------------------------


def _time_op(fn: Callable[[], Any], iterations: int) -> Dict[str, Any]:
    """Wall-clock *fn* over *iterations* calls (monotonic ns clock).

    One untimed warm-up call precedes the loop so first-call effects
    (lazy imports, midstate caches, allocator warm-up) charge nobody,
    and the collector is paused across the timed region so a GC cycle
    triggered by unrelated garbage does not land inside a small-n
    entry — without both, the gated micro metrics swing enough to trip
    on unchanged code.
    """
    import gc

    if iterations < 1:
        raise ValidationError(f"iterations must be >= 1, got {iterations}")
    fn()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter_ns()
        for __ in range(iterations):
            fn()
        elapsed_ns = time.perf_counter_ns() - started
    finally:
        if was_enabled:
            gc.enable()
    per_op_us = elapsed_ns / iterations / 1_000.0
    ops_per_sec = (iterations * 1e9 / elapsed_ns) if elapsed_ns > 0 else 0.0
    return {
        "iterations": iterations,
        "wall_us_per_op": round(per_op_us, 3),
        "ops_per_sec": round(ops_per_sec, 1),
    }


def _measure_kernel_events(total: int) -> Dict[str, Any]:
    """Schedule/drain throughput of the simulation kernel's event heap.

    A fresh :class:`Simulator` takes *total* one-shot events at
    pseudo-scattered virtual times (pushes arrive out of timestamp
    order, the expensive case for heap sifts), a tenth of them are
    cancelled immediately (the tombstone + live-counter path), one
    recurring ticker runs across the horizon (the re-arm path), and the
    whole schedule+drain is wall-clocked as a unit. Heap depth peaks at
    *total* pending events — the 10⁴–10⁶ regime the population engine
    holds the kernel at, where an accidental O(n) in schedule or cancel
    would be invisible to unit tests but dominate a population run.
    """
    import gc

    from repro.sim.kernel import Simulator

    def noop() -> None:
        return None

    horizon_ms = 4_096.0
    # Untimed warm-up on a throwaway kernel so first-touch costs (lazy
    # allocations, bytecode specialization) charge nobody.
    warm = Simulator()
    for i in range(256):
        warm.schedule(float(i % 16), noop, "warm")
    warm.run_until_idle()

    sim = Simulator()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter_ns()
        cancelled = 0
        for i in range(total):
            event = sim.schedule(float((i * 7919) % 4096), noop, "bench")
            if i % 10 == 9:
                event.cancel()
                cancelled += 1
        ticker = sim.schedule_every(16.0, noop, "bench tick")
        sim.run(until=horizon_ms)
        ticker.cancel()
        sim.run_until_idle(max_events=total + 1_024)
        elapsed_ns = time.perf_counter_ns() - started
    finally:
        if was_enabled:
            gc.enable()
    processed = sim.processed_events
    events_per_s = (processed * 1e9 / elapsed_ns) if elapsed_ns > 0 else 0.0
    return {
        "scheduled": total,
        "cancelled": cancelled,
        "processed": processed,
        "wall_us_per_event": round(elapsed_ns / max(processed, 1) / 1_000.0, 4),
        "events_per_s": round(events_per_s, 1),
    }


def run_micro(smoke: bool = False) -> Dict[str, Any]:
    """Hash/KDF throughput and token+template latency, wall clock.

    The token/template loop runs under an active :class:`Profiler`, so
    the artefact also records the profiler's view of the same work —
    scope call counts and cumulative time — tying the bench to the
    profiling plane.
    """
    from repro.core.protocol import (
        generate_request,
        generate_token,
        render_password,
        intermediate_value,
    )
    from repro.core.secrets import EntryTable
    from repro.crypto.hashing import sha256, sha512
    from repro.crypto.hkdf import hkdf
    from repro.crypto.pbkdf2 import pbkdf2_hmac_sha256
    from repro.crypto.randomness import SeededRandomSource
    from repro.crypto.sha2 import sha256_pure
    from repro.obs.profiler import Profiler, profiling

    column = 1 if smoke else 0
    iters = {name: pair[column] for name, pair in _MICRO_ITERATIONS.items()}

    micro: Dict[str, Any] = {}
    entry = {
        "payload_bytes": len(_PAYLOAD),
        **_time_op(lambda: sha256(_PAYLOAD), iters["sha256"]),
    }
    # MB/s through the hasher: the gated view of SHA-256 throughput.
    entry["mb_per_s"] = round(entry["ops_per_sec"] * len(_PAYLOAD) / 1e6, 3)
    micro["sha256"] = entry
    micro["sha512"] = {
        "payload_bytes": len(_PAYLOAD),
        **_time_op(lambda: sha512(_PAYLOAD), iters["sha512"]),
    }
    micro["sha256_pure"] = {
        "payload_bytes": 64,
        **_time_op(lambda: sha256_pure(_PAYLOAD[:64]), iters["sha256_pure"]),
    }
    entry = {
        "rounds": _PBKDF2_ROUNDS,
        **_time_op(
            lambda: pbkdf2_hmac_sha256(b"bench-mp", b"salt", _PBKDF2_ROUNDS, 32),
            iters["pbkdf2"],
        ),
    }
    # Inner HMAC iterations per second: the gated view of the midstate
    # fast path (rounds x ops/s), comparable across round counts.
    entry["iters_per_s"] = round(entry["ops_per_sec"] * _PBKDF2_ROUNDS, 1)
    micro["pbkdf2"] = entry
    micro["hkdf"] = {
        "length": 64,
        **_time_op(lambda: hkdf(b"ikm", b"salt", b"bench", 64), iters["hkdf"]),
    }

    # Algorithm 1 + template on a fixed entry table, profiled.
    table = EntryTable.generate(SeededRandomSource("bench-table"))
    seed, oid = b"\x11" * 16, b"\x22" * 16
    request = generate_request("bench-user", "bench.example.com", seed)
    profiler = Profiler()
    with profiling(profiler):
        micro["token"] = _time_op(
            lambda: generate_token(request, table), iters["token"]
        )
        token = generate_token(request, table)
        intermediate = intermediate_value(token, oid, seed)
        micro["template"] = _time_op(
            lambda: render_password(intermediate), iters["template"]
        )
    # The same render through a warm DerivationCache: what the server
    # pays per hit once the (T, O_id, sigma, policy) fingerprint is
    # resident. Gated — the cache exists to make this cheap.
    from repro.server.cache import FAMILY_RENDER, DerivationCache

    cache = DerivationCache()
    fingerprint = (token, oid, seed, "default-policy")

    def cached_render() -> str:
        return cache.get_or_compute(
            FAMILY_RENDER, 1, fingerprint,
            lambda: render_password(intermediate),
        )

    cached_render()  # warm the entry; everything after is a hit
    micro["render_cached"] = _time_op(cached_render, iters["render_cached"])
    # The vectorized SS-III-B tail through the batch engine: one
    # render_batch call over distinct (token, O_id, sigma, policy)
    # jobs, the unit of work a drained dispatch batch hands the shard.
    # Gated as ops/s (jobs x batches/s) — the tentpole metric.
    from repro.core.batch import BatchDerivationEngine, RenderJob
    from repro.core.templates import PasswordPolicy

    engine = BatchDerivationEngine()
    charset = PasswordPolicy().charset
    jobs = [
        RenderJob(
            token_hex=sha256(b"render-batch-%d" % i).hex(),
            oid=bytes([i % 251]) * 16,
            seed=bytes([(7 * i) % 251]) * 16,
            charset=charset,
            length=(12, 16, 24, 32)[i % 4],
        )
        for i in range(_RENDER_BATCH_JOBS)
    ]
    entry = {
        "jobs": _RENDER_BATCH_JOBS,
        **_time_op(lambda: engine.render_batch(jobs), iters["render_batch"]),
    }
    entry["ops_per_s"] = round(entry["ops_per_sec"] * _RENDER_BATCH_JOBS, 1)
    micro["render_batch"] = entry
    # Event-heap scheduling throughput at population-engine depth.
    micro["kernel"] = _measure_kernel_events(iters["kernel_events"])
    micro["profiler_scopes"] = {
        name: {"calls": stats.calls, "cumulative_us": round(stats.cumulative_us, 1)}
        for name, stats in sorted(profiler.by_name().items())
    }
    return micro


# -- macro suite -----------------------------------------------------------------


def run_macro(seed: int | str = "bench", smoke: bool = False) -> Dict[str, Any]:
    """Deterministic simulated metrics: the gated regression surface."""
    from repro.eval.chaos import CANONICAL_SCENARIOS, run_scenario_arm
    from repro.eval.latency import LatencyExperiment
    from repro.eval.workload import WorkloadSpec, run_workload
    from repro.net.profiles import CELLULAR_4G_PROFILE, WIFI_PROFILE

    e2e_trials = 5 if smoke else 40
    macro: Dict[str, Any] = {}
    for name, profile in (("wifi", WIFI_PROFILE), ("4g", CELLULAR_4G_PROFILE)):
        stats = LatencyExperiment(profile, trials=e2e_trials, seed=seed).run()
        macro[f"e2e_{name}"] = {
            "trials": stats.n,
            "p50_ms": round(stats.percentile(50), 3),
            "p95_ms": round(stats.percentile(95), 3),
            "mean_ms": round(stats.mean_ms, 3),
            "std_ms": round(stats.std_ms, 3),
        }

    spec = WorkloadSpec(
        users=3,
        accounts_per_user=2,
        duration_ms=15_000.0 if smoke else 60_000.0,
        mean_interarrival_ms=3_000.0,
        seed=f"{seed}|load",
    )
    result = run_workload(spec)
    minutes = spec.duration_ms / 60_000.0
    macro["workload"] = {
        "users": spec.users,
        "duration_ms": spec.duration_ms,
        "issued": result.issued,
        "completed": result.completed,
        "completion_rate": round(result.completion_rate, 4),
        "throughput_per_min": round(result.completed / minutes, 3),
        "latency_p95_ms": round(result.latency_p95_ms(), 3),
        "pool_peak_busy": result.pool_peak_busy,
        "pool_peak_queue": result.pool_peak_queue,
    }

    # The observability tax: the identical workload with the fleet
    # scrape/SLO plane running. Scrapes share the server's thread pool
    # and compute stream, so the p95 delta *is* the cost of being
    # watched. Both runs are deterministic, so the delta is too.
    telemetry_result = run_workload(spec, telemetry=True)
    base_p95 = result.latency_p95_ms()
    telemetry_p95 = telemetry_result.latency_p95_ms()
    overhead_pct = (
        (telemetry_p95 - base_p95) / base_p95 * 100.0 if base_p95 > 0 else 0.0
    )
    macro["telemetry"] = {
        "baseline_p95_ms": round(base_p95, 3),
        "telemetry_p95_ms": round(telemetry_p95, 3),
        "overhead_pct": round(overhead_pct, 3),
        "limit_pct": TELEMETRY_OVERHEAD_LIMIT_PCT,
        "issued": telemetry_result.issued,
        "completed": telemetry_result.completed,
    }

    scenario = CANONICAL_SCENARIOS[0]  # lossy-uplink
    arm = run_scenario_arm(
        scenario, seed=seed, trials=2 if smoke else 4, retries=True
    )
    macro["chaos"] = {
        "scenario": scenario.name,
        "trials": arm.trials,
        "success_rate": round(arm.success_rate, 4),
        "p95_ms": round(arm.percentile(95), 3),
        "client_retries": arm.client_retries,
        "degraded_responses": arm.degraded_responses,
    }

    macro["cluster"] = _run_cluster_macro(seed=seed, smoke=smoke)
    macro["cluster_batch"] = _run_cluster_batch_macro(seed=seed, smoke=smoke)
    macro["drill"] = _run_drill_macro(seed=seed)
    macro["population"] = _run_population_macro(seed=seed, smoke=smoke)
    return macro


def _run_population_macro(seed: int | str, smoke: bool) -> Dict[str, Any]:
    """The population engine as a bench arm: sustained completed-ops
    throughput over a 10⁴-user fleet (10³ in smoke) and the p99 latency
    of requests issued inside the flash-crowd window, through the
    batched-dispatch gateway. Fully deterministic under the seed —
    ``bench --check`` replays the arm and expects identical numbers.
    """
    from repro.population import PopulationSpec, run_population

    spec = PopulationSpec(
        users=1_000 if smoke else 10_000,
        reserve_users=100 if smoke else 300,
        duration_ms=5_000.0 if smoke else 12_000.0,
        ops_per_user_per_hour=60.0 if smoke else 18.0,
        flash_start_ms=2_000.0 if smoke else 6_000.0,
        flash_duration_ms=1_500.0 if smoke else 3_000.0,
        flash_multiplier=6.0,
        churn_interval_ms=1_500.0 if smoke else 4_000.0,
        churn_fraction=0.005,
        seed=f"{seed}|population",
    )
    result = run_population(spec)
    return {
        "users": spec.users,
        "duration_ms": spec.duration_ms,
        "issued": result.issued,
        "completed": result.completed,
        "rejected_429": result.rejected_429,
        "completion_rate": round(result.completion_rate, 4),
        "sustained_ops_per_s": round(result.sustained_ops_per_s, 3),
        "p99_ms_flash": round(result.p99_ms_flash(), 3),
        "p99_ms": round(result.p99_ms(), 3),
        "dispatch_peak_depth": result.dispatch_peak_depth,
        "dispatch_shed_total": result.dispatch_shed_total,
        "churn_waves": result.churn_waves,
        "churn_swaps": result.churn_swaps,
    }


def _run_drill_macro(seed: int | str) -> Dict[str, Any]:
    """The DR drill as a bench arm: how long from starting the cold
    restore to the last user re-verified (simulated clock), plus the
    backup-age the disaster caught the archive at.  Gated as an
    absolute bound (``limit``), not against the baseline — the number
    measures a recovery SLO, not a trend."""
    from repro.eval.drill import run_drill

    result = run_drill(seed=f"{seed}|bench")
    return {
        "restore_ms": round(result.restore_ms, 3),
        "limit_ms": DRILL_RESTORE_LIMIT_MS,
        "backup_age_at_disaster_ms": round(result.backup_age_at_disaster_ms, 3),
        "replayed_ops": result.replayed_ops,
        "affected_users": len(result.affected),
        "identical": all(result.identical.values()),
    }


def _run_cluster_macro(seed: int | str, smoke: bool) -> Dict[str, Any]:
    """Generation latency/throughput through the 2-shard gateway, with a
    single-server run on the same profile as the comparison point.

    Both fleets run the identical client loop (warm-up, then *trials*
    sequential generations), so the delta estimates the cluster tax —
    the extra laptop→gateway→shard hop plus the gateway's dispatch
    bookkeeping — though at smoke trial counts latency-draw noise can
    swamp it (the delta is informational, not gated).  Deterministic
    under the seed, like every macro metric.
    """
    from repro.cluster.testbed import ClusterTestbed
    from repro.eval.chaos import _percentile
    from repro.testbed import AmnesiaTestbed

    trials = 3 if smoke else 15

    def measure(bed: Any) -> Tuple[Tuple[float, ...], float]:
        browser = bed.enroll("bench", "bench-master-password")
        account_id = browser.add_account("bench", "bench.example.com")
        browser.generate_password(account_id)  # warm-up: no handshake noise
        started = bed.kernel.now
        samples = tuple(
            browser.generate_password(account_id)["latency_ms"]
            for __ in range(trials)
        )
        minutes = (bed.kernel.now - started) / 60_000.0
        return samples, (trials / minutes if minutes > 0 else 0.0)

    cluster_samples, cluster_tput = measure(
        ClusterTestbed(shards=2, seed=f"{seed}|cluster")
    )
    single_samples, __ = measure(AmnesiaTestbed(seed=f"{seed}|cluster-single"))
    cluster_p50 = _percentile(cluster_samples, 50)
    single_p50 = _percentile(single_samples, 50)
    return {
        "shards": 2,
        "trials": trials,
        "p50_ms": round(cluster_p50, 3),
        "p95_ms": round(_percentile(cluster_samples, 95), 3),
        "throughput_per_min": round(cluster_tput, 3),
        "single_p50_ms": round(single_p50, 3),
        "gateway_overhead_p50_ms": round(cluster_p50 - single_p50, 3),
    }


def _run_cluster_batch_macro(seed: int | str, smoke: bool) -> Dict[str, Any]:
    """Burst-load throughput through the fully batched hot path: the
    2-shard gateway with batched dispatch on every HTTP server, batched
    SS-III-B rendering on the shard primaries, and token sessions so the
    sustained phase rides the session path instead of a phone round
    trip per request.

    One cold burst (one request per account, inside the per-user
    pending cap) fills every token session and lands the per-shard
    ``/token`` renders in coalesced ``render_batch`` calls; warm bursts
    of 16 every 25 ms then measure sustained throughput. After the
    load, every account's password is re-derived from first principles
    (Algorithm 1 + SS-III-B over the phone's own entry table) and
    compared — ``identical`` must hold or the throughput gate is forced
    to zero. Deterministic under the seed, like every macro metric.
    """
    from repro.cluster.testbed import ClusterTestbed
    from repro.core.protocol import generate_password
    from repro.core.secrets import EntryTable
    from repro.core.templates import PasswordPolicy
    from repro.eval.chaos import _percentile
    from repro.web.client import HttpRequest

    warm_bursts = 11 if smoke else 95
    per_burst = 16
    bed = ClusterTestbed(
        shards=2,
        seed=f"{seed}|cluster-batch",
        token_session_ttl_ms=600_000.0,
        batched_dispatch=True,
        batched_render=True,
    )
    browsers: Dict[str, Any] = {}
    targets: List[Tuple[str, int]] = []
    for u in range(4):
        login = f"batch{u}"
        browser = bed.enroll(login, "correct horse battery")
        browsers[login] = browser
        for a in range(2):
            account_id = browser.add_account(f"user{u}", f"site{a}.example")
            targets.append((login, account_id))

    latencies: List[float] = []
    errors: List[Any] = []
    completed = [0]
    t_last = [0.0]

    def issue(login: str, account_id: int) -> None:
        t_start = bed.kernel.now

        def on_response(response: Any) -> None:
            if response.status == 200:
                completed[0] += 1
                latencies.append(bed.kernel.now - t_start)
                t_last[0] = bed.kernel.now
            else:
                errors.append(response.status)

        browsers[login].http.send(
            HttpRequest.json_request(
                "POST", f"/accounts/{account_id}/generate", {}
            ),
            on_response,
            lambda exc: errors.append(repr(exc)),
        )

    t0 = bed.kernel.now

    def cold_burst() -> None:
        for login, account_id in targets:
            issue(login, account_id)

    bed.kernel.schedule(0.0, cold_burst, label="bench cold burst")
    for k in range(warm_bursts):

        def warm_burst(k: int = k) -> None:
            for j in range(per_burst):
                login, account_id = targets[(k * per_burst + j) % len(targets)]
                issue(login, account_id)

        bed.kernel.schedule(
            75.0 + 25.0 * k, warm_burst, label="bench warm burst"
        )
    bed.run_until_idle()

    elapsed = t_last[0] - t0
    issued = len(targets) + warm_bursts * per_burst
    throughput = completed[0] * 60_000.0 / elapsed if elapsed > 0 else 0.0

    identical = True
    for login, account_id in targets:
        database = bed.shard_of(login).primary.database
        user = database.user_by_login(login)
        account = database.account_by_id(account_id)
        expected = generate_password(
            account.username,
            account.domain,
            account.seed,
            user.oid,
            EntryTable(bed.phones[login].database.entry_table(), bed.params),
            PasswordPolicy(charset=account.charset, length=account.length),
        )
        if browsers[login].generate_password(account_id)["password"] != expected:
            identical = False

    shard_stats = [s.primary.batch.stats() for s in bed.shards.values()]
    return {
        "shards": 2,
        "users": 4,
        "accounts": len(targets),
        "issued": issued,
        "completed": completed[0],
        "errors": len(errors),
        "elapsed_ms": round(elapsed, 3),
        "throughput_per_min": round(throughput, 3),
        "floor_per_min": CLUSTER_BATCH_FLOOR_PER_MIN,
        "p50_ms": round(_percentile(tuple(latencies), 50), 3),
        "p95_ms": round(_percentile(tuple(latencies), 95), 3),
        "identical": identical,
        "render_batches": sum(s["batches"] for s in shard_stats),
        "render_jobs": sum(s["jobs"] for s in shard_stats),
        "peak_render_batch": max(s["peak_batch"] for s in shard_stats),
        "dispatch_batches": sum(
            s.primary.http_server.dispatch.drained_batches_total
            for s in bed.shards.values()
        ),
    }


def macro_gates(macro: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """The gated metrics, keyed by dotted path, with their direction."""
    return {
        "macro.e2e_wifi.p95_ms": {
            "value": macro["e2e_wifi"]["p95_ms"],
            "direction": LOWER_IS_BETTER,
        },
        "macro.e2e_4g.p95_ms": {
            "value": macro["e2e_4g"]["p95_ms"],
            "direction": LOWER_IS_BETTER,
        },
        "macro.workload.latency_p95_ms": {
            "value": macro["workload"]["latency_p95_ms"],
            "direction": LOWER_IS_BETTER,
        },
        "macro.workload.completion_rate": {
            "value": macro["workload"]["completion_rate"],
            "direction": HIGHER_IS_BETTER,
        },
        "macro.workload.throughput_per_min": {
            "value": macro["workload"]["throughput_per_min"],
            "direction": HIGHER_IS_BETTER,
        },
        "macro.chaos.p95_ms": {
            "value": macro["chaos"]["p95_ms"],
            "direction": LOWER_IS_BETTER,
        },
        "macro.chaos.success_rate": {
            "value": macro["chaos"]["success_rate"],
            "direction": HIGHER_IS_BETTER,
        },
        "macro.cluster.p95_ms": {
            "value": macro["cluster"]["p95_ms"],
            "direction": LOWER_IS_BETTER,
        },
        "macro.cluster.throughput_per_min": {
            "value": macro["cluster"]["throughput_per_min"],
            "direction": HIGHER_IS_BETTER,
        },
        "macro.cluster_batch.throughput_per_min": {
            # Reference-oracle disagreement or any failed request forces
            # the gate to 0.0 so the absolute floor fails loudly —
            # speed with a wrong password is not speed.
            "value": (
                macro["cluster_batch"]["throughput_per_min"]
                if macro["cluster_batch"]["identical"]
                and macro["cluster_batch"]["errors"] == 0
                else 0.0
            ),
            "direction": HIGHER_IS_BETTER,
            "limit": macro["cluster_batch"]["floor_per_min"],
        },
        "macro.cluster_batch.p95_ms": {
            "value": macro["cluster_batch"]["p95_ms"],
            "direction": LOWER_IS_BETTER,
        },
        "macro.telemetry.overhead_pct": {
            "value": macro["telemetry"]["overhead_pct"],
            "direction": LOWER_IS_BETTER,
            "limit": macro["telemetry"]["limit_pct"],
        },
        "macro.drill.restore_ms": {
            "value": macro["drill"]["restore_ms"],
            "direction": LOWER_IS_BETTER,
            "limit": macro["drill"]["limit_ms"],
        },
        "macro.population.sustained_ops_per_s": {
            "value": macro["population"]["sustained_ops_per_s"],
            "direction": HIGHER_IS_BETTER,
        },
        "macro.population.p99_ms_flash": {
            "value": macro["population"]["p99_ms_flash"],
            "direction": LOWER_IS_BETTER,
        },
    }


def micro_gates(micro: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """The gated wall-clock metrics: the ones the crypto fast path
    exists to move. Keys are absent when the micro suite was skipped."""
    gates: Dict[str, Dict[str, Any]] = {}
    if "pbkdf2" in micro:
        gates["micro.pbkdf2.iters_per_s"] = {
            "value": micro["pbkdf2"]["iters_per_s"],
            "direction": HIGHER_IS_BETTER,
        }
    if "sha256" in micro:
        gates["micro.sha256.mb_per_s"] = {
            "value": micro["sha256"]["mb_per_s"],
            "direction": HIGHER_IS_BETTER,
        }
    if "render_cached" in micro:
        gates["micro.render_cached.wall_us_per_op"] = {
            "value": micro["render_cached"]["wall_us_per_op"],
            "direction": LOWER_IS_BETTER,
        }
    if "render_batch" in micro:
        gates["micro.render_batch.ops_per_s"] = {
            "value": micro["render_batch"]["ops_per_s"],
            "direction": HIGHER_IS_BETTER,
        }
    if "kernel" in micro:
        gates["micro.kernel.events_per_s"] = {
            "value": micro["kernel"]["events_per_s"],
            "direction": HIGHER_IS_BETTER,
        }
    return gates


def run_bench(
    seed: int | str = "bench",
    smoke: bool = False,
    skip_micro: bool = False,
) -> Dict[str, Any]:
    """The full harness: micro + macro + gates, schema-versioned."""
    # Micro first: the wall-clock suite runs against a small, quiet
    # heap. After the macro simulations the process carries megabytes
    # of surviving objects, and the gated small-n micro entries read
    # systematically slower for reasons that have nothing to do with
    # the code under test.
    micro = {} if skip_micro else run_micro(smoke=smoke)
    macro = run_macro(seed=seed, smoke=smoke)
    gates = macro_gates(macro)
    if not smoke:
        # Smoke iteration counts are too small for wall-clock stability
        # (two back-to-back runs can differ by 40 %), so the micro gates
        # only ride the full-mode artefact — the `make bench-check`
        # surface — where the pinned iteration counts average the noise
        # down below the 25 % threshold.
        gates.update(micro_gates(micro))
    document: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "seed": str(seed),
        "smoke": smoke,
        "micro": micro,
        "macro": macro,
        "gates": gates,
        "threshold": DEFAULT_THRESHOLD,
    }
    return document


# -- regression gating -----------------------------------------------------------


@dataclass(frozen=True)
class GateComparison:
    """One gated metric, current run vs baseline."""

    key: str
    baseline: float
    current: float
    direction: str
    regressed: bool

    @property
    def change_pct(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline) * 100.0

    def render(self) -> str:
        status = "REGRESSED" if self.regressed else "ok"
        return (
            f"  [{status:>9s}] {self.key:<36s} "
            f"{self.baseline:>12.3f} -> {self.current:>12.3f} "
            f"({self.change_pct:+.1f}%)"
        )


def compare_documents(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[GateComparison]:
    """Compare every gated metric present in both documents.

    A latency metric regresses when it grows past ``(1 + threshold)``
    times the baseline; a rate/throughput metric regresses when it
    falls below ``(1 - threshold)`` times the baseline.
    """
    if not (0.0 < threshold < 1.0):
        raise ValidationError(f"threshold must be in (0, 1), got {threshold}")
    comparisons: List[GateComparison] = []
    base_gates = baseline.get("gates", {})
    for key, gate in sorted(current.get("gates", {}).items()):
        if "limit" in gate:
            continue  # bound gate: enforced absolutely by check_limits
        base = base_gates.get(key)
        if base is None:
            continue  # new gate: no baseline yet, nothing to compare
        base_value = float(base["value"])
        cur_value = float(gate["value"])
        direction = gate["direction"]
        if direction == LOWER_IS_BETTER:
            regressed = cur_value > base_value * (1.0 + threshold)
        elif direction == HIGHER_IS_BETTER:
            regressed = cur_value < base_value * (1.0 - threshold)
        else:
            raise ValidationError(f"unknown gate direction: {direction!r}")
        comparisons.append(
            GateComparison(
                key=key,
                baseline=base_value,
                current=cur_value,
                direction=direction,
                regressed=regressed,
            )
        )
    return comparisons


def check_limits(document: Dict[str, Any]) -> List[str]:
    """Violations of absolute-bound gates (``limit`` key) in *document*.

    Unlike the baseline-relative gates, a bound needs no prior artefact:
    the run itself must stay under the cap. Returns human-readable
    violation lines, empty when every bound holds."""
    violations: List[str] = []
    for key, gate in sorted(document.get("gates", {}).items()):
        limit = gate.get("limit")
        if limit is None:
            continue
        value = float(gate["value"])
        if gate["direction"] == LOWER_IS_BETTER and value > float(limit):
            violations.append(
                f"  [OVER LIMIT] {key:<36s} {value:>12.3f} > limit {float(limit):.3f}"
            )
        elif gate["direction"] == HIGHER_IS_BETTER and value < float(limit):
            violations.append(
                f"  [UNDER LIMIT] {key:<36s} {value:>12.3f} < limit {float(limit):.3f}"
            )
    return violations


def find_baseline(
    directory: str | Path,
    smoke: bool = False,
    exclude: str | None = None,
) -> Optional[Tuple[Path, Dict[str, Any]]]:
    """The newest prior ``BENCH_*.json`` compatible with this run.

    Filenames embed the UTC date, so lexicographic order is
    chronological order. Documents from a different schema or a
    different smoke/full mode are not comparable and are skipped;
    *exclude* keeps today's own output file out of the search.
    """
    root = Path(directory)
    for path in sorted(root.glob("BENCH_*.json"), reverse=True):
        if exclude is not None and path.name == exclude:
            continue
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(document, dict):
            continue
        if document.get("schema") != BENCH_SCHEMA:
            continue
        if bool(document.get("smoke", False)) != smoke:
            continue
        return path, document
    return None


def write_bench(document: Dict[str, Any], directory: str | Path = ".") -> Path:
    """Write the artefact as ``BENCH_<UTC-date>.json`` under *directory*."""
    path = Path(directory) / bench_filename(document["generated_utc"][:10])
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


# -- rendering -------------------------------------------------------------------


def render_bench(document: Dict[str, Any]) -> str:
    """Human-readable summary of one bench document."""
    lines = [
        f"amnesia bench ({document['schema']}, seed={document['seed']}, "
        f"{'smoke' if document['smoke'] else 'full'})",
        "",
        "micro (wall clock):",
    ]
    micro = document.get("micro", {})
    for name, entry in sorted(micro.items()):
        if name == "profiler_scopes" or "wall_us_per_op" not in entry:
            continue
        lines.append(
            f"  {name:<14s} {entry['wall_us_per_op']:>12.3f} us/op "
            f"({entry['ops_per_sec']:>12.1f} ops/s, n={entry['iterations']})"
        )
    if not micro:
        lines.append("  (skipped)")
    lines.append("")
    lines.append("gates (macro: simulated; micro: wall clock):")
    for key, gate in sorted(document["gates"].items()):
        arrow = "v" if gate["direction"] == LOWER_IS_BETTER else "^"
        lines.append(f"  {key:<36s} {float(gate['value']):>12.3f}  ({arrow} better)")
    return "\n".join(lines)
