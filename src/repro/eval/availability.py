"""Quantifying §VIII's availability limitation.

"Access to the user's accounts thus becomes dependent on the
availability of their mobile phone. If the smartphone is powered off or
offline, then the user would lose access to their accounts."

This module models a handset's duty cycle — alternating online/offline
periods (radio dead zones, battery death, aeroplane mode) — and measures
what fraction of password-generation attempts fail as a function of the
phone's availability and the server's willingness to wait (the
generation timeout plus GCM's store-and-forward buys back short gaps).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.profiles import FAST_PROFILE, NetworkProfile
from repro.testbed import AmnesiaTestbed
from repro.util.errors import ValidationError
from repro.web.http import HttpRequest


@dataclass(frozen=True)
class DutyCycle:
    """The phone's connectivity pattern: online/offline alternation."""

    online_ms: float
    offline_ms: float

    def __post_init__(self) -> None:
        if self.online_ms < 0 or self.offline_ms < 0:
            raise ValidationError("durations must be >= 0")
        if self.online_ms + self.offline_ms <= 0:
            raise ValidationError("duty cycle must have positive period")

    @property
    def availability(self) -> float:
        return self.online_ms / (self.online_ms + self.offline_ms)


@dataclass(frozen=True)
class AvailabilityReport:
    """Outcome of one duty-cycle experiment."""

    duty_cycle: DutyCycle
    attempts: int
    succeeded: int
    timed_out: int
    generation_timeout_ms: float

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.attempts if self.attempts else 0.0


def run_availability_experiment(
    duty_cycle: DutyCycle,
    attempts: int = 40,
    attempt_interval_ms: float = 20_000.0,
    generation_timeout_ms: float = 10_000.0,
    profile: NetworkProfile = FAST_PROFILE,
    seed: str = "availability",
) -> AvailabilityReport:
    """Drive generations while the phone flaps per *duty_cycle*.

    The phone reconnects (flushing GCM's queue) at the start of every
    online period, so requests pushed during a short gap can still
    complete if the server's timeout outlasts the gap.
    """
    if attempts < 1:
        raise ValidationError("attempts must be >= 1")
    bed = AmnesiaTestbed(
        seed=f"{seed}|{duty_cycle.online_ms}|{duty_cycle.offline_ms}",
        profile=profile,
        generation_timeout_ms=generation_timeout_ms,
    )
    # The browser must outwait the server's own timeout.
    bed._laptop_stack.retry_timeout_ms = generation_timeout_ms + 60_000
    browser = bed.enroll("alice", "master-password-1")
    account_id = browser.add_account("alice", "x.com")

    # Phone duty cycle as kernel events.
    def go_offline() -> None:
        bed.device.power_off()
        bed.kernel.schedule(duty_cycle.offline_ms, go_online, "duty-online")

    def go_online() -> None:
        bed.device.power_on()
        bed.phone.reconnect()  # flush queued pushes (store-and-forward)
        bed.kernel.schedule(duty_cycle.online_ms, go_offline, "duty-offline")

    if duty_cycle.offline_ms > 0:
        bed.kernel.schedule(duty_cycle.online_ms, go_offline, "duty-offline")

    outcomes = {"ok": 0, "timeout": 0}

    def attempt() -> None:
        def on_response(response) -> None:
            outcomes["ok" if response.ok else "timeout"] += 1

        browser.http.send(
            HttpRequest.json_request(
                "POST", f"/accounts/{account_id}/generate", {}
            ),
            on_response,
            lambda error: outcomes.__setitem__(
                "timeout", outcomes["timeout"] + 1
            ),
        )

    for index in range(attempts):
        bed.kernel.schedule(index * attempt_interval_ms, attempt, "attempt")
    bed.run_until_idle()

    return AvailabilityReport(
        duty_cycle=duty_cycle,
        attempts=attempts,
        succeeded=outcomes["ok"],
        timed_out=outcomes["timeout"],
        generation_timeout_ms=generation_timeout_ms,
    )
