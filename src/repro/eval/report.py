"""One-shot reproduction report: every artefact, one markdown document.

``amnesia-repro report`` (or :func:`generate_report`) runs the full
evaluation — Tables I–III, Figures 3–4, the §III/§IV analyses, the
attack matrix and the measured §VII uplift — and renders a single
markdown document with paper-vs-measured columns. This is the artefact
a reviewer reads first.
"""

from __future__ import annotations

from repro.attacks.breach import server_breach_attack
from repro.attacks.eavesdrop import https_break_attack, rendezvous_eavesdrop_attack
from repro.attacks.report import attack_matrix
from repro.attacks.theft import client_compromise_attack, phone_theft_attack
from repro.baselines import (
    AmnesiaScheme,
    FirefoxLikeScheme,
    LastPassLikeScheme,
    PwdHashLikeScheme,
    TapasLikeScheme,
)
from repro.core.params import DEFAULT_PARAMS
from repro.core.templates import PasswordPolicy
from repro.eval.bonneau import mechanical_checks, render_table_iii
from repro.eval.habits import (
    measure_amnesia,
    measure_human_habits,
    survey_population_users,
)
from repro.eval.latency import PAPER_FIGURE_3, LatencyExperiment
from repro.eval.strength import composition_expectation, index_bias
from repro.eval.survey import PAPER_SURVEY
from repro.net.profiles import CELLULAR_4G_PROFILE, WIFI_PROFILE


def _fig3_section(trials: int, seed: str) -> list[str]:
    lines = [
        "## Figure 3 — password-generation latency",
        "",
        "| transport | paper mean | measured mean | paper σ | measured σ | n |",
        "|---|---|---|---|---|---|",
    ]
    for name, profile in (("wifi", WIFI_PROFILE), ("4g", CELLULAR_4G_PROFILE)):
        stats = LatencyExperiment(profile, trials=trials, seed=seed).run()
        paper = PAPER_FIGURE_3[name]
        lines.append(
            f"| {name} | {paper['mean_ms']} ms | {stats.mean_ms:.1f} ms "
            f"| {paper['std_ms']} ms | {stats.std_ms:.1f} ms | {stats.n} |"
        )
    return lines


def _stage_section(seed: str) -> list[str]:
    from repro.eval.stages import StageBreakdownExperiment

    lines = [
        "## Stage breakdown — where the latency goes",
        "",
        "Per-stage attribution of the Figure 3 total (span telemetry; "
        "stages partition `t_end - t_start` exactly):",
        "",
        "| transport | stage | mean ms | share |",
        "|---|---|---|---|",
    ]
    for name, profile in (("wifi", WIFI_PROFILE), ("4g", CELLULAR_4G_PROFILE)):
        breakdown = StageBreakdownExperiment(
            profile, trials=20, seed=seed
        ).run()
        for stats in breakdown.ordered_stages():
            share = breakdown.share_of_total(stats.name)
            lines.append(
                f"| {name} | {stats.name} | {stats.mean_ms:.1f} "
                f"| {100.0 * share:.1f}% |"
            )
    return lines


def _strength_section() -> list[str]:
    policy = PasswordPolicy()
    composition = composition_expectation(policy)
    bias = index_bias(DEFAULT_PARAMS.entry_table_size)
    return [
        "## §III-B / §IV-E — spaces and composition",
        "",
        "| quantity | paper | measured |",
        "|---|---|---|",
        f"| token space | 1.53e59 | {float(DEFAULT_PARAMS.token_space):.3e} |",
        f"| password space | 1.38e63 | {float(policy.password_space()):.3e} |",
        "| composition (low/up/dig/spec) | 9 / 9 / 3 / 11 | "
        f"{composition.lowercase:.2f} / {composition.uppercase:.2f} / "
        f"{composition.digits:.2f} / {composition.special:.2f} |",
        "| default entropy (upper bound) | — | "
        f"{policy.max_entropy_bits():.4f} bits |",
        "| default entropy (exact, mod-bias) | not analysed | "
        f"{policy.entropy_bits(DEFAULT_PARAMS.segment_hex_length):.4f} bits |",
        f"| index mod-bias (TVD) | not analysed | "
        f"{bias.total_variation_distance:.6f} |",
    ]


def _attack_section() -> list[str]:
    schemes = [
        FirefoxLikeScheme(master_password="monkey123"),
        LastPassLikeScheme(master_password="Dragon1!"),
        TapasLikeScheme(),
        PwdHashLikeScheme(master_password="sunshine12"),
        AmnesiaScheme(master_password="charlie123"),
    ]
    for scheme in schemes:
        for username, domain in (
            ("alice", "mail.google.com"),
            ("alice2", "www.facebook.com"),
            ("bob", "www.yahoo.com"),
        ):
            scheme.add_account(username, domain)
    outcomes = attack_matrix(
        schemes,
        [
            server_breach_attack,
            phone_theft_attack,
            client_compromise_attack,
            https_break_attack,
            rendezvous_eavesdrop_attack,
        ],
    )
    lines = [
        "## §IV — attack matrix (weak, in-dictionary master passwords)",
        "",
        "| vector | scheme | passwords recovered | verdict |",
        "|---|---|---|---|",
    ]
    for outcome in outcomes:
        verdict = "**BROKEN**" if outcome.compromised else "safe"
        lines.append(
            f"| {outcome.vector} | {outcome.scheme} "
            f"| {outcome.passwords_recovered}/{outcome.total_passwords} "
            f"| {verdict} |"
        )
    return lines


def _survey_section() -> list[str]:
    data = PAPER_SURVEY
    data.validate()
    lines = [
        "## §VII — user study (encoded dataset, all aggregates verified)",
        "",
        f"- participants: {data.n} ({data.male} male), ages "
        f"{data.age_min}-{data.age_max} (x̄ {data.age_mean}, σ {data.age_std})",
        f"- registration convenient: {data.registering_convenient_pct():.1f} % "
        "(paper: 77.4 %)",
        f"- adding/generating easy: {data.adding_easy_pct():.1f} % "
        "(paper: 83.8 %)",
        f"- prefer Amnesia: {data.prefer_amnesia_pct():.1f} % "
        f"({data.prefer_amnesia}/{data.n}; non-PM "
        f"{data.non_pm_prefer_amnesia}/{data.non_pm_users}, PM "
        f"{data.pm_prefer_amnesia}/{data.pm_users})",
    ]
    users = survey_population_users(population=data.n, seed=2016)
    human = measure_human_habits(users, sites_per_user=8)
    amnesia = measure_amnesia(population=data.n, sites_per_user=8, seed=2016)
    lines += [
        "",
        "Measured uplift (31 survey-marginal users × 8 sites):",
        "",
        "| metric | human habits | with Amnesia |",
        "|---|---|---|",
        f"| dictionary crack rate | {100 * human.dictionary_crack_rate:.1f} % "
        f"| {100 * amnesia.dictionary_crack_rate:.1f} % |",
        f"| blast radius | {human.mean_blast_radius:.2f} "
        f"| {amnesia.mean_blast_radius:.2f} |",
        f"| est. entropy | {human.mean_entropy_bits:.0f} bits "
        f"| {amnesia.mean_entropy_bits:.0f} bits |",
    ]
    return lines


def _table3_section() -> list[str]:
    lines = [
        "## Table III — Bonneau framework",
        "",
        "```",
        render_table_iii(),
        "```",
        "",
        "Mechanical checks:",
        "",
    ]
    for check in mechanical_checks():
        status = "ok" if check.consistent else "**FAIL**"
        lines.append(
            f"- [{status}] {check.property_name}: {check.evidence}"
        )
    return lines


def generate_report(trials: int = 100, seed: str = "report") -> str:
    """Render the full reproduction report as markdown."""
    sections = [
        "# Amnesia reproduction report",
        "",
        "Generated by `amnesia-repro report`. Paper: Wang, Li & Sun, "
        '"Amnesia: A Bilateral Generative Password Manager", ICDCS 2016.',
        "",
    ]
    sections += _fig3_section(trials, seed)
    sections.append("")
    sections += _stage_section(seed)
    sections.append("")
    sections += _strength_section()
    sections.append("")
    sections += _table3_section()
    sections.append("")
    sections += _attack_section()
    sections.append("")
    sections += _survey_section()
    sections.append("")
    return "\n".join(sections)
