"""Render Tables I and II: the concrete data layouts.

Table I shows one user's server-side rows (O_id, registration id,
hashed MP and P_id, salt, and the (µ, d, σ) entries); Table II shows
the application side (P_id and the 5000-entry table). These renderers
read a *live* server database / phone database and print the same
shape, abbreviating hex values the way the paper does.
"""

from __future__ import annotations

from repro.storage.phone_db import PhoneDatabase
from repro.storage.server_db import ServerDatabase
from repro.util.errors import NotFoundError


def _abbrev(data: bytes | str | None, keep: int = 7) -> str:
    if data is None:
        return "(none)"
    text = data.hex() if isinstance(data, (bytes, bytearray)) else str(data)
    return f"0x{text[:keep]}..." if len(text) > keep else f"0x{text}"


def render_table_i(database: ServerDatabase, login: str) -> str:
    """Table I — Server Side Data for one user."""
    user = database.user_by_login(login)
    lines = [
        "TABLE I: Server Side Data",
        f"{'Data':{24}s} Value",
        f"{'Oid':{24}s} {_abbrev(user.oid)}",
        f"{'Registration ID':{24}s} "
        + (user.reg_id[:16] + "..." if user.reg_id else "(none)"),
        f"{'H(MP + salt)':{24}s} {_abbrev(user.mp_hash)}",
        f"{'H(Pid + salt)':{24}s} {_abbrev(user.pid_hash)}",
        f"{'Salt':{24}s} {_abbrev(user.mp_salt)}",
    ]
    for index, account in enumerate(
        database.accounts_for_user(user.user_id), start=1
    ):
        lines.append(
            f"{f'(u, d, sigma)_{index}':{24}s} "
            f"({account.username}, {account.domain}, {_abbrev(account.seed)})"
        )
    return "\n".join(lines)


def render_table_ii(database: PhoneDatabase, sample_entries: int = 3) -> str:
    """Table II — Application Side Data (abbreviated to a few entries)."""
    try:
        pid = database.pid()
    except NotFoundError:
        raise NotFoundError("phone application not initialised") from None
    entries = database.entry_table()
    lines = [
        "TABLE II: Application Side Data",
        f"{'Data':{10}s} Value",
        f"{'Pid':{10}s} {_abbrev(pid)}",
    ]
    for index in range(min(sample_entries, len(entries))):
        lines.append(f"{f'e{index + 1}':{10}s} {_abbrev(entries[index])}")
    if len(entries) > sample_entries:
        lines.append(f"{'...':{10}s} ...")
        lines.append(
            f"{f'e{len(entries) - 1}':{10}s} {_abbrev(entries[-1])}"
        )
    return "\n".join(lines)
