"""Chaos scenarios: the resilience story, quantified.

Each scenario arms a canonical :class:`FaultSchedule` against a fresh
testbed and drives a batch of password generations through it twice —
once with the resilience machinery on (browser retry policy with
jittered backoff, phone heartbeat + re-registration) and once with it
off — then compares success rates and user-visible latency.

The three canonical schedules target the three legs of Figure 1's
pipeline:

- ``lossy-uplink``    : a heavy loss burst on the server ↔ GCM link.
  The publisher's capped ack/retransmit loop fails fast, the server
  degrades to a structured 503 + retry-after, and a retrying browser
  succeeds once the burst passes.
- ``rendezvous-crash``: GCM crashes mid-exchange and restarts amnesic.
  Registrations are volatile, so pushes to the stale id are NACKed;
  only a phone that detects the dead registration (heartbeat) and
  re-registers — refreshing the server via ``/phone/reregister`` —
  ever receives a push again.
- ``return-partition``: the phone ↔ server link partitions across the
  token return hop, outlasting the secure stack's own retransmissions.
  The first exchange times out server-side; a retried request issues a
  fresh exchange that completes once the partition heals.

Everything is deterministic under the seed: both arms run identical
testbeds, all fault randomness comes from the ``"faults"`` RNG stream,
and retry jitter from dedicated ``"chaos-*"`` streams. The counters the
run leaves behind in each testbed's registry
(``amnesia_faults_injected_total``, ``amnesia_retries_total``,
``amnesia_degraded_responses_total``) are the same families the
``/metricsz`` exporter serves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict

from repro.faults.plane import FaultSchedule
from repro.faults.retry import RetryPolicy
from repro.testbed import PHONE, RENDEZVOUS, SERVER, AmnesiaTestbed
from repro.util.errors import ReproError, ValidationError

# The browser-side policy chaos runs use when retries are ON. Tuned to
# the schedules below: the first re-attempt lands after the push
# fail-fast window, the last after a 13 s partition heals.
CHAOS_RETRY = RetryPolicy(
    max_attempts=4,
    base_delay_ms=800.0,
    multiplier=2.0,
    max_delay_ms=6_000.0,
    jitter=0.5,
)

_HEARTBEAT_INTERVAL_MS = 1_000.0
_HEARTBEAT_MISS_THRESHOLD = 2
_GENERATION_TIMEOUT_MS = 8_000.0
_SETTLE_MS = 2_000.0


def _percentile(samples: tuple[float, ...], q: float) -> float:
    """Linear-interpolated percentile; NaN for an empty sample set."""
    if not (0 <= q <= 100):
        raise ValidationError(f"percentile q must be in [0, 100], got {q}")
    if not samples:
        return math.nan
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = (q / 100) * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


@dataclass(frozen=True)
class ChaosScenario:
    """One named fault schedule, rebuilt fresh for every trial."""

    name: str
    description: str
    schedule: Callable[[], FaultSchedule]


def _lossy_uplink() -> FaultSchedule:
    # 85% loss both ways on server<->gcm for 4 s: pushes and their acks
    # mostly vanish, so the publisher's 3-attempt ack loop fails fast.
    return FaultSchedule().loss_burst(0.0, 4_000.0, SERVER, RENDEZVOUS, 0.85)


def _rendezvous_crash() -> FaultSchedule:
    # Crash immediately (before the push can land), back 2 s later with
    # all registrations gone: the retransmitted push finds an amnesic
    # service that NACKs the stale registration.
    return FaultSchedule().crash(0.0, RENDEZVOUS, down_ms=2_000.0)


def _return_partition() -> FaultSchedule:
    # Sever phone<->server for 13 s: longer than the secure stack's own
    # retransmit budget, so only a re-issued exchange can complete.
    return FaultSchedule().partition(0.0, 13_000.0, (PHONE,), (SERVER,))


CANONICAL_SCENARIOS: tuple[ChaosScenario, ...] = (
    ChaosScenario(
        "lossy-uplink",
        "85% loss burst on server<->gcm (4 s) during the push",
        _lossy_uplink,
    ),
    ChaosScenario(
        "rendezvous-crash",
        "gcm crashes mid-exchange, restarts amnesic 2 s later",
        _rendezvous_crash,
    ),
    ChaosScenario(
        "return-partition",
        "phone<->server partition (13 s) across the token return hop",
        _return_partition,
    ),
)


@dataclass
class ArmStats:
    """One arm (retries on or off) of one scenario."""

    retries_enabled: bool
    trials: int = 0
    successes: int = 0
    samples_ms: tuple[float, ...] = ()
    client_retries: int = 0
    phone_token_retries: int = 0
    phone_reregistrations: int = 0
    degraded_responses: int = 0
    faults_injected: Dict[str, int] = field(default_factory=dict)

    @property
    def failures(self) -> int:
        return self.trials - self.successes

    @property
    def success_rate(self) -> float:
        return self.successes / self.trials if self.trials else 0.0

    def percentile(self, q: float) -> float:
        return _percentile(self.samples_ms, q)


@dataclass
class ScenarioResult:
    """Both arms of one scenario, ready to render side by side."""

    scenario: ChaosScenario
    with_retries: ArmStats
    without_retries: ArmStats

    def render(self) -> str:
        lines = [
            f"[{self.scenario.name}] {self.scenario.description}",
            f"  {'arm':<12s} {'ok':>5s} {'rate':>6s} {'p50 ms':>9s} "
            f"{'p95 ms':>9s} {'retries':>8s} {'rereg':>6s} {'degraded':>9s}",
        ]
        for arm, label in (
            (self.with_retries, "retries-on"),
            (self.without_retries, "retries-off"),
        ):
            p50, p95 = arm.percentile(50), arm.percentile(95)
            retries = arm.client_retries + arm.phone_token_retries
            lines.append(
                f"  {label:<12s} {arm.successes:>2d}/{arm.trials:<2d} "
                f"{arm.success_rate:>5.0%} "
                f"{'-' if math.isnan(p50) else format(p50, '9.1f'):>9s} "
                f"{'-' if math.isnan(p95) else format(p95, '9.1f'):>9s} "
                f"{retries:>8d} {arm.phone_reregistrations:>6d} "
                f"{arm.degraded_responses:>9d}"
            )
        faults = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(self.with_retries.faults_injected.items())
        )
        lines.append(f"  faults injected (retries-on arm): {faults or 'none'}")
        return "\n".join(lines)

    def fingerprint(self) -> str:
        """A compact determinism witness: identical seeds must reproduce
        this string bit-for-bit."""
        parts = [self.scenario.name]
        for arm in (self.with_retries, self.without_retries):
            parts.append(
                f"{arm.successes}/{arm.trials}"
                f":{','.join(f'{s:.3f}' for s in arm.samples_ms)}"
                f":r{arm.client_retries + arm.phone_token_retries}"
                f":d{arm.degraded_responses}"
                f":f{sorted(arm.faults_injected.items())}"
            )
        return "|".join(parts)


def run_scenario_arm(
    scenario: ChaosScenario,
    seed: int | str,
    trials: int,
    retries: bool,
) -> ArmStats:
    """One arm: a fresh testbed, *trials* generations under the schedule."""
    if trials < 1:
        raise ValidationError(f"trials must be >= 1, got {trials}")
    bed = AmnesiaTestbed(
        seed=f"chaos|{scenario.name}|{seed}",
        generation_timeout_ms=_GENERATION_TIMEOUT_MS,
    )
    browser = bed.enroll("chaos", "chaos-master-password")
    account_id = browser.add_account("chaos", "chaos.example.com")
    browser.generate_password(account_id)  # warm-up: no faults, no retries
    plane = bed.install_fault_plane()
    retry_rng = bed.network.rng_stream("chaos-browser-retry")
    if retries:
        bed.phone.enable_resilience(
            "chaos",
            heartbeat_interval_ms=_HEARTBEAT_INTERVAL_MS,
            miss_threshold=_HEARTBEAT_MISS_THRESHOLD,
        )
    stats = ArmStats(retries_enabled=retries)
    samples: list[float] = []
    for __ in range(trials):
        schedule = scenario.schedule()
        plane.apply(schedule)
        started = bed.kernel.now
        stats.trials += 1
        try:
            browser.generate_password(
                account_id,
                retry=CHAOS_RETRY if retries else None,
                rng=retry_rng,
            )
        except ReproError:
            pass
        else:
            stats.successes += 1
            # End-to-end latency as the *user* sees it: includes every
            # retry and backoff wait, not just the winning exchange.
            samples.append(bed.kernel.now - started)
        # Let the schedule play out fully and the fabric settle before
        # the next trial arms a fresh copy.
        horizon = started + schedule.horizon_ms() + _SETTLE_MS
        if bed.kernel.now < horizon:
            bed.kernel.run(until=horizon)
    if retries:
        bed.phone.disable_resilience()
    stats.samples_ms = tuple(samples)
    stats.client_retries = browser.http.retry_count
    stats.phone_token_retries = bed.phone.token_submit_retries
    stats.phone_reregistrations = bed.phone.reregistrations
    stats.degraded_responses = bed.server.metrics.degraded_responses
    stats.faults_injected = dict(plane.injected)
    return stats


def run_scenario(
    scenario: ChaosScenario, seed: int | str = "chaos", trials: int = 5
) -> ScenarioResult:
    return ScenarioResult(
        scenario=scenario,
        with_retries=run_scenario_arm(scenario, seed, trials, retries=True),
        without_retries=run_scenario_arm(scenario, seed, trials, retries=False),
    )


def run_chaos(
    seed: int | str = "chaos",
    trials: int = 5,
    scenarios: tuple[ChaosScenario, ...] = CANONICAL_SCENARIOS,
) -> list[ScenarioResult]:
    """The full suite: every scenario, both arms."""
    return [run_scenario(scenario, seed, trials) for scenario in scenarios]


def aggregate_rates(results: list[ScenarioResult]) -> tuple[float, float]:
    """(retries-on, retries-off) success rates pooled across scenarios."""
    on_ok = sum(r.with_retries.successes for r in results)
    on_n = sum(r.with_retries.trials for r in results)
    off_ok = sum(r.without_retries.successes for r in results)
    off_n = sum(r.without_retries.trials for r in results)
    return (on_ok / on_n if on_n else 0.0, off_ok / off_n if off_n else 0.0)


def suite_fingerprint(results: list[ScenarioResult]) -> str:
    return "\n".join(result.fingerprint() for result in results)
