"""Generated-password strength (§IV-E) and entry-index bias (ablation A1).

§IV-E: with the default 94-character table and length 32, "the average
generated password would comprise of roughly 9 lowercase characters,
9 uppercase characters, 3 numerals, and 11 special characters", and the
password space is 94^32 ≈ 1.38 × 10^63.

The ablation extends the analysis the paper skips: reducing a 16-bit
segment modulo N is slightly non-uniform whenever 65536 mod N ≠ 0;
:func:`index_bias` quantifies the deviation for any table size.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.core.protocol import token_indices
from repro.core.params import ProtocolParams
from repro.core.templates import DIGITS, LOWERCASE, SPECIAL, UPPERCASE, PasswordPolicy
from repro.crypto.hashing import sha256_hex
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class Composition:
    """Character-class counts of one or many passwords (averaged)."""

    lowercase: float
    uppercase: float
    digits: float
    special: float

    @property
    def total(self) -> float:
        return self.lowercase + self.uppercase + self.digits + self.special

    def rounded(self) -> tuple[int, int, int, int]:
        return (
            round(self.lowercase),
            round(self.uppercase),
            round(self.digits),
            round(self.special),
        )


# The paper's §IV-E expectation for the default policy.
PAPER_COMPOSITION = (9, 9, 3, 11)


def composition_expectation(policy: PasswordPolicy | None = None) -> Composition:
    """Analytic expected composition under a uniform template output."""
    effective = policy if policy is not None else PasswordPolicy()
    charset = effective.charset
    size = len(charset)
    length = effective.length

    def expected(cls: str) -> float:
        return length * sum(1 for c in charset if c in cls) / size

    return Composition(
        lowercase=expected(LOWERCASE),
        uppercase=expected(UPPERCASE),
        digits=expected(DIGITS),
        special=expected(SPECIAL),
    )


def composition_of(password: str) -> Composition:
    """Exact composition of one password."""
    return Composition(
        lowercase=sum(1 for c in password if c in LOWERCASE),
        uppercase=sum(1 for c in password if c in UPPERCASE),
        digits=sum(1 for c in password if c in DIGITS),
        special=sum(1 for c in password if c in SPECIAL),
    )


def empirical_composition(passwords: list[str]) -> Composition:
    """Mean composition over a sample of generated passwords."""
    if not passwords:
        raise ValidationError("need at least one password")
    parts = [composition_of(p) for p in passwords]
    n = len(parts)
    return Composition(
        lowercase=sum(p.lowercase for p in parts) / n,
        uppercase=sum(p.uppercase for p in parts) / n,
        digits=sum(p.digits for p in parts) / n,
        special=sum(p.special for p in parts) / n,
    )


@dataclass(frozen=True)
class IndexBias:
    """Non-uniformity of ``int(segment, 16) mod N`` over 16-bit segments."""

    table_size: int
    max_probability: float
    min_probability: float
    uniform_probability: float
    total_variation_distance: float
    effective_entropy_bits: float


def index_bias(table_size: int, segment_space: int = 65_536) -> IndexBias:
    """Analytic modulo-bias for one segment.

    ``segment_space mod table_size`` indices receive one extra preimage
    each; the rest receive ``floor(segment_space / table_size)``.
    """
    if table_size < 1 or table_size > segment_space:
        raise ValidationError(
            f"table size must be in [1, {segment_space}], got {table_size}"
        )
    base = segment_space // table_size
    heavy = segment_space % table_size  # indices with base+1 preimages
    p_heavy = (base + 1) / segment_space
    p_light = base / segment_space
    uniform = 1 / table_size
    tvd = 0.5 * (
        heavy * abs(p_heavy - uniform) + (table_size - heavy) * abs(p_light - uniform)
    )
    entropy = 0.0
    if heavy:
        entropy -= heavy * p_heavy * math.log2(p_heavy)
    if table_size - heavy and p_light > 0:
        entropy -= (table_size - heavy) * p_light * math.log2(p_light)
    return IndexBias(
        table_size=table_size,
        max_probability=p_heavy if heavy else p_light,
        min_probability=p_light if heavy < table_size else p_heavy,
        uniform_probability=uniform,
        total_variation_distance=tvd,
        effective_entropy_bits=entropy,
    )


def empirical_index_distribution(
    params: ProtocolParams, samples: int = 2_000
) -> Counter:
    """Histogram of entry-table indices over random requests."""
    counts: Counter = Counter()
    for i in range(samples):
        request_hex = sha256_hex(b"bias-probe|", str(i).encode("ascii"))
        counts.update(token_indices(request_hex, params))
    return counts
