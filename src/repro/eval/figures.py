"""ASCII rendering of the paper's figures (shared by CLI and examples)."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.util.errors import ValidationError


def histogram(
    samples: Sequence[float], bins: int = 12, width: int = 40
) -> str:
    """A left-to-right ASCII histogram of *samples*."""
    if not samples:
        raise ValidationError("histogram needs at least one sample")
    low, high = min(samples), max(samples)
    step = (high - low) / bins or 1.0
    counts = [0] * bins
    for sample in samples:
        index = min(bins - 1, int((sample - low) / step))
        counts[index] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        label = f"{low + i * step:7.0f}-{low + (i + 1) * step:<6.0f}"
        bar = "#" * int(round(width * count / peak))
        lines.append(f"  {label} {bar} {count}")
    return "\n".join(lines)


def bar_panel(title: str, distribution: Dict[str, int], width: int = 24) -> str:
    """One Figure 4 panel: labelled horizontal bars."""
    if not distribution:
        raise ValidationError("panel needs at least one category")
    peak = max(distribution.values()) or 1
    lines = [title]
    for label, count in distribution.items():
        bar = "#" * int(round(width * count / peak))
        lines.append(f"  {label:<14s} {count:>3d}  {bar}")
    return "\n".join(lines)
