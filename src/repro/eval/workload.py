"""Multi-user workload generation against a full deployment.

The paper's prototype was only ever exercised by one tester at a time
("the prototype is at most used for latency tests and our user study").
This module drives a population: N users, each with a phone and a set
of accounts, issuing password generations as a Poisson process. It is
the load side of the §VIII bottleneck question — at what request rate
does the 10-thread blocking server degrade?
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.net.profiles import FAST_PROFILE, NetworkProfile
from repro.testbed import AmnesiaTestbed
from repro.util.errors import ValidationError
from repro.web.http import HttpRequest


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload configuration."""

    users: int = 3
    accounts_per_user: int = 3
    duration_ms: float = 60_000.0
    mean_interarrival_ms: float = 5_000.0  # per user
    seed: str = "workload"

    def __post_init__(self) -> None:
        if self.users < 1 or self.accounts_per_user < 1:
            raise ValidationError("users and accounts_per_user must be >= 1")
        if self.duration_ms <= 0 or self.mean_interarrival_ms <= 0:
            raise ValidationError("durations must be positive")

    @property
    def offered_rate_per_s(self) -> float:
        """Aggregate offered generation rate (requests/second)."""
        return self.users * 1000.0 / self.mean_interarrival_ms


@dataclass
class WorkloadResult:
    """What happened when the workload ran."""

    spec: WorkloadSpec
    issued: int = 0
    completed: int = 0
    failed: int = 0
    latencies_ms: list[float] = field(default_factory=list)
    pool_peak_busy: int = 0
    pool_peak_queue: int = 0

    @property
    def completion_rate(self) -> float:
        return self.completed / self.issued if self.issued else 0.0

    def latency_mean_ms(self) -> float:
        if not self.latencies_ms:
            return math.nan
        return sum(self.latencies_ms) / len(self.latencies_ms)

    def latency_p95_ms(self) -> float:
        if not self.latencies_ms:
            return math.nan
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, int(0.95 * (len(ordered) - 1)))
        return ordered[index]


def run_workload(
    spec: WorkloadSpec,
    profile: NetworkProfile = FAST_PROFILE,
    thread_pool_size: int = 10,
    generation_timeout_ms: float = 30_000.0,
    client_patience_ms: float = 60_000.0,
    telemetry: bool = False,
) -> WorkloadResult:
    """Execute *spec* on a fresh testbed and collect the outcome.

    With *telemetry* the fleet scrape/SLO plane runs alongside the
    load — and the distributed tracing plane with it, so every exchange
    also carries trace context and exports spans over ``/spansz``; its
    ``/metricsz`` requests share the server's thread pool and
    compute-latency stream, so the measured latencies include the real
    cost of being observed (the ``macro.telemetry.overhead_pct`` bench
    gate bounds that cost, tracing included). The telemetry-off path is
    untouched — it must stay byte-identical with historical baselines."""
    bed = AmnesiaTestbed(
        seed=spec.seed,
        profile=profile,
        thread_pool_size=thread_pool_size,
        generation_timeout_ms=generation_timeout_ms,
    )
    bed._laptop_stack.retry_timeout_ms = client_patience_ms

    population = []
    for index in range(spec.users):
        login = f"user{index}"
        if index == 0:
            browser = bed.enroll(login, f"master-{login}-password")
            phone = bed.phone
        else:
            phone = bed.add_device(f"phone-{login}")
            browser = bed.enroll(login, f"master-{login}-password", phone=phone)
        phone.stack.retry_timeout_ms = client_patience_ms
        accounts = [
            browser.add_account(login, f"site{a}.example")
            for a in range(spec.accounts_per_user)
        ]
        population.append((browser, accounts))

    result = WorkloadResult(spec=spec)
    rng = bed.rngs.stream("workload-arrivals")
    start = bed.kernel.now

    def issue(browser, accounts) -> None:
        account_id = accounts[rng.randrange(len(accounts))]
        result.issued += 1

        def on_response(response) -> None:
            if response.ok:
                result.completed += 1
                result.latencies_ms.append(
                    float(response.json().get("latency_ms", 0.0))
                )
            else:
                result.failed += 1

        browser.http.send(
            HttpRequest.json_request(
                "POST", f"/accounts/{account_id}/generate", {}
            ),
            on_response,
            lambda error: result.__setattr__("failed", result.failed + 1),
        )

    def schedule_user(browser, accounts) -> None:
        def next_arrival() -> None:
            if bed.kernel.now - start >= spec.duration_ms:
                return
            issue(browser, accounts)
            gap = rng.expovariate(1.0 / spec.mean_interarrival_ms)
            bed.kernel.schedule(gap, next_arrival, label="workload-arrival")

        initial_gap = rng.expovariate(1.0 / spec.mean_interarrival_ms)
        bed.kernel.schedule(initial_gap, next_arrival, label="workload-arrival")

    for browser, accounts in population:
        schedule_user(browser, accounts)
    if telemetry:
        # The scrape loop never drains, so run for the workload's span
        # (plus a grace period for stragglers), stop the plane, then
        # drain whatever is still in flight. Tracing rides the same
        # arm: the overhead gate covers context propagation + export.
        bed.install_tracing()
        plane = bed.install_telemetry()
        bed.run(spec.duration_ms + generation_timeout_ms)
        plane.stop()
    bed.run_until_idle()

    pool = bed.server.http_server.pool
    result.pool_peak_busy = pool.peak_busy
    result.pool_peak_queue = pool.queued_peak
    return result
