"""Datagram: the unit of transfer on the simulated network."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_datagram_ids = itertools.count(1)


@dataclass(frozen=True)
class Datagram:
    """An addressed payload in flight.

    ``payload`` is opaque bytes — for protected traffic it is TLS record
    ciphertext, which is what a network tap (eavesdropper) observes.
    """

    src: str
    dst: str
    port: int
    payload: bytes
    id: int = field(default_factory=lambda: next(_datagram_ids))

    def __post_init__(self) -> None:
        if not isinstance(self.payload, (bytes, bytearray)):
            raise TypeError(
                f"Datagram payload must be bytes, got {type(self.payload).__name__}"
            )

    @property
    def size(self) -> int:
        """Payload size in bytes (used by bandwidth-aware latency models)."""
        return len(self.payload)
