"""Network profiles calibrated against Figure 3.

The paper measures end-to-end password-generation latency
(t_start = R handed to GCM, t_end = P computed) over two access
networks:

- Wi-Fi (Cox, 30/10 Mbps):   x̄ = 785.3 ms, σ = 171.5 ms
- 4G (T-Mobile):             x̄ = 978.7 ms, σ = 137.9 ms

We decompose the measured pipeline into hops::

    server ──(server_gcm)──► GCM ──(gcm_phone)──► phone
                                                     │ compute (24 ± 6 ms)
    server ◄──────────────(phone_server)────────────┘
      │ compute (2 ms)
      ▼ t_end

and fit lognormal per-hop models so the analytic sum of means/variances
matches the paper's reported moments (the per-hop numbers embed GCM
store-and-forward and cellular radio-wake costs, which dominate). The
fits assume the default device compute model
(:data:`repro.phone.device.DEFAULT_COMPUTE_LATENCY`, 24 ± 6 ms) and the
default server compute model (2 ms constant).

Only the *decomposition* is ours; the end-to-end moments are the
paper's. The claim that survives reproduction is the shape — Wi-Fi
beats 4G by ~200 ms and both stay under ~1 s — not the exact per-hop
milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.latency import LatencyModel, Lognormal


@dataclass(frozen=True)
class NetworkProfile:
    """Latency models for every link in an Amnesia deployment."""

    name: str
    browser_server: LatencyModel
    server_gcm: LatencyModel
    gcm_phone: LatencyModel
    phone_server: LatencyModel
    phone_cloud: LatencyModel

    def expected_generation_mean_ms(
        self, phone_compute_mean: float = 24.0, server_compute_mean: float = 2.0
    ) -> float:
        """Analytic mean of the measured pipeline under this profile."""
        return (
            self.server_gcm.mean()
            + self.gcm_phone.mean()
            + phone_compute_mean
            + self.phone_server.mean()
            + server_compute_mean
        )

    def expected_generation_std_ms(
        self, phone_compute_std: float = 6.0, server_compute_std: float = 0.0
    ) -> float:
        """Analytic std of the measured pipeline (independent hops)."""
        variance = (
            self.server_gcm.std() ** 2
            + self.gcm_phone.std() ** 2
            + phone_compute_std**2
            + self.phone_server.std() ** 2
            + server_compute_std**2
        )
        return variance**0.5


# Wi-Fi: 60 + 349 + 24 + 350.3 + 2 = 785.3 ms;
# sqrt(27^2 + 122^2 + 6^2 + 117^2) = 171.3 ms  (paper: 785.3 / 171.5)
WIFI_PROFILE = NetworkProfile(
    name="wifi",
    browser_server=Lognormal(30.0, 10.0),
    server_gcm=Lognormal(60.0, 27.0),
    gcm_phone=Lognormal(349.0, 122.0),
    phone_server=Lognormal(350.3, 117.0),
    phone_cloud=Lognormal(80.0, 25.0),
)

# 4G: 60 + 446 + 24 + 446.7 + 2 = 978.7 ms;
# sqrt(27^2 + 96^2 + 6^2 + 95^2) = 137.9 ms  (paper: 978.7 / 137.9)
CELLULAR_4G_PROFILE = NetworkProfile(
    name="4g",
    browser_server=Lognormal(30.0, 10.0),
    server_gcm=Lognormal(60.0, 27.0),
    gcm_phone=Lognormal(446.0, 96.0),
    phone_server=Lognormal(446.7, 95.0),
    phone_cloud=Lognormal(120.0, 40.0),
)

# A fast profile for functional tests where latency realism is noise.
FAST_PROFILE = NetworkProfile(
    name="fast",
    browser_server=Lognormal(2.0, 0.5),
    server_gcm=Lognormal(2.0, 0.5),
    gcm_phone=Lognormal(2.0, 0.5),
    phone_server=Lognormal(2.0, 0.5),
    phone_cloud=Lognormal(2.0, 0.5),
)

PROFILES = {
    profile.name: profile
    for profile in (WIFI_PROFILE, CELLULAR_4G_PROFILE, FAST_PROFILE)
}
