"""The network fabric: hosts, links, delivery, and wire taps.

Delivery semantics are datagram-like: a send samples the link's latency
and schedules the receiving handler on the simulation kernel. Loss and
offline hosts silently drop (like UDP); reliability, where needed, is
built above (the secure channel and the rendezvous service both retry).

Wire taps receive a copy of every datagram crossing the fabric — this
is the substrate for the paper's eavesdropping attack vectors (§IV-A,
§IV-B): a tap on protected traffic sees only ciphertext and metadata.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.net.link import Link
from repro.net.message import Datagram
from repro.obs.profiler import profiled
from repro.sim.kernel import Simulator
from repro.sim.random import RngRegistry
from repro.util.errors import ConflictError, NetworkError, ValidationError

# A port handler receives the inbound datagram and the network (to reply).
PortHandler = Callable[[Datagram], None]
Tap = Callable[[Datagram], None]
DropHook = Callable[[Datagram, str], None]


class Host:
    """A named endpoint on the network with bound ports and an online flag."""

    def __init__(self, name: str, network: "Network") -> None:
        self.name = name
        self.network = network
        self.online = True
        self.crash_count = 0
        self._ports: Dict[int, PortHandler] = {}

    def bind(self, port: int, handler: PortHandler) -> None:
        """Attach *handler* to *port*; one handler per port."""
        if port in self._ports:
            raise ConflictError(f"{self.name}: port {port} already bound")
        self._ports[port] = handler

    def unbind(self, port: int) -> None:
        self._ports.pop(port, None)

    def crash(self) -> None:
        """Power-fail the host: offline, and every volatile port binding
        is lost. Whatever process owned the ports must re-bind on
        restart — exactly what distinguishes a crash from a partition."""
        self.online = False
        self.crash_count += 1
        self._ports.clear()

    def boot(self) -> None:
        """Bring the host back online. Port bindings do NOT come back by
        themselves; restartable services re-bind in their ``restart()``."""
        self.online = True

    def handler_for(self, port: int) -> Optional[PortHandler]:
        return self._ports.get(port)

    def send(self, dst: str, port: int, payload: bytes) -> Datagram:
        """Convenience: send from this host."""
        return self.network.send(self.name, dst, port, payload)


class Network:
    """A fabric of hosts and directed links on a simulation kernel."""

    def __init__(self, kernel: Simulator, rngs: RngRegistry) -> None:
        self.kernel = kernel
        self._rngs = rngs
        self._hosts: Dict[str, Host] = {}
        self._links: Dict[tuple[str, str], Link] = {}
        self._taps: list[Tap] = []
        self._drop_hooks: list[DropHook] = []
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0
        # Fault-injection hook (see repro.faults.plane); None = no faults.
        self._faults = None
        # Registry-backed per-link counters (bind_registry); None = off.
        self._m_datagrams = None
        self._m_bytes = None
        self._m_delivered = None
        self._m_dropped = None

    # -- topology ------------------------------------------------------------

    def add_host(self, name: str) -> Host:
        if name in self._hosts:
            raise ConflictError(f"host {name!r} already exists")
        host = Host(name, self)
        self._hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host {name!r}") from None

    def add_link(self, link: Link, bidirectional: bool = True) -> None:
        """Install *link*; by default also the mirrored reverse direction."""
        for name in (link.src, link.dst):
            if name not in self._hosts:
                raise NetworkError(f"link references unknown host {name!r}")
        self._links[(link.src, link.dst)] = link
        if bidirectional:
            mirrored = Link(
                src=link.dst,
                dst=link.src,
                latency=link.latency,
                loss_probability=link.loss_probability,
                bandwidth_kbps=link.bandwidth_kbps,
            )
            self._links[(mirrored.src, mirrored.dst)] = mirrored

    def link_between(self, src: str, dst: str) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise NetworkError(f"no link {src!r} -> {dst!r}") from None

    # -- observation ---------------------------------------------------------

    def add_tap(self, tap: Tap) -> None:
        """Register a wire tap seeing a copy of every datagram sent."""
        self._taps.append(tap)

    def remove_tap(self, tap: Tap) -> None:
        self._taps.remove(tap)

    def add_drop_hook(self, hook: DropHook) -> None:
        """Register a callback invoked as ``hook(datagram, reason)`` on drops."""
        self._drop_hooks.append(hook)

    def rng_stream(self, name: str):
        """A named deterministic RNG stream from the fabric's registry
        (for components that need reproducible randomness, e.g. retry
        jitter and the fault plane)."""
        return self._rngs.stream(name)

    def install_faults(self, plane) -> None:
        """Attach a fault plane; consulted on every send. Installing
        ``None`` removes it."""
        self._faults = plane

    def bind_registry(self, registry) -> None:
        """Feed per-link datagram/byte/drop counters into *registry*.

        Links are labelled ``src->dst`` — cardinality is bounded by the
        topology, which the deployments construct explicitly.
        """
        self._m_datagrams = registry.counter(
            "amnesia_net_datagrams_total",
            "Datagrams sent onto the fabric, per directed link",
            label_names=("link",),
        )
        self._m_bytes = registry.counter(
            "amnesia_net_bytes_total",
            "Payload bytes sent onto the fabric, per directed link",
            label_names=("link",),
        )
        self._m_delivered = registry.counter(
            "amnesia_net_delivered_total",
            "Datagrams delivered to a bound handler, per directed link",
            label_names=("link",),
        )
        self._m_dropped = registry.counter(
            "amnesia_net_dropped_total",
            "Datagrams dropped, per directed link and reason",
            label_names=("link", "reason"),
        )

    @staticmethod
    def _link_label(datagram: Datagram) -> str:
        return f"{datagram.src}->{datagram.dst}"

    # -- transfer ------------------------------------------------------------

    @profiled("net.send")
    def send(self, src: str, dst: str, port: int, payload: bytes) -> Datagram:
        """Send a datagram; returns it (delivery is asynchronous).

        Raises :class:`NetworkError` for topology errors (unknown hosts
        or missing link). Loss and offline receivers drop silently, as
        on a real network.
        """
        if not isinstance(payload, (bytes, bytearray)):
            raise ValidationError("payload must be bytes")
        if src not in self._hosts:
            raise NetworkError(f"unknown source host {src!r}")
        link = self.link_between(src, dst)
        datagram = Datagram(src=src, dst=dst, port=port, payload=bytes(payload))
        self.sent_count += 1
        if self._m_datagrams is not None:
            link_label = self._link_label(datagram)
            self._m_datagrams.labels(link=link_label).inc()
            self._m_bytes.labels(link=link_label).inc(datagram.size)
        for tap in self._taps:
            tap(datagram)
        extra_delay_ms = 0.0
        copies = 1
        if self._faults is not None:
            verdict = self._faults.intercept(datagram, self.kernel.now)
            if verdict.drop_reason is not None:
                self._drop(datagram, verdict.drop_reason)
                return datagram
            extra_delay_ms = verdict.extra_delay_ms
            copies = 1 + verdict.duplicates
        rng = self._rngs.stream(f"link:{src}->{dst}")
        if link.loss_probability > 0 and rng.random() < link.loss_probability:
            self._drop(datagram, "loss")
            return datagram
        for __ in range(copies):
            delay = link.transfer_delay_ms(datagram.size, rng) + extra_delay_ms
            self.kernel.schedule(
                delay,
                lambda: self._deliver(datagram),
                label=f"deliver {src}->{dst}:{port}",
            )
        return datagram

    @profiled("net.deliver")
    def _deliver(self, datagram: Datagram) -> None:
        host = self._hosts.get(datagram.dst)
        if host is None or not host.online:
            self._drop(datagram, "offline")
            return
        handler = host.handler_for(datagram.port)
        if handler is None:
            self._drop(datagram, "no-handler")
            return
        self.delivered_count += 1
        if self._m_delivered is not None:
            self._m_delivered.labels(link=self._link_label(datagram)).inc()
        handler(datagram)

    def _drop(self, datagram: Datagram, reason: str) -> None:
        self.dropped_count += 1
        if self._m_dropped is not None:
            self._m_dropped.labels(
                link=self._link_label(datagram), reason=reason
            ).inc()
        for hook in self._drop_hooks:
            hook(datagram, reason)
