"""Simulated network substrate.

Models the three transports the paper's architecture uses:

1. computer ↔ Amnesia server ("HTTPS"),
2. Amnesia server → rendezvous → phone (GCM push), and
3. phone → Amnesia server (direct, because the server has a static IP).

Hosts attach to a :class:`~repro.net.network.Network`; links between
hosts carry a latency model and a loss probability; taps let the attack
experiments observe ciphertext exactly like a wire eavesdropper. The
TLS-like secure channel (:mod:`repro.net.tls`) provides authenticated
encryption with certificate pinning over the datagram layer.
"""

from repro.net.message import Datagram
from repro.net.network import Network, Host
from repro.net.link import Link
from repro.net.certificates import Certificate, CertificateStore
from repro.net.tls import (
    SecureServer,
    SecureClient,
    SecureSession,
    SecureStack,
    SECURE_PORT,
)

__all__ = [
    "Datagram",
    "Network",
    "Host",
    "Link",
    "Certificate",
    "CertificateStore",
    "SecureServer",
    "SecureClient",
    "SecureSession",
    "SecureStack",
    "SECURE_PORT",
]
