"""Directed links between hosts: latency model + loss probability."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.latency import LatencyModel
from repro.util.errors import ValidationError


@dataclass
class Link:
    """A directed path from one host to another.

    ``bandwidth_kbps`` adds a size-proportional serialisation delay on
    top of the sampled propagation latency; zero disables it (the
    paper's payloads are tiny, so the default models latency only).
    """

    src: str
    dst: str
    latency: LatencyModel
    loss_probability: float = 0.0
    bandwidth_kbps: float = 0.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.loss_probability < 1.0):
            raise ValidationError(
                f"loss probability must be in [0, 1), got {self.loss_probability}"
            )
        if self.bandwidth_kbps < 0:
            raise ValidationError(
                f"bandwidth must be >= 0, got {self.bandwidth_kbps}"
            )

    def transfer_delay_ms(self, size_bytes: int, rng) -> float:
        """Total one-way delay for a payload of *size_bytes*."""
        delay = self.latency.sample(rng)
        if self.bandwidth_kbps > 0:
            delay += (size_bytes * 8) / self.bandwidth_kbps  # kbit/s -> ms
        return delay
