"""A TLS-like secure channel over the datagram fabric.

The paper protects computer↔server and phone↔server traffic with HTTPS
under a self-signed certificate. We reproduce the same guarantees with
a compact Noise-NK-style protocol:

- the server holds a static X25519 key pair; its certificate
  (:class:`repro.net.certificates.Certificate`) carries the public half
  and clients *pin* it (the phone stores the server cert, §V-B);
- the client sends an ephemeral public key (HELLO), the server answers
  with its own ephemeral key and a key-confirmation MAC (ACCEPT);
- both sides derive directional ChaCha20-Poly1305 keys from
  ``HKDF(es || ee)`` where ``es`` mixes in the server's *static* key —
  only the true server can compute it, which is what authenticates the
  server to the client;
- records are sequenced, AEAD-protected, and carry request/response
  correlation so HTTP exchanges map 1:1 onto records.

Passive taps on the fabric observe only ciphertext and sizes. The
"broken HTTPS" attack of §IV-A is modelled by exporting a session's
keys to the attacker (:meth:`SecureSession.export_keys`).
"""

from __future__ import annotations

import hmac as _hmac
import hashlib
import itertools
import struct
from typing import Callable, Dict, Optional

from repro.crypto.aead import aead_encrypt, aead_decrypt
from repro.crypto.hkdf import hkdf
from repro.crypto.randomness import RandomSource, SystemRandomSource
from repro.crypto.x25519 import x25519, x25519_base, generate_keypair
from repro.net.certificates import Certificate, CertificateStore
from repro.net.message import Datagram
from repro.net.network import Host, Network
from repro.util.errors import CryptoError, NetworkError, ProtocolError, ValidationError

SECURE_PORT = 443

_TYPE_HELLO = 1
_TYPE_ACCEPT = 2
_TYPE_REJECT = 3
_TYPE_DATA = 4

_DIR_CLIENT_TO_SERVER = 0
_DIR_SERVER_TO_CLIENT = 1

_CHANNEL_ID_SIZE = 16
_KEY_SIZE = 32
_HKDF_INFO = b"repro-secure-channel-v1"


def _derive_keys(channel_id: bytes, es: bytes, ee: bytes) -> tuple[bytes, bytes]:
    """Derive (client->server, server->client) record keys."""
    okm = hkdf(ikm=es + ee, salt=channel_id, info=_HKDF_INFO, length=64)
    return okm[:32], okm[32:]


def _confirmation(key_s2c: bytes, channel_id: bytes) -> bytes:
    """Server key-confirmation MAC carried in ACCEPT."""
    return _hmac.new(key_s2c, b"confirm|" + channel_id, hashlib.sha256).digest()


def _record_nonce(direction: int, seq: int) -> bytes:
    return struct.pack(">IQ", direction, seq)


class SecureSession:
    """Keys and sequencing state shared by both ends of a channel."""

    def __init__(
        self,
        channel_id: bytes,
        key_c2s: bytes,
        key_s2c: bytes,
        peer: str,
        service: str,
    ) -> None:
        self.channel_id = channel_id
        self.key_c2s = key_c2s
        self.key_s2c = key_s2c
        self.peer = peer
        self.service = service
        self._processed: Dict[int, bytes] = {}  # request seq -> cached response

    def export_keys(self) -> tuple[bytes, bytes]:
        """Expose record keys — used only by attack simulations that model
        a compromised endpoint or broken TLS (§IV-A)."""
        return self.key_c2s, self.key_s2c

    def seal(self, direction: int, seq: int, in_reply_to: int, payload: bytes) -> bytes:
        key = self.key_c2s if direction == _DIR_CLIENT_TO_SERVER else self.key_s2c
        header = struct.pack(
            ">B16sBQQ", _TYPE_DATA, self.channel_id, direction, seq, in_reply_to
        )
        sealed = aead_encrypt(key, _record_nonce(direction, seq), payload, aad=header)
        return header + sealed

    def open(self, direction: int, seq: int, in_reply_to: int, sealed: bytes) -> bytes:
        key = self.key_c2s if direction == _DIR_CLIENT_TO_SERVER else self.key_s2c
        header = struct.pack(
            ">B16sBQQ", _TYPE_DATA, self.channel_id, direction, seq, in_reply_to
        )
        return aead_decrypt(key, _record_nonce(direction, seq), sealed, aad=header)


# Handler invoked by the server stack: (session, request_seq, plaintext).
ServiceHandler = Callable[[SecureSession, int, bytes], None]


class SecureServer:
    """The server side: a static identity key plus registered services."""

    def __init__(
        self,
        identity: str,
        rng: RandomSource | None = None,
        static_private: bytes | None = None,
    ) -> None:
        self.identity = identity
        self._rng = rng if rng is not None else SystemRandomSource()
        if static_private is not None:
            # A persisted identity key (so the self-signed certificate —
            # and therefore client pins — survive server restarts).
            self.static_private = static_private
            self.static_public = x25519_base(static_private)
        else:
            self.static_private, self.static_public = generate_keypair(self._rng)
        self.certificate = Certificate(identity=identity, public_key=self.static_public)
        self._services: Dict[str, ServiceHandler] = {}
        self.sessions: Dict[bytes, SecureSession] = {}

    def register_service(self, name: str, handler: ServiceHandler) -> None:
        if name in self._services:
            raise ValidationError(f"service {name!r} already registered")
        self._services[name] = handler

    def service(self, name: str) -> Optional[ServiceHandler]:
        return self._services.get(name)

    def accept(
        self, channel_id: bytes, service: str, client_ephemeral_pub: bytes
    ) -> tuple[SecureSession, bytes, bytes]:
        """Process a HELLO; returns (session, server_eph_pub, confirmation)."""
        if service not in self._services:
            raise ProtocolError(f"unknown service {service!r}")
        eph_private, eph_public = generate_keypair(self._rng)
        es = x25519(self.static_private, client_ephemeral_pub)
        ee = x25519(eph_private, client_ephemeral_pub)
        key_c2s, key_s2c = _derive_keys(channel_id, es, ee)
        session = SecureSession(channel_id, key_c2s, key_s2c, peer="", service=service)
        self.sessions[channel_id] = session
        return session, eph_public, _confirmation(key_s2c, channel_id)


class _PendingRequest:
    def __init__(self, payload: bytes, on_response, on_error) -> None:
        self.payload = payload
        self.on_response = on_response
        self.on_error = on_error
        self.timer = None
        self.attempts = 0


class SecureClientChannel:
    """The client end of one established (or establishing) channel."""

    def __init__(
        self,
        stack: "SecureStack",
        server_host: str,
        certificate: Certificate,
        service: str,
        rng: RandomSource,
    ) -> None:
        self.stack = stack
        self.server_host = server_host
        self.certificate = certificate
        self.service = service
        self.channel_id = rng.token_bytes(_CHANNEL_ID_SIZE)
        self._eph_private, self._eph_public = generate_keypair(rng)
        self.session: Optional[SecureSession] = None
        self._seq = itertools.count(1)
        self._pending: Dict[int, _PendingRequest] = {}
        self._queued: list[tuple[int, _PendingRequest]] = []
        self._hello_timer = None
        self._hello_attempts = 0
        self._on_ready: list[Callable[[], None]] = []
        self._failed = False

    # -- handshake -----------------------------------------------------------

    def start(self, on_ready: Callable[[], None] | None = None) -> None:
        if on_ready is not None:
            self._on_ready.append(on_ready)
        self._send_hello()

    def _send_hello(self) -> None:
        hello = struct.pack(
            ">B16s32sB", _TYPE_HELLO, self.channel_id, self._eph_public,
            len(self.service.encode("utf-8")),
        ) + self.service.encode("utf-8")
        self.stack.transmit(self.server_host, hello)
        self._hello_attempts += 1
        # Every attempt gets a timer — the last one arms the failure path,
        # so a lost final ACCEPT cannot hang the channel silently.
        self._hello_timer = self.stack.kernel.schedule(
            self.stack.retry_timeout_ms, self._hello_timeout, "hello-retry"
        )

    def _hello_timeout(self) -> None:
        if self.session is not None or self._failed:
            return
        if self._hello_attempts > self.stack.max_retries:
            self._fail(NetworkError(f"handshake to {self.server_host} timed out"))
            return
        self._send_hello()

    def handle_accept(self, server_eph_pub: bytes, confirmation: bytes) -> None:
        if self.session is not None:
            return  # duplicate ACCEPT from a retransmitted HELLO
        es = x25519(self._eph_private, self.certificate.public_key)
        ee = x25519(self._eph_private, server_eph_pub)
        key_c2s, key_s2c = _derive_keys(self.channel_id, es, ee)
        if not _hmac.compare_digest(
            confirmation, _confirmation(key_s2c, self.channel_id)
        ):
            # Whoever answered does not hold the pinned static key.
            self._fail(CryptoError("server key confirmation failed"))
            return
        if self._hello_timer is not None:
            self._hello_timer.cancel()
        self.session = SecureSession(
            self.channel_id, key_c2s, key_s2c,
            peer=self.server_host, service=self.service,
        )
        for seq, pending in self._queued:
            self._pending[seq] = pending
            self._transmit_request(seq, pending)
        self._queued.clear()
        callbacks, self._on_ready = self._on_ready, []
        for callback in callbacks:
            callback()

    def handle_reject(self, reason: str) -> None:
        self._fail(ProtocolError(f"server rejected channel: {reason}"))

    @property
    def failed(self) -> bool:
        """True once the channel gave up (handshake timeout, bad key
        confirmation, REJECT). Failed channels never recover; owners
        open a fresh channel instead."""
        return self._failed

    def _fail(self, error: Exception) -> None:
        if self._failed:
            return
        self._failed = True
        for __, pending in self._queued:
            pending.on_error(error)
        self._queued.clear()
        for pending in list(self._pending.values()):
            if pending.timer is not None:
                pending.timer.cancel()
            pending.on_error(error)
        self._pending.clear()

    # -- requests ------------------------------------------------------------

    def request(
        self,
        payload: bytes,
        on_response: Callable[[bytes], None],
        on_error: Callable[[Exception], None] | None = None,
    ) -> int:
        """Send *payload* once the channel is ready; returns the sequence id."""
        if self._failed:
            raise NetworkError("channel already failed")
        seq = next(self._seq)
        pending = _PendingRequest(
            payload, on_response, on_error if on_error is not None else (lambda e: None)
        )
        if self.session is None:
            self._queued.append((seq, pending))
        else:
            self._pending[seq] = pending
            self._transmit_request(seq, pending)
        return seq

    def _transmit_request(self, seq: int, pending: _PendingRequest) -> None:
        assert self.session is not None
        record = self.session.seal(_DIR_CLIENT_TO_SERVER, seq, 0, pending.payload)
        self.stack.transmit(self.server_host, record)
        pending.attempts += 1
        if pending.attempts <= self.stack.max_retries:
            pending.timer = self.stack.kernel.schedule(
                self.stack.retry_timeout_ms,
                lambda: self._request_timeout(seq),
                "request-retry",
            )
        else:
            pending.timer = self.stack.kernel.schedule(
                self.stack.retry_timeout_ms,
                lambda: self._request_abort(seq),
                "request-abort",
            )

    def _request_timeout(self, seq: int) -> None:
        pending = self._pending.get(seq)
        if pending is None:
            return
        self._transmit_request(seq, pending)

    def _request_abort(self, seq: int) -> None:
        pending = self._pending.pop(seq, None)
        if pending is None:
            return
        pending.on_error(NetworkError(f"request {seq} to {self.server_host} timed out"))

    def handle_response(self, seq: int, in_reply_to: int, sealed: bytes) -> None:
        if self.session is None:
            return
        pending = self._pending.pop(in_reply_to, None)
        if pending is None:
            return  # duplicate response
        if pending.timer is not None:
            pending.timer.cancel()
        try:
            plaintext = self.session.open(_DIR_SERVER_TO_CLIENT, seq, in_reply_to, sealed)
        except CryptoError as error:
            pending.on_error(error)
            return
        pending.on_response(plaintext)


class SecureStack:
    """Per-host endpoint multiplexing secure channels over one port.

    A stack can act as a client (outbound channels) and, when a
    :class:`SecureServer` is attached, as a server. Channel routing is
    by channel id, so one port carries any number of conversations.
    """

    def __init__(
        self,
        host: Host,
        network: Network,
        rng: RandomSource | None = None,
        port: int = SECURE_PORT,
        retry_timeout_ms: float = 2_000.0,
        max_retries: int = 5,
    ) -> None:
        self.host = host
        self.network = network
        self.kernel = network.kernel
        self.port = port
        self.retry_timeout_ms = retry_timeout_ms
        self.max_retries = max_retries
        self._rng = rng if rng is not None else SystemRandomSource()
        self.server: Optional[SecureServer] = None
        self._client_channels: Dict[bytes, SecureClientChannel] = {}
        self._server_seq = itertools.count(1)
        self._accept_cache: Dict[bytes, bytes] = {}  # channel_id -> ACCEPT record
        host.bind(port, self._on_datagram)

    def attach_server(self, server: SecureServer) -> None:
        if self.server is not None:
            raise ValidationError("stack already has a server attached")
        self.server = server

    def transmit(self, dst: str, payload: bytes) -> None:
        self.network.send(self.host.name, dst, self.port, payload)

    # -- client API ----------------------------------------------------------

    def connect(
        self,
        server_host: str,
        certificate: Certificate,
        service: str,
        pins: CertificateStore | None = None,
        on_ready: Callable[[], None] | None = None,
    ) -> SecureClientChannel:
        """Open a channel to *service* at *server_host*.

        If *pins* is given, the certificate must match the pinned one —
        this is how the phone app enforces its stored server cert.
        """
        if pins is not None and not pins.trusted(certificate):
            raise CryptoError(
                f"certificate for {certificate.identity!r} does not match pin"
            )
        channel = SecureClientChannel(self, server_host, certificate, service, self._rng)
        self._client_channels[channel.channel_id] = channel
        channel.start(on_ready)
        return channel

    # -- server side ---------------------------------------------------------

    def respond(self, session: SecureSession, request_seq: int, payload: bytes) -> None:
        """Send a response record on *session* for request *request_seq*."""
        seq = next(self._server_seq)
        record = session.seal(_DIR_SERVER_TO_CLIENT, seq, request_seq, payload)
        session._processed[request_seq] = record
        self.transmit(session.peer, record)

    # -- wire handling -------------------------------------------------------

    def _on_datagram(self, datagram: Datagram) -> None:
        payload = datagram.payload
        if not payload:
            return
        kind = payload[0]
        try:
            if kind == _TYPE_HELLO:
                self._handle_hello(datagram)
            elif kind == _TYPE_ACCEPT:
                self._handle_accept(payload)
            elif kind == _TYPE_REJECT:
                self._handle_reject(payload)
            elif kind == _TYPE_DATA:
                self._handle_data(datagram)
            # unknown types are dropped silently, like junk on a real port
        except (ProtocolError, CryptoError, struct.error):
            # Malformed or forged traffic must never crash the endpoint.
            return

    def _handle_hello(self, datagram: Datagram) -> None:
        if self.server is None:
            return
        payload = datagram.payload
        header_size = struct.calcsize(">B16s32sB")
        if len(payload) < header_size:
            raise ProtocolError("short HELLO")
        __, channel_id, client_eph, name_len = struct.unpack(
            ">B16s32sB", payload[:header_size]
        )
        service = payload[header_size : header_size + name_len].decode("utf-8")
        existing = self.server.sessions.get(channel_id)
        if existing is not None:
            # Retransmitted HELLO: the previous ACCEPT may have been lost,
            # so resend it (deriving fresh keys here would desynchronise).
            cached = self._accept_cache.get(channel_id)
            if cached is not None:
                self.transmit(datagram.src, cached)
            return
        try:
            session, server_eph, confirm = self.server.accept(
                channel_id, service, client_eph
            )
        except ProtocolError as error:
            reject = struct.pack(">B16s", _TYPE_REJECT, channel_id) + str(
                error
            ).encode("utf-8")
            self.transmit(datagram.src, reject)
            return
        session.peer = datagram.src
        accept = struct.pack(
            ">B16s32s32s", _TYPE_ACCEPT, channel_id, server_eph, confirm
        )
        self._accept_cache[channel_id] = accept
        self.transmit(datagram.src, accept)

    def _handle_accept(self, payload: bytes) -> None:
        size = struct.calcsize(">B16s32s32s")
        if len(payload) < size:
            raise ProtocolError("short ACCEPT")
        __, channel_id, server_eph, confirm = struct.unpack(">B16s32s32s", payload[:size])
        channel = self._client_channels.get(channel_id)
        if channel is not None:
            channel.handle_accept(server_eph, confirm)

    def _handle_reject(self, payload: bytes) -> None:
        size = struct.calcsize(">B16s")
        __, channel_id = struct.unpack(">B16s", payload[:size])
        reason = payload[size:].decode("utf-8", errors="replace")
        channel = self._client_channels.get(channel_id)
        if channel is not None:
            channel.handle_reject(reason)

    def _handle_data(self, datagram: Datagram) -> None:
        payload = datagram.payload
        header_size = struct.calcsize(">B16sBQQ")
        if len(payload) < header_size:
            raise ProtocolError("short DATA record")
        __, channel_id, direction, seq, in_reply_to = struct.unpack(
            ">B16sBQQ", payload[:header_size]
        )
        sealed = payload[header_size:]
        if direction == _DIR_SERVER_TO_CLIENT:
            channel = self._client_channels.get(channel_id)
            if channel is not None:
                channel.handle_response(seq, in_reply_to, sealed)
            return
        if self.server is None:
            return
        session = self.server.sessions.get(channel_id)
        if session is None:
            return
        if seq in session._processed:
            cached = session._processed[seq]
            if cached is not None:
                # Already answered: resend the response.
                self.transmit(session.peer, cached)
            # None = still being handled (e.g. a deferred response):
            # drop the duplicate rather than re-executing the handler.
            return
        plaintext = session.open(_DIR_CLIENT_TO_SERVER, seq, in_reply_to, sealed)
        handler = self.server.service(session.service)
        if handler is not None:
            session._processed[seq] = None  # mark in flight
            handler(session, seq, plaintext)


# Re-export a client-facing alias used by the package __init__.
SecureClient = SecureClientChannel
