"""Self-signed certificates and pin stores.

The paper's prototype protects traffic with a *self-signed* HTTPS
certificate that the phone app stores (§V-B). We model the same trust
shape: a certificate binds an identity string to a static X25519 public
key, and verifiers *pin* certificates they have decided to trust. There
is no CA hierarchy — exactly like the prototype.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.crypto.hashing import sha256
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class Certificate:
    """Binds *identity* (a hostname) to a static public key."""

    identity: str
    public_key: bytes

    def __post_init__(self) -> None:
        if len(self.public_key) != 32:
            raise ValidationError(
                f"certificate public key must be 32 bytes, got {len(self.public_key)}"
            )

    def fingerprint(self) -> str:
        """SHA-256 fingerprint over identity and key (pinning handle)."""
        return sha256(self.identity.encode("utf-8"), self.public_key).hex()


class CertificateStore:
    """A pin store: identity -> trusted certificate."""

    def __init__(self) -> None:
        self._pins: Dict[str, Certificate] = {}

    def pin(self, certificate: Certificate) -> None:
        """Trust *certificate* for its identity (overwrites any prior pin)."""
        self._pins[certificate.identity] = certificate

    def unpin(self, identity: str) -> None:
        self._pins.pop(identity, None)

    def trusted(self, certificate: Certificate) -> bool:
        """True iff *certificate* matches the pin for its identity."""
        pinned = self._pins.get(certificate.identity)
        return pinned is not None and pinned.fingerprint() == certificate.fingerprint()

    def certificate_for(self, identity: str) -> Certificate | None:
        return self._pins.get(identity)

    def __len__(self) -> int:
        return len(self._pins)
