"""The fleet health surface: ``/healthz`` and ``/statusz`` for every tier.

The scaling PRs the ROADMAP plans ("millions of users, as fast as the
hardware allows") need one uniform way to ask *any* component — server,
phone app, rendezvous service — whether it is alive (``/healthz``) and
what state it is in (``/statusz``: uptime, pending-exchange depth,
retry/fault counters, degraded-mode flags). This module owns the
payload shapes so the three tiers cannot drift apart:

- :func:`healthz_payload` — the tiny liveness document: ``ok``,
  component name, current clock reading, uptime.
- :func:`statusz_payload` — the liveness document plus a
  component-supplied ``detail`` mapping and a ``degraded`` flag.
- :func:`install_health_routes` — registers both routes on an existing
  :class:`~repro.web.app.Application` (the Amnesia server's app).
- :func:`make_status_application` — builds a minimal Application for
  components that are not otherwise HTTP servers (the phone app, the
  rendezvous service); with a registry it also serves ``/metricsz``,
  making the trio of endpoints uniform across the fleet.

``detail`` values must be JSON-serialisable; the builders never invent
fields, so what a component reports is exactly what its ``status_fn``
returns. :func:`counter_total` is the helper status functions use to
fold a labelled counter family (e.g. retry attempts across ops) into
one number.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.util.errors import ValidationError
from repro.web.app import Application, json_response
from repro.web.http import HttpRequest, HttpResponse

HEALTH_SCHEMA = "amnesia-health/1"
BUILD_SCHEMA = "amnesia-build/1"

StatusFn = Callable[[], Dict[str, Any]]


def install_node_info(
    registry,
    node: str,
    component: str,
    clock,
    started_fn: Callable[[], float],
    version: str | None = None,
) -> None:
    """Register this node's ``amnesia_build_info`` (constant 1, identity
    in the labels) and a lazily-read ``amnesia_node_uptime_seconds``
    gauge on *registry*.

    The uptime gauge reads ``started_fn()`` at collection time, so a
    service that resets its start mark on restart (the rendezvous does)
    shows an uptime drop — the signal the telemetry scraper uses to
    detect restarts and treat counter resets correctly. *node* is the
    host name; the registries are shared per deployment, so the labels
    are what keep the fleet's nodes apart.
    """
    if registry is None:
        return
    if version is None:
        import repro

        version = getattr(repro, "__version__", "0")
    registry.gauge(
        "amnesia_build_info",
        "Constant 1; build identity in the labels",
        label_names=("node", "component", "schema", "version"),
    ).labels(
        node=node, component=component, schema=BUILD_SCHEMA, version=version
    ).set(1.0)
    registry.gauge(
        "amnesia_node_uptime_seconds",
        "Seconds of virtual time since this node (re)started",
        label_names=("node",),
    ).labels(node=node).set_function(
        lambda: max(0.0, clock.now - started_fn()) / 1000.0
    )


def counter_total(registry, name: str) -> float:
    """Sum a counter/gauge family across all of its label sets (0 if absent)."""
    if registry is None:
        return 0.0
    family = registry.get(name)
    if family is None:
        return 0.0
    return float(sum(child.value for __, child in family.samples()))


def healthz_payload(
    component: str, now_ms: float, started_ms: float, ok: bool = True
) -> Dict[str, Any]:
    """The liveness document served at ``/healthz``."""
    if not component:
        raise ValidationError("component name must be non-empty")
    return {
        "schema": HEALTH_SCHEMA,
        "component": component,
        "ok": bool(ok),
        "now_ms": now_ms,
        "uptime_ms": max(0.0, now_ms - started_ms),
    }


def statusz_payload(
    component: str,
    now_ms: float,
    started_ms: float,
    detail: Dict[str, Any],
    degraded: bool = False,
    ok: bool = True,
) -> Dict[str, Any]:
    """The full status document served at ``/statusz``."""
    payload = healthz_payload(component, now_ms, started_ms, ok=ok)
    payload["degraded"] = bool(degraded)
    payload["detail"] = dict(detail)
    return payload


class HealthEndpoints:
    """Shared handler pair bound to one component's clock and status."""

    def __init__(
        self,
        component: str,
        clock,
        status_fn: StatusFn,
        started_ms: Optional[float] = None,
    ) -> None:
        if not component:
            raise ValidationError("component name must be non-empty")
        self.component = component
        self._clock = clock
        self._status_fn = status_fn
        self.started_ms = clock.now if started_ms is None else started_ms

    def _status(self) -> Dict[str, Any]:
        detail = dict(self._status_fn())
        degraded = bool(detail.pop("degraded", False))
        ok = bool(detail.pop("ok", True))
        return statusz_payload(
            self.component,
            self._clock.now,
            self.started_ms,
            detail,
            degraded=degraded,
            ok=ok,
        )

    def healthz(self, request: HttpRequest) -> HttpResponse:
        status = self._status()
        payload = healthz_payload(
            self.component, self._clock.now, self.started_ms, ok=status["ok"]
        )
        return json_response(payload, status=200 if status["ok"] else 503)

    def statusz(self, request: HttpRequest) -> HttpResponse:
        status = self._status()
        return json_response(status, status=200 if status["ok"] else 503)


def install_health_routes(
    app: Application,
    component: str,
    clock,
    status_fn: StatusFn,
    started_ms: Optional[float] = None,
) -> HealthEndpoints:
    """Register ``GET /healthz`` and ``GET /statusz`` on *app*."""
    endpoints = HealthEndpoints(component, clock, status_fn, started_ms)
    app.router.add("GET", "/healthz", endpoints.healthz)
    app.router.add("GET", "/statusz", endpoints.statusz)
    return endpoints


def make_status_application(
    component: str,
    clock,
    status_fn: StatusFn,
    registry=None,
    started_ms: Optional[float] = None,
) -> Application:
    """A minimal Application exposing the health trio for non-HTTP tiers.

    The phone app and the rendezvous service are datagram services, not
    web servers; this gives each one an in-process HTTP surface whose
    ``handle()`` answers ``/healthz`` + ``/statusz`` (and ``/metricsz``
    when a registry is supplied), so fleet tooling can scrape every tier
    through one code path.
    """
    app = Application(f"{component}-status")
    install_health_routes(app, component, clock, status_fn, started_ms)
    if registry is not None:
        app.bind_observability(registry, clock)
    return app
