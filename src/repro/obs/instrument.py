"""Adapters binding existing subsystems to a metrics registry.

These keep the instrumented layers dependency-light: the simulation
kernel and the network fabric expose small observer hooks, and this
module translates those hooks into registry metrics. Deployments call
one ``attach_*`` function per subsystem (the testbed does so for the
whole Figure 1 topology).
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry

# Wall time per simulated event is microseconds-scale; buckets in µs.
KERNEL_WALL_US_BUCKETS = (
    5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 50000.0,
)


def _label_prefix(label: str) -> str:
    """Normalise an event label to its leading token (bounded cardinality)."""
    if not label:
        return "unlabeled"
    return label.split(" ", 1)[0]


def attach_kernel_stats(kernel, registry: MetricsRegistry) -> None:
    """Event-loop stats: events processed, queue depth, per-label timing."""
    events = registry.counter(
        "amnesia_sim_events_total",
        "Simulation events executed, by label prefix",
        label_names=("label",),
    )
    wall = registry.histogram(
        "amnesia_sim_event_wall_us",
        "Wall-clock microseconds spent executing one simulation event",
        label_names=("label",),
        buckets=KERNEL_WALL_US_BUCKETS,
    )
    depth = registry.gauge(
        "amnesia_sim_queue_depth",
        "Simulation events currently queued (cancelled included)",
    )
    depth.set_function(lambda: float(kernel.pending_events))
    registry.gauge(
        "amnesia_sim_now_ms", "Current virtual time in milliseconds"
    ).set_function(lambda: float(kernel.now))

    def observe(label: str, wall_us: float, queue_depth: int) -> None:
        prefix = _label_prefix(label)
        events.labels(label=prefix).inc()
        wall.labels(label=prefix).observe(wall_us)

    kernel.add_observer(observe)


def attach_network_stats(network, registry: MetricsRegistry) -> None:
    """Per-link datagram/byte/drop counters via the fabric's own hooks."""
    network.bind_registry(registry)


def attach_pool_stats(
    pool, registry: MetricsRegistry, service: str = "https"
) -> None:
    """Thread-pool saturation gauges for one HTTP server binding."""
    registry.gauge(
        "amnesia_http_pool_busy",
        "HTTP worker threads currently busy",
        label_names=("service",),
    ).labels(service=service).set_function(lambda: float(pool.busy))
    registry.gauge(
        "amnesia_http_pool_queue_depth",
        "Requests waiting for a free HTTP worker thread",
        label_names=("service",),
    ).labels(service=service).set_function(lambda: float(pool.queue_depth))


def attach_dispatch_stats(
    dispatch, registry: MetricsRegistry, service: str = "https"
) -> None:
    """Batched-dispatch saturation metrics for one HTTP server binding.

    Makes the admission layer visible to the fleet scraper: live queue
    depth and busy workers as gauges, plus a monotonic shed counter fed
    by the core's shed-observer hook (depth refusals and age drops both
    count). Before this, peak-busy/peak-queue existed only as fields on
    the workload result — invisible to the dashboard and SLOs."""
    registry.gauge(
        "amnesia_dispatch_queue_depth",
        "Requests waiting in the batched-dispatch admission queue",
        label_names=("service",),
    ).labels(service=service).set_function(lambda: float(dispatch.queue_depth))
    registry.gauge(
        "amnesia_dispatch_busy",
        "Worker threads currently busy behind the dispatch core",
        label_names=("service",),
    ).labels(service=service).set_function(lambda: float(dispatch.busy))
    shed = registry.counter(
        "amnesia_dispatch_shed_total",
        "Requests shed (429) by the dispatch core, by depth or age",
        label_names=("service",),
    ).labels(service=service)
    dispatch.add_shed_observer(shed.inc)
    batches = registry.counter(
        "amnesia_dispatch_batches_total",
        "Drain ticks that started at least one queued request",
        label_names=("service",),
    ).labels(service=service)
    batch_jobs = registry.counter(
        "amnesia_dispatch_batch_jobs_total",
        "Requests started by dispatch drain ticks",
        label_names=("service",),
    ).labels(service=service)

    def on_drain(started: int) -> None:
        batches.inc()
        batch_jobs.inc(started)

    dispatch.add_drain_observer(on_drain)
    registry.gauge(
        "amnesia_dispatch_last_batch_size",
        "Requests started by the most recent drain tick",
        label_names=("service",),
    ).labels(service=service).set_function(
        lambda: float(dispatch.last_batch_size)
    )


def attach_rendezvous_stats(service, registry: MetricsRegistry) -> None:
    """Push/forward counters for the rendezvous (GCM) service."""
    from repro.obs.health import install_node_info

    install_node_info(
        registry,
        service.host.name,
        "rendezvous",
        service.network.kernel,
        lambda: service.started_ms,
    )
    registry.gauge(
        "amnesia_rendezvous_registered_devices",
        "Devices currently registered with the rendezvous service",
    ).set_function(lambda: float(len(service.registered_devices())))
    registry.gauge(
        "amnesia_rendezvous_pushes",
        "Pushes accepted by the rendezvous service",
    ).set_function(lambda: float(service.push_count))
    registry.gauge(
        "amnesia_rendezvous_forwards",
        "Deliveries forwarded (including retransmissions) to devices",
    ).set_function(lambda: float(service.forward_count))
