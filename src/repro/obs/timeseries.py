"""A bounded in-memory time-series store for fleet telemetry.

The scraper (:mod:`repro.obs.scrape`) feeds parsed ``/metricsz``
exposition into this store; the SLO evaluator and dashboard query it.
One :class:`Series` is a ring buffer of ``(t_ms, value)`` points keyed
by ``(node, sample_name, sorted-labels)`` — *node* is the scrape
target, because every deployment shares one registry and the labels
alone cannot tell the fleet's nodes apart.

Query semantics follow the Prometheus trio:

- **gauge-last**: :meth:`TimeSeriesStore.latest` — the newest point;
- **counter-rate**: :meth:`~TimeSeriesStore.increase` /
  :meth:`~TimeSeriesStore.rate_per_s` — sum of positive deltas over a
  window, *reset-aware*: a sample smaller than its predecessor means
  the process restarted and the new value is counted as the increase
  since the reset (the scraper corroborates via the node's uptime);
- **histogram-delta**: :meth:`~TimeSeriesStore.histogram_percentile` —
  per-``le`` bucket increases over the window, aggregated and inverted
  into a percentile by linear interpolation.

Everything is deterministic: no wall clock, no randomness — timestamps
come from the simulation kernel via the scraper.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.util.errors import ValidationError

#: Ring depth per series. At the default 500 ms scrape cadence this
#: retains two minutes of simulated history — plenty for burn-rate
#: windows and dashboard sparklines while keeping memory bounded.
DEFAULT_MAX_POINTS = 240

#: Hard cap on distinct series; beyond it new series are dropped (and
#: counted) instead of growing without bound.
DEFAULT_MAX_SERIES = 8192

LabelItems = Tuple[Tuple[str, str], ...]
SeriesKey = Tuple[str, str, LabelItems]

LabelPredicate = Callable[[Dict[str, str]], bool]


def _label_key(labels: Optional[Dict[str, str]]) -> LabelItems:
    return tuple(sorted((labels or {}).items()))


class Series:
    """One ring buffer of timestamped samples."""

    __slots__ = ("kind", "_points")

    def __init__(self, kind: str, max_points: int) -> None:
        self.kind = kind
        self._points: deque[Tuple[float, float]] = deque(maxlen=max_points)

    def __len__(self) -> int:
        return len(self._points)

    def add(self, t_ms: float, value: float) -> None:
        if self._points and t_ms < self._points[-1][0]:
            raise ValidationError(
                f"series time went backwards: {t_ms} < {self._points[-1][0]}"
            )
        self._points.append((t_ms, value))

    def points(self) -> List[Tuple[float, float]]:
        return list(self._points)

    def latest(self) -> Optional[Tuple[float, float]]:
        return self._points[-1] if self._points else None

    def latest_at(self, now_ms: float) -> Optional[Tuple[float, float]]:
        """The newest point at or before *now_ms* (dashboard time-travel)."""
        found = None
        for point in self._points:
            if point[0] > now_ms:
                break
            found = point
        return found

    def increase(self, window_ms: float, now_ms: float) -> float:
        """Counter increase over ``(now - window, now]``, reset-aware.

        Prometheus semantics: a drop between consecutive samples is a
        counter reset (process restart) and the post-reset sample
        contributes its full value as the increase since the reset.
        The sample just *before* the window anchors the first delta, so
        a counter that only moved once inside the window still counts.
        """
        if window_ms <= 0:
            raise ValidationError(f"window_ms must be > 0, got {window_ms}")
        start = now_ms - window_ms
        previous: Optional[float] = None
        total = 0.0
        for t_ms, value in self._points:
            if t_ms > now_ms:
                break
            if t_ms <= start:
                previous = value  # anchor: newest sample at/before start
                continue
            if previous is not None:
                delta = value - previous
                total += delta if delta >= 0 else value
            previous = value
        return total

    def rate_per_s(self, window_ms: float, now_ms: float) -> float:
        return self.increase(window_ms, now_ms) / (window_ms / 1000.0)


class TimeSeriesStore:
    """Bounded store of scraped series, keyed by node + sample + labels."""

    def __init__(
        self,
        max_points: int = DEFAULT_MAX_POINTS,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        if max_points < 2:
            raise ValidationError("a series needs at least 2 points for rates")
        if max_series < 1:
            raise ValidationError("max_series must be >= 1")
        self.max_points = max_points
        self.max_series = max_series
        self._series: Dict[SeriesKey, Series] = {}
        self._last_scrape_ms: Dict[str, float] = {}
        self.dropped_series = 0
        self.ingested_samples = 0

    # -- ingest -----------------------------------------------------------

    def observe(
        self,
        node: str,
        name: str,
        labels: Optional[Dict[str, str]],
        kind: str,
        t_ms: float,
        value: float,
    ) -> None:
        """Append one sample (creating the series on first sight)."""
        key = (node, name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self.max_series:
                self.dropped_series += 1
                return
            series = Series(kind, self.max_points)
            self._series[key] = series
        series.add(t_ms, value)
        self.ingested_samples += 1

    def ingest(
        self, node: str, families: Dict[str, Dict], t_ms: float
    ) -> int:
        """Feed one parsed ``/metricsz`` document (the output of
        :func:`repro.obs.export.parse_prometheus`) scraped from *node*
        at *t_ms*. Returns the number of samples stored and marks the
        scrape as successful for staleness accounting."""
        stored = 0
        for family in families.values():
            kind = family.get("kind", "untyped")
            for sample_name, labels, value in family.get("samples", []):
                self.observe(node, sample_name, labels, kind, t_ms, value)
                stored += 1
        self.mark_scrape(node, t_ms)
        return stored

    def mark_scrape(self, node: str, t_ms: float) -> None:
        self._last_scrape_ms[node] = t_ms

    # -- staleness --------------------------------------------------------

    def last_scrape_ms(self, node: str) -> Optional[float]:
        return self._last_scrape_ms.get(node)

    def stale(self, node: str, now_ms: float, stale_after_ms: float) -> bool:
        """True when *node* has not been scraped successfully within
        *stale_after_ms* — the telemetry-plane view of a crashed or
        partitioned node (scrapes fail silently; series go stale)."""
        last = self._last_scrape_ms.get(node)
        return last is None or (now_ms - last) > stale_after_ms

    def nodes(self) -> List[str]:
        return sorted(self._last_scrape_ms)

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._series)

    def series(
        self, node: str, name: str
    ) -> List[Tuple[Dict[str, str], Series]]:
        """All series of *name* scraped from *node*, label-sorted."""
        out = []
        for (knode, kname, klabels), series in sorted(self._series.items()):
            if knode == node and kname == name:
                out.append((dict(klabels), series))
        return out

    def get(
        self, node: str, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Optional[Series]:
        return self._series.get((node, name, _label_key(labels)))

    def latest(
        self, node: str, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Optional[float]:
        series = self.get(node, name, labels)
        point = series.latest() if series is not None else None
        return point[1] if point is not None else None

    def increase(
        self,
        node: str,
        name: str,
        window_ms: float,
        now_ms: float,
        labels: Optional[Dict[str, str]] = None,
    ) -> float:
        series = self.get(node, name, labels)
        return series.increase(window_ms, now_ms) if series is not None else 0.0

    def sum_increase(
        self,
        node: str,
        name: str,
        window_ms: float,
        now_ms: float,
        where: Optional[LabelPredicate] = None,
    ) -> float:
        """Counter increase summed across every matching label set."""
        total = 0.0
        for labels, series in self.series(node, name):
            if where is None or where(labels):
                total += series.increase(window_ms, now_ms)
        return total

    def rate_per_s(
        self,
        node: str,
        name: str,
        window_ms: float,
        now_ms: float,
        where: Optional[LabelPredicate] = None,
    ) -> float:
        return self.sum_increase(node, name, window_ms, now_ms, where) / (
            window_ms / 1000.0
        )

    def histogram_percentile(
        self,
        node: str,
        family: str,
        q: float,
        window_ms: float,
        now_ms: float,
        where: Optional[LabelPredicate] = None,
    ) -> Optional[float]:
        """The *q*-th percentile of observations that landed in
        ``family`` during the window, from per-``le`` bucket increases.

        Aggregates across label sets (filtered by *where*, which sees
        the labels *without* ``le``). Returns None when the window saw
        no observations. The +Inf bucket cannot be interpolated; its
        answer clamps to the highest finite bound.
        """
        if not (0.0 <= q <= 100.0):
            raise ValidationError(f"percentile q must be in [0, 100], got {q}")
        deltas: Dict[float, float] = {}
        for labels, series in self.series(node, f"{family}_bucket"):
            le_text = labels.get("le")
            if le_text is None:
                continue
            rest = {k: v for k, v in labels.items() if k != "le"}
            if where is not None and not where(rest):
                continue
            bound = float("inf") if le_text == "+Inf" else float(le_text)
            deltas[bound] = deltas.get(bound, 0.0) + series.increase(
                window_ms, now_ms
            )
        if not deltas:
            return None
        bounds = sorted(deltas)
        # Cumulative-per-le series: each delta is already cumulative in
        # le, so the +Inf (or widest) entry is the window's total count.
        total = deltas[bounds[-1]]
        if total <= 0:
            return None
        rank = (q / 100.0) * total
        previous_bound = 0.0
        previous_cum = 0.0
        highest_finite = max(
            (b for b in bounds if b != float("inf")), default=0.0
        )
        for bound in bounds:
            cum = deltas[bound]
            if cum >= rank and cum > previous_cum:
                if bound == float("inf"):
                    return highest_finite
                fraction = (rank - previous_cum) / (cum - previous_cum)
                return previous_bound + fraction * (bound - previous_bound)
            if cum > previous_cum:
                previous_cum = cum
            if bound != float("inf"):
                previous_bound = bound
        return highest_finite

    # -- dashboard support ------------------------------------------------

    def sample_trail(
        self,
        node: str,
        name: str,
        now_ms: float,
        points: int,
        step_ms: float,
        window_ms: float,
        mode: str = "rate",
        where: Optional[LabelPredicate] = None,
    ) -> List[float]:
        """*points* evenly-spaced historical readings ending at *now_ms*
        (sparkline backing data). ``mode`` is ``"rate"`` (counter rate
        per second over *window_ms*), ``"p95"`` (histogram p95), or
        ``"last"`` (newest gauge reading at or before each point,
        summed across matching label sets — queue depths, busy counts)."""
        if points < 1 or step_ms <= 0:
            raise ValidationError("need points >= 1 and step_ms > 0")
        trail: List[float] = []
        for index in range(points):
            t = now_ms - (points - 1 - index) * step_ms
            if t < 0:
                trail.append(0.0)
                continue
            if mode == "rate":
                trail.append(
                    self.rate_per_s(node, name, window_ms, t, where=where)
                )
            elif mode == "p95":
                value = self.histogram_percentile(
                    node, name, 95.0, window_ms, t, where=where
                )
                trail.append(value if value is not None else 0.0)
            elif mode == "last":
                total = 0.0
                for labels, series in self.series(node, name):
                    if where is not None and not where(labels):
                        continue
                    point = series.latest_at(t)
                    if point is not None:
                        total += point[1]
                trail.append(total)
            else:
                raise ValidationError(f"unknown trail mode {mode!r}")
        return trail
