"""The monitor-host trace store: assembly, tail sampling, critical path.

Spans scraped from every node's ``/spansz`` land here, keyed by trace
id. A trace is *decided* once it has been quiet for ``quiesce_ms`` of
sim time (no new spans arrived — the fleet analogue of "the exchange
is over"): the store assembles the span tree, flags it ``incomplete``
when structure is missing (no root, or an unresolved parent id — the
signature of a node that crashed mid-exchange and never exported its
open spans), and then applies **tail-based sampling**:

- error traces (any span with ``status == "error"``) are always kept;
- slow traces (root duration ≥ ``slow_ms``) are always kept;
- incomplete traces are always kept (they are the interesting ones);
- everything else survives with probability ``keep_pct``/100, decided
  deterministically from the trace id — the same seed keeps the same
  traces.

Critical-path extraction walks the tree backward from the root's end,
repeatedly descending into the child whose (clamped) interval ends
latest — ties prefer the longer-covering child, then the smaller span
id, so the path is deterministic. Each step yields *exclusive* time
(the span's window minus its chosen children), which means the path's
total can never exceed the root span's duration. Per-edge aggregation
over many traces answers "which hop dominates the fleet's tail?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.tracing import TraceSpan, trace_id_for
from repro.util.errors import ValidationError

DEFAULT_QUIESCE_MS = 5_000.0
DEFAULT_KEEP_PCT = 25
DEFAULT_SLOW_MS = 1_000.0
DEFAULT_MAX_TRACES = 256

KEEP_ERROR = "error"
KEEP_SLOW = "slow"
KEEP_INCOMPLETE = "incomplete"
KEEP_SAMPLED = "sampled"


@dataclass
class TraceTree:
    """One assembled trace: spans, parent/child links, quality flags."""

    trace_id: str
    spans: List[TraceSpan]
    incomplete: bool = False
    keep_reason: str = ""
    children: Dict[str, List[TraceSpan]] = field(default_factory=dict)
    root: Optional[TraceSpan] = None

    @classmethod
    def assemble(cls, trace_id: str, spans: List[TraceSpan]) -> "TraceTree":
        """Build the tree; structural gaps flag ``incomplete``."""
        ordered = sorted(spans, key=lambda s: (s.start_ms, s.end_ms, s.span_id))
        by_id = {span.span_id: span for span in ordered}
        children: Dict[str, List[TraceSpan]] = {}
        roots: List[TraceSpan] = []
        unresolved = False
        for span in ordered:
            if span.parent_id is None:
                roots.append(span)
            elif span.parent_id in by_id:
                children.setdefault(span.parent_id, []).append(span)
            else:
                unresolved = True  # parent crashed before exporting
        incomplete = unresolved or len(roots) != 1
        return cls(
            trace_id=trace_id,
            spans=ordered,
            incomplete=incomplete,
            children=children,
            root=roots[0] if len(roots) == 1 else None,
        )

    # -- basic shape -------------------------------------------------------

    @property
    def span_count(self) -> int:
        return len(self.spans)

    @property
    def root_duration_ms(self) -> float:
        return self.root.duration_ms if self.root is not None else 0.0

    @property
    def has_error(self) -> bool:
        return any(span.status == "error" for span in self.spans)

    def nodes(self) -> List[str]:
        return sorted({span.node for span in self.spans})

    def corr_ids(self) -> List[str]:
        return sorted({span.corr_id for span in self.spans if span.corr_id != "-"})

    def spans_named(self, name: str) -> List[TraceSpan]:
        return [span for span in self.spans if span.name == name]

    # -- critical path -----------------------------------------------------

    def critical_path(self) -> List[Tuple[TraceSpan, float]]:
        """``(span, exclusive_ms)`` pairs, parent before children.

        Each span's exclusive time is its clamped window minus the
        windows of the children chosen under it, so the sum over the
        whole path is at most the root span's duration (exactly equal
        when children never overhang their parents).
        """
        if self.root is None:
            return []
        segments: List[Tuple[TraceSpan, float]] = []

        def walk(span: TraceSpan, lo: float, hi: float) -> None:
            lo = max(lo, span.start_ms)
            hi = min(hi, span.end_ms)
            if hi < lo:
                return
            kids = self.children.get(span.span_id, [])
            chosen: List[Tuple[TraceSpan, float, float]] = []
            pos = hi
            while pos > lo:
                best: Optional[Tuple[TraceSpan, float, float]] = None
                best_key: Optional[Tuple[float, float, str]] = None
                for kid in kids:
                    if any(kid is c for c, __, __ in chosen):
                        continue
                    end = min(pos, kid.end_ms)
                    start = max(lo, kid.start_ms)
                    if end <= start:
                        continue
                    # Latest clamped end wins; then the longer-covering
                    # (earlier-starting) child; span id breaks dead heats.
                    key = (end, -start, kid.span_id)
                    if best_key is None or key > best_key:
                        best, best_key = (kid, start, end), key
                if best is None:
                    break
                chosen.append(best)
                pos = best[1]
            exclusive = (hi - lo) - sum(end - start for __, start, end in chosen)
            segments.append((span, exclusive))
            for kid, start, end in reversed(chosen):  # chronological
                walk(kid, start, end)

        walk(self.root, self.root.start_ms, self.root.end_ms)
        return segments

    def critical_path_ms(self) -> float:
        return sum(exclusive for __, exclusive in self.critical_path())

    def fingerprint(self) -> str:
        """A compact deterministic digest for replay comparison."""
        parts = [self.trace_id, "1" if self.incomplete else "0"]
        for span in self.spans:
            parts.append(
                f"{span.node}:{span.name}:{span.parent_id or '-'}"
                f":{span.start_ms:.3f}:{span.end_ms:.3f}:{span.status}"
            )
        return "|".join(parts)


@dataclass
class _PendingTrace:
    spans: Dict[str, TraceSpan] = field(default_factory=dict)
    last_update_ms: float = 0.0


class TraceStore:
    """Bounded monitor-host store: ingest → quiesce → decide → keep."""

    def __init__(
        self,
        clock,
        quiesce_ms: float = DEFAULT_QUIESCE_MS,
        keep_pct: int = DEFAULT_KEEP_PCT,
        slow_ms: float = DEFAULT_SLOW_MS,
        max_traces: int = DEFAULT_MAX_TRACES,
    ) -> None:
        if not (0 <= keep_pct <= 100):
            raise ValidationError("keep_pct must be in [0, 100]")
        if quiesce_ms <= 0 or slow_ms <= 0 or max_traces < 1:
            raise ValidationError("quiesce_ms, slow_ms, max_traces must be > 0")
        self.clock = clock
        self.quiesce_ms = quiesce_ms
        self.keep_pct = keep_pct
        self.slow_ms = slow_ms
        self.max_traces = max_traces
        self._pending: Dict[str, _PendingTrace] = {}
        self._kept: Dict[str, TraceTree] = {}  # insertion-ordered
        self.spans_ingested = 0
        self.traces_decided = 0
        self.traces_sampled_out = 0
        self.kept_by_reason: Dict[str, int] = {}

    # -- ingest ------------------------------------------------------------

    def ingest(self, docs: List[Dict[str, Any]]) -> int:
        """Add scraped ``/spansz`` wire documents; dedups by span id.
        Returns how many spans were new."""
        added = 0
        now = self.clock.now
        for doc in docs:
            span = TraceSpan.from_wire(doc)
            pending = self._pending.get(span.trace_id)
            if pending is None:
                # A trace the store already decided keeps its verdict;
                # stragglers (a node scraped late) re-open it only if it
                # was dropped — kept trees are final.
                if span.trace_id in self._kept:
                    continue
                pending = _PendingTrace()
                self._pending[span.trace_id] = pending
            if span.span_id in pending.spans:
                continue
            pending.spans[span.span_id] = span
            pending.last_update_ms = now
            added += 1
        self.spans_ingested += added
        return added

    # -- deciding ----------------------------------------------------------

    def _keep_reason(self, tree: TraceTree) -> Optional[str]:
        if tree.incomplete:
            return KEEP_INCOMPLETE
        if tree.has_error:
            return KEEP_ERROR
        if tree.root_duration_ms >= self.slow_ms:
            return KEEP_SLOW
        if int(tree.trace_id[:8], 16) % 100 < self.keep_pct:
            return KEEP_SAMPLED
        return None

    def _decide(self, trace_id: str, pending: _PendingTrace) -> None:
        tree = TraceTree.assemble(trace_id, list(pending.spans.values()))
        self.traces_decided += 1
        reason = self._keep_reason(tree)
        if reason is None:
            self.traces_sampled_out += 1
            return
        tree.keep_reason = reason
        self.kept_by_reason[reason] = self.kept_by_reason.get(reason, 0) + 1
        while len(self._kept) >= self.max_traces:
            oldest = next(iter(self._kept))
            del self._kept[oldest]
        self._kept[trace_id] = tree

    def gc(self, now_ms: Optional[float] = None) -> int:
        """Decide every trace quiet for ``quiesce_ms``; returns count."""
        now = self.clock.now if now_ms is None else now_ms
        quiet = [
            trace_id
            for trace_id, pending in self._pending.items()
            if now - pending.last_update_ms >= self.quiesce_ms
        ]
        for trace_id in quiet:
            self._decide(trace_id, self._pending.pop(trace_id))
        return len(quiet)

    def finalize(self) -> int:
        """Decide everything still pending (end-of-run drivers)."""
        pending, self._pending = self._pending, {}
        for trace_id in list(pending):
            self._decide(trace_id, pending[trace_id])
        return len(pending)

    # -- read side ---------------------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def traces(self) -> List[TraceTree]:
        return list(self._kept.values())

    def trace(self, trace_id: str) -> Optional[TraceTree]:
        return self._kept.get(trace_id)

    def top(self, n: int = 5) -> List[TraceTree]:
        """The *n* kept traces with the longest root spans (incomplete
        trees sort by their spans' overall extent instead)."""

        def extent(tree: TraceTree) -> float:
            if tree.root is not None:
                return tree.root_duration_ms
            if not tree.spans:
                return 0.0
            return max(s.end_ms for s in tree.spans) - min(
                s.start_ms for s in tree.spans
            )

        ranked = sorted(
            self._kept.values(), key=lambda t: (-extent(t), t.trace_id)
        )
        return ranked[:n]

    def trace_for_corr(self, corr_id: str) -> Optional[TraceTree]:
        """The kept trace an exchange's correlation id belongs to — how
        an SLO alert exemplar upgrades into a stored-trace link."""
        if not corr_id or corr_id == "-":
            return None
        direct = self._kept.get(trace_id_for(corr_id))
        if direct is not None:
            return direct
        for tree in self._kept.values():
            if any(span.corr_id == corr_id for span in tree.spans):
                return tree
        return None

    def fingerprint(self) -> str:
        """Digest of every kept trace, in trace-id order — the replay
        identity ``trace --check`` asserts across two seeded runs."""
        return "\n".join(
            self._kept[trace_id].fingerprint() for trace_id in sorted(self._kept)
        )

    def stats(self) -> Dict[str, Any]:
        return {
            "spans_ingested": self.spans_ingested,
            "traces_decided": self.traces_decided,
            "traces_kept": len(self._kept),
            "traces_sampled_out": self.traces_sampled_out,
            "pending": len(self._pending),
            "kept_by_reason": dict(sorted(self.kept_by_reason.items())),
        }


# -- fleet-level attribution -------------------------------------------------


def critical_edges(
    trees: List[TraceTree],
) -> List[Tuple[str, str, int, float]]:
    """Aggregate critical-path exclusive time per ``parent → child`` edge.

    Returns ``(parent_name, span_name, count, total_exclusive_ms)`` rows
    sorted by total time descending (the root appears with parent
    ``"·"``). This is the per-edge attribution the dashboard's TRACES
    section and ``trace --critical`` render.
    """
    totals: Dict[Tuple[str, str], Tuple[int, float]] = {}
    for tree in trees:
        by_id = {span.span_id: span for span in tree.spans}
        for span, exclusive in tree.critical_path():
            parent = by_id.get(span.parent_id) if span.parent_id else None
            key = (parent.name if parent is not None else "·", span.name)
            count, total = totals.get(key, (0, 0.0))
            totals[key] = (count + 1, total + exclusive)
    rows = [
        (parent, name, count, total)
        for (parent, name), (count, total) in totals.items()
    ]
    rows.sort(key=lambda row: (-row[3], row[0], row[1]))
    return rows


def render_trace(tree: TraceTree, width: int = 72) -> str:
    """One trace as an indented deterministic text block."""
    lines = [
        f"trace {tree.trace_id}  spans={tree.span_count}"
        f"  nodes={','.join(tree.nodes())}"
        + ("  INCOMPLETE" if tree.incomplete else "")
        + (f"  keep={tree.keep_reason}" if tree.keep_reason else "")
    ]
    origin = min((s.start_ms for s in tree.spans), default=0.0)

    def emit(span: TraceSpan, depth: int) -> None:
        pad = "  " * depth
        mark = " !" if span.status == "error" else ""
        lines.append(
            f"{pad}{span.name} [{span.node}]"
            f" +{span.start_ms - origin:.1f}ms {span.duration_ms:.1f}ms{mark}"
        )
        for child in tree.children.get(span.span_id, []):
            emit(child, depth + 1)

    if tree.root is not None:
        emit(tree.root, 0)
    else:
        for span in tree.spans:
            if span.parent_id is None or span.parent_id not in {
                s.span_id for s in tree.spans
            }:
                emit(span, 0)
    return "\n".join(lines)
