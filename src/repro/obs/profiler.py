"""A deterministic scoped profiler for the hot paths.

The registry answers *what happened* (counters, latency histograms);
the profiler answers *where the time went inside one process*. Code
marks its hot sections with::

    with profile("crypto.sha256"):
        ...

Scopes nest: entering ``core.token`` and then ``crypto.sha256`` records
the inner scope under the stack path ``core.token;crypto.sha256`` —
the folded-stack convention flame-graph tooling consumes. For every
distinct stack path the profiler keeps:

- **calls** — how many times the scope ran at that path;
- **cumulative** — total time between enter and exit (children
  included);
- **self** — cumulative minus the children's cumulative, i.e. the time
  actually spent in this scope's own code.

Two invariants hold by construction and are asserted by the tests:
``self <= cumulative`` for every node, and the sum of a node's
children's cumulative time never exceeds the parent's cumulative time.

Profiling is *opt-in and zero-cost when off*: :func:`profile` reads one
module global; when no profiler is active it returns a shared null
context manager, so instrumented crypto inner loops pay a dict lookup
and nothing else. The clock is injectable (defaults to
``time.perf_counter_ns``), which is how the unit tests pin timings and
how simulated-time profiles stay deterministic.

A profiler optionally feeds a :class:`~repro.obs.registry.MetricsRegistry`
(``amnesia_profile_scope_us{scope=...}`` histogram plus
``amnesia_profile_calls_total{scope=...}``), so ``/metricsz`` exports
the same data the flame stacks aggregate. Completed scopes are also
retained as a bounded event list for Chrome ``trace_event`` export
(:mod:`repro.obs.tracefile`).
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.util.errors import ValidationError

# Buckets for per-call scope durations (microseconds): pure-Python
# crypto calls live between ~10 µs (hashlib-backed) and tens of ms
# (pure SHA-512 over large inputs, the x25519 ladder).
PROFILE_SCOPE_US_BUCKETS = (
    1.0, 5.0, 10.0, 50.0, 100.0, 500.0,
    1000.0, 5000.0, 10000.0, 50000.0, 100000.0, 1000000.0,
)

PROFILE_SCOPE_HISTOGRAM = "amnesia_profile_scope_us"
PROFILE_CALLS_COUNTER = "amnesia_profile_calls_total"

StackPath = Tuple[str, ...]


@dataclass
class ScopeStats:
    """Aggregate timing for one stack path."""

    path: StackPath
    calls: int = 0
    cumulative_us: float = 0.0
    children_us: float = 0.0

    @property
    def name(self) -> str:
        return self.path[-1] if self.path else ""

    @property
    def self_us(self) -> float:
        """Time spent in this scope's own code (children excluded)."""
        return max(0.0, self.cumulative_us - self.children_us)

    @property
    def folded(self) -> str:
        """The folded-stack key, ``root;child;grandchild``."""
        return ";".join(self.path)


@dataclass
class ProfileEvent:
    """One completed scope occurrence (for trace export)."""

    path: StackPath
    start_us: float
    end_us: float
    depth: int = 0

    @property
    def name(self) -> str:
        return self.path[-1]

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


class _Frame:
    __slots__ = ("name", "start_us", "children_us", "depth")

    def __init__(self, name: str, start_us: float, depth: int) -> None:
        self.name = name
        self.start_us = start_us
        self.children_us = 0.0
        self.depth = depth


class _Scope:
    """The context manager returned by :meth:`Profiler.scope`."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> None:
        self._profiler._enter(self._name)

    def __exit__(self, *exc_info) -> bool:
        self._profiler._exit()
        return False


class _NullScope:
    """Shared no-op context manager: the cost of profiling when off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class Profiler:
    """Collects nested scope timings keyed by stack path.

    *clock_us* is any zero-argument callable returning microseconds as a
    float; the default wraps ``time.perf_counter_ns``. *max_events*
    bounds the retained event list (aggregated stats are unbounded but
    keyed by stack path, whose cardinality is the instrumentation's).
    """

    def __init__(
        self,
        clock_us: Callable[[], float] | None = None,
        registry=None,
        max_events: int = 100_000,
    ) -> None:
        if max_events < 0:
            raise ValidationError(f"max_events must be >= 0, got {max_events}")
        self._clock_us = clock_us or (lambda: time.perf_counter_ns() / 1_000.0)
        self._registry = registry
        self._max_events = max_events
        self._stack: List[_Frame] = []
        self._stats: Dict[StackPath, ScopeStats] = {}
        self.events: List[ProfileEvent] = []
        self.dropped_events = 0

    # -- recording -----------------------------------------------------------

    def scope(self, name: str) -> _Scope:
        """A context manager timing *name* at the current stack depth."""
        if not name:
            raise ValidationError("scope name must be non-empty")
        return _Scope(self, name)

    def _enter(self, name: str) -> None:
        self._stack.append(_Frame(name, self._clock_us(), len(self._stack)))

    def _exit(self) -> None:
        end_us = self._clock_us()
        frame = self._stack.pop()
        if end_us < frame.start_us:  # a clock must not run backwards
            end_us = frame.start_us
        elapsed = end_us - frame.start_us
        path = tuple(f.name for f in self._stack) + (frame.name,)
        stats = self._stats.get(path)
        if stats is None:
            stats = ScopeStats(path)
            self._stats[path] = stats
        stats.calls += 1
        stats.cumulative_us += elapsed
        stats.children_us += frame.children_us
        if self._stack:
            self._stack[-1].children_us += elapsed
        if len(self.events) < self._max_events:
            self.events.append(
                ProfileEvent(path, frame.start_us, end_us, frame.depth)
            )
        else:
            self.dropped_events += 1
        if self._registry is not None:
            scope_label = ";".join(path)
            self._registry.histogram(
                PROFILE_SCOPE_HISTOGRAM,
                "Per-call duration of one profiled scope (microseconds)",
                label_names=("scope",),
                buckets=PROFILE_SCOPE_US_BUCKETS,
            ).labels(scope=scope_label).observe(elapsed)
            self._registry.counter(
                PROFILE_CALLS_COUNTER,
                "Completed profiled scope calls, by folded stack path",
                label_names=("scope",),
            ).labels(scope=scope_label).inc()

    @property
    def depth(self) -> int:
        """Current nesting depth (0 outside any scope)."""
        return len(self._stack)

    # -- aggregation ---------------------------------------------------------

    def stats(self) -> Dict[StackPath, ScopeStats]:
        """Per-stack-path statistics, keyed by the full path tuple."""
        return dict(self._stats)

    def by_name(self) -> Dict[str, ScopeStats]:
        """Statistics merged across stack positions, keyed by scope name.

        ``cumulative_us`` across positions can double-count recursive
        scopes; the merge is for ranking, not for invariant checking.
        """
        merged: Dict[str, ScopeStats] = {}
        for path, stats in sorted(self._stats.items()):
            entry = merged.get(stats.name)
            if entry is None:
                entry = ScopeStats((stats.name,))
                merged[stats.name] = entry
            entry.calls += stats.calls
            entry.cumulative_us += stats.cumulative_us
            entry.children_us += stats.children_us
        return merged

    def flame_stacks(self) -> List[str]:
        """Folded-stack lines (``a;b;c <self-µs>``), deterministically
        sorted by path — the input format of flame-graph renderers.

        Self time is emitted as an integer microsecond count (the
        convention of ``flamegraph.pl``-style collapsers); zero-self
        nodes still appear so the hierarchy is complete.
        """
        return [
            f"{stats.folded} {int(round(stats.self_us))}"
            for __, stats in sorted(self._stats.items())
        ]

    def total_us(self) -> float:
        """Total profiled time: the cumulative time of all root scopes."""
        return sum(
            s.cumulative_us for path, s in self._stats.items() if len(path) == 1
        )

    def render_table(self, limit: int = 20) -> str:
        """A cumulative/self/calls table sorted by cumulative time."""
        rows = sorted(
            self._stats.values(),
            key=lambda s: (-s.cumulative_us, s.path),
        )[:limit]
        if not rows:
            return "(no profiled scopes)"
        header = (
            f"{'scope':<44s} {'calls':>7s} {'cum µs':>12s} {'self µs':>12s}"
        )
        lines = [header, "-" * len(header)]
        for stats in rows:
            indent = "  " * (len(stats.path) - 1)
            label = indent + stats.name
            lines.append(
                f"{label:<44s} {stats.calls:>7d} "
                f"{stats.cumulative_us:>12.1f} {stats.self_us:>12.1f}"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        if self._stack:
            raise ValidationError("cannot clear while scopes are open")
        self._stats.clear()
        self.events.clear()
        self.dropped_events = 0


# -- the module-level activation switch -----------------------------------------

_ACTIVE: Optional[Profiler] = None


def active_profiler() -> Optional[Profiler]:
    """The currently active profiler, or ``None`` when profiling is off."""
    return _ACTIVE


def activate(profiler: Profiler) -> None:
    """Route :func:`profile` scopes into *profiler* until deactivated."""
    global _ACTIVE
    if _ACTIVE is not None and _ACTIVE is not profiler:
        raise ValidationError("another profiler is already active")
    _ACTIVE = profiler


def deactivate() -> None:
    global _ACTIVE
    _ACTIVE = None


class profiling:
    """``with profiling(profiler):`` — activate for one block.

    Re-entrant for the *same* profiler instance (nested blocks share
    it); activating a second instance while one is live is an error, so
    stray global state cannot silently corrupt measurements.
    """

    def __init__(self, profiler: Profiler | None = None, **kwargs) -> None:
        self.profiler = profiler if profiler is not None else Profiler(**kwargs)
        self._was_active = False

    def __enter__(self) -> Profiler:
        self._was_active = _ACTIVE is self.profiler
        if not self._was_active:
            activate(self.profiler)
        return self.profiler

    def __exit__(self, *exc_info) -> bool:
        if not self._was_active:
            deactivate()
        return False


def profile(name: str):
    """Time the enclosed block under *name* on the active profiler.

    When no profiler is active this returns a shared null context
    manager — one global read, no allocation — which is why the
    pure-Python crypto inner loops can afford to stay instrumented.
    """
    active = _ACTIVE
    if active is None:
        return _NULL_SCOPE
    return active.scope(name)


def profiled(name: str):
    """Decorator form of :func:`profile` for whole-function scopes.

    The inactive fast path is a plain call behind one global read, so
    permanently decorating the crypto primitives costs ~one function
    wrapper when profiling is off and full attribution when it is on.
    """
    if not name:
        raise ValidationError("scope name must be non-empty")

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            active = _ACTIVE
            if active is None:
                return fn(*args, **kwargs)
            with active.scope(name):
                return fn(*args, **kwargs)

        wrapper.__profiled_scope__ = name
        return wrapper

    return decorate


def iter_roots(events: List[ProfileEvent]) -> Iterator[ProfileEvent]:
    """The depth-0 events, in completion order (for summaries)."""
    for event in events:
        if event.depth == 0:
            yield event
