"""Exporters: Prometheus text exposition format and JSON.

:func:`render_prometheus` follows the text exposition format (version
0.0.4): ``# HELP``/``# TYPE`` per family, label values escaped
(backslash, double-quote, newline), histograms as cumulative
``_bucket{le=...}`` series plus ``_sum``/``_count``. Buckets holding an
exemplar additionally carry the OpenMetrics exemplar clause —
`` # {corr_id="<ref>"} <value>`` appended to the bucket line — which
:func:`parse_prometheus` round-trips into a parallel ``exemplars``
list, so scraped latency buckets link back to traceable exchanges.
:func:`render_json` produces the same data as one JSON document for
dashboards and the CLI.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    LabelValues,
    MetricFamily,
    MetricsRegistry,
)

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Counts children skipped because reading their value raised (a broken
#: gauge ``set_function`` callback must not take down ``/metricsz``).
COLLECT_ERRORS_METRIC = "amnesia_collect_errors_total"


def _count_collect_error(registry: MetricsRegistry | None, family_name: str) -> None:
    if registry is None:
        return
    registry.counter(
        COLLECT_ERRORS_METRIC,
        "Metric children skipped at collection because reading them raised",
        label_names=("family",),
    ).labels(family=family_name).inc()


def _safe_value(
    metric: "Counter | Gauge | Histogram",
    family: MetricFamily,
    registry: MetricsRegistry | None,
) -> float | None:
    """Read ``metric.value``; on any exception (lazy gauge callbacks run
    here) count the skip and return None so the exporter drops the child
    instead of propagating."""
    try:
        return metric.value
    except Exception:  # noqa: BLE001 - exporter is a last-resort surface
        _count_collect_error(registry, family.name)
        return None


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def escape_help(text: str) -> str:
    """Escape a HELP string (backslash and newline only)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_string(names: tuple[str, ...], values: LabelValues, extra: str = "") -> str:
    parts = [
        f'{name}="{escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _exemplar_suffix(exemplar: "tuple[str, float] | None") -> str:
    """The OpenMetrics exemplar clause for one bucket line (or '')."""
    if exemplar is None:
        return ""
    ref, value = exemplar
    return (
        f' # {{corr_id="{escape_label_value(ref)}"}} {_format_value(value)}'
    )


def _render_family(
    family: MetricFamily, registry: MetricsRegistry | None = None
) -> list[str]:
    lines = []
    if family.help:
        lines.append(f"# HELP {family.name} {escape_help(family.help)}")
    lines.append(f"# TYPE {family.name} {family.kind}")
    for values, metric in family.samples():
        if isinstance(metric, Histogram):
            cumulative = metric.cumulative_counts()
            exemplars = metric.exemplars()
            for index, (bound, count) in enumerate(
                zip(metric.bounds, cumulative)
            ):
                label_str = _label_string(
                    family.label_names, values, f'le="{_format_value(bound)}"'
                )
                lines.append(
                    f"{family.name}_bucket{label_str} {count}"
                    + _exemplar_suffix(exemplars.get(index))
                )
            label_str = _label_string(family.label_names, values, 'le="+Inf"')
            lines.append(
                f"{family.name}_bucket{label_str} {cumulative[-1]}"
                + _exemplar_suffix(exemplars.get(len(metric.bounds)))
            )
            plain = _label_string(family.label_names, values)
            lines.append(f"{family.name}_sum{plain} {_format_value(metric.sum)}")
            lines.append(f"{family.name}_count{plain} {metric.count}")
        else:
            value = _safe_value(metric, family, registry)
            if value is None:
                continue
            label_str = _label_string(family.label_names, values)
            lines.append(f"{family.name}{label_str} {_format_value(value)}")
    return lines


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.collect():
        lines.extend(_render_family(family, registry))
    return "\n".join(lines) + "\n" if lines else ""


def _metric_json(metric: "Counter | Gauge | Histogram") -> Dict[str, Any]:
    if isinstance(metric, Histogram):
        bounds = list(metric.bounds) + [math.inf]
        doc: Dict[str, Any] = {
            "count": metric.count,
            "sum": metric.sum,
            "buckets": {
                _format_value(bound): count
                for bound, count in zip(bounds, metric.bucket_counts())
            },
            "p50": _nan_safe(metric.p50()),
            "p95": _nan_safe(metric.p95()),
            "p99": _nan_safe(metric.p99()),
        }
        exemplars = metric.exemplars()
        if exemplars:
            # Same data the text exposition now carries as OpenMetrics
            # exemplar clauses on the bucket lines.
            doc["exemplars"] = {
                _format_value(bounds[index]): {"ref": ref, "value": value}
                for index, (ref, value) in sorted(exemplars.items())
            }
        return doc
    return {"value": _nan_safe(metric.value)}


def _nan_safe(value: float) -> float | None:
    return None if math.isnan(value) else value


def registry_snapshot(registry: MetricsRegistry) -> Dict[str, Any]:
    """The registry as one JSON-serialisable document."""
    snapshot: Dict[str, Any] = {}
    for family in registry.collect():
        series = []
        for values, metric in family.samples():
            if isinstance(metric, Histogram):
                body = _metric_json(metric)
            else:
                value = _safe_value(metric, family, registry)
                if value is None:
                    continue  # broken lazy gauge: skip, already counted
                body = {"value": _nan_safe(value)}
            series.append(
                {"labels": dict(zip(family.label_names, values)), **body}
            )
        snapshot[family.name] = {
            "type": family.kind,
            "help": family.help,
            "series": series,
        }
    return snapshot


def render_json(registry: MetricsRegistry, indent: int | None = 2) -> str:
    """The registry as a JSON string."""
    return json.dumps(registry_snapshot(registry), indent=indent, sort_keys=True)


# -- parsing (round-trip verification) -------------------------------------------


def _unescape(value: str) -> str:
    """Reverse :func:`escape_label_value` / :func:`escape_help`."""
    out: list[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "\\":
                out.append("\\")
                index += 2
                continue
            if nxt == '"':
                out.append('"')
                index += 2
                continue
            if nxt == "n":
                out.append("\n")
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def _parse_labels(segment: str) -> Dict[str, str]:
    """Parse the inside of a ``{...}`` label block (quote-aware)."""
    labels: Dict[str, str] = {}
    index = 0
    length = len(segment)
    while index < length:
        equals = segment.index("=", index)
        name = segment[index:equals]
        if equals + 1 >= length or segment[equals + 1] != '"':
            raise ValueError(f"malformed label block: {segment!r}")
        cursor = equals + 2
        raw: list[str] = []
        while cursor < length:
            char = segment[cursor]
            if char == "\\" and cursor + 1 < length:
                raw.append(segment[cursor : cursor + 2])
                cursor += 2
                continue
            if char == '"':
                break
            raw.append(char)
            cursor += 1
        labels[name] = _unescape("".join(raw))
        index = cursor + 1
        if index < length and segment[index] == ",":
            index += 1
    return labels


def _find_closing_brace(text: str, brace: int) -> int:
    """Index of the ``}`` matching ``text[brace]``, quote-aware."""
    cursor = brace + 1
    in_quotes = False
    while cursor < len(text):
        char = text[cursor]
        if char == "\\" and in_quotes:
            cursor += 2
            continue
        if char == '"':
            in_quotes = not in_quotes
        elif char == "}" and not in_quotes:
            break
        cursor += 1
    if cursor >= len(text):
        raise ValueError(f"unterminated label block: {text!r}")
    return cursor


def _split_sample(
    line: str,
) -> "tuple[str, Dict[str, str], float, tuple[Dict[str, str], float] | None]":
    """One exposition sample line -> (name, labels, value, exemplar).

    *exemplar* is ``(exemplar_labels, exemplar_value)`` when the line
    carries an OpenMetrics `` # {...} v`` clause, else ``None``.
    """
    brace = line.find("{")
    space = line.find(" ")
    if brace != -1 and (space == -1 or brace < space):
        cursor = _find_closing_brace(line, brace)
        name = line[:brace]
        labels = _parse_labels(line[brace + 1 : cursor])
        value_text = line[cursor + 1 :].strip()
    else:
        name, value_text = line.split(None, 1)
        labels = {}
    exemplar = None
    if " # " in value_text:
        value_text, exemplar_text = value_text.split(" # ", 1)
        exemplar_text = exemplar_text.strip()
        if not exemplar_text.startswith("{"):
            raise ValueError(f"malformed exemplar clause: {line!r}")
        ecursor = _find_closing_brace(exemplar_text, 0)
        exemplar = (
            _parse_labels(exemplar_text[1:ecursor]),
            float(exemplar_text[ecursor + 1 :].strip()),
        )
    return name, labels, float(value_text.strip()), exemplar


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse :func:`render_prometheus` output back into structured data.

    Returns ``{family_name: {"kind", "help", "samples", "exemplars"}}``
    where ``samples`` is a list of ``(sample_name, labels, value)``
    tuples in file order — ``sample_name`` keeps the ``_bucket``/
    ``_sum``/``_count`` suffixes of histogram series — and
    ``exemplars`` is a parallel list of ``(sample_name, labels,
    exemplar_labels, exemplar_value)`` rows for bucket lines that
    carried an OpenMetrics exemplar clause. This is the round-trip
    half of the exporter contract: what `/metricsz` serves can be
    reconstructed, bit-for-bit, into the registry's snapshot.
    """
    families: Dict[str, Dict[str, Any]] = {}
    current: str | None = None
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            __, __, name, help_text = line.split(" ", 3)
            families.setdefault(
                name,
                {"kind": "untyped", "help": "", "samples": [], "exemplars": []},
            )["help"] = _unescape(help_text)
            current = name
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            name, kind = parts[2], parts[3]
            families.setdefault(
                name,
                {"kind": "untyped", "help": "", "samples": [], "exemplars": []},
            )["kind"] = kind
            current = name
            continue
        if line.startswith("#"):
            continue
        name, labels, value, exemplar = _split_sample(line)
        family_name = current
        if family_name is None or not name.startswith(family_name):
            family_name = name
            families.setdefault(
                family_name,
                {"kind": "untyped", "help": "", "samples": [], "exemplars": []},
            )
        families[family_name]["samples"].append((name, labels, value))
        if exemplar is not None:
            families[family_name]["exemplars"].append(
                (name, labels, exemplar[0], exemplar[1])
            )
    return families
