"""Exporters: Prometheus text exposition format and JSON.

:func:`render_prometheus` follows the text exposition format (version
0.0.4): ``# HELP``/``# TYPE`` per family, label values escaped
(backslash, double-quote, newline), histograms as cumulative
``_bucket{le=...}`` series plus ``_sum``/``_count``. :func:`render_json`
produces the same data as one JSON document for dashboards and the CLI.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    LabelValues,
    MetricFamily,
    MetricsRegistry,
)

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def escape_help(text: str) -> str:
    """Escape a HELP string (backslash and newline only)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_string(names: tuple[str, ...], values: LabelValues, extra: str = "") -> str:
    parts = [
        f'{name}="{escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _render_family(family: MetricFamily) -> list[str]:
    lines = []
    if family.help:
        lines.append(f"# HELP {family.name} {escape_help(family.help)}")
    lines.append(f"# TYPE {family.name} {family.kind}")
    for values, metric in family.samples():
        if isinstance(metric, Histogram):
            cumulative = metric.cumulative_counts()
            for bound, count in zip(metric.bounds, cumulative):
                label_str = _label_string(
                    family.label_names, values, f'le="{_format_value(bound)}"'
                )
                lines.append(f"{family.name}_bucket{label_str} {count}")
            label_str = _label_string(family.label_names, values, 'le="+Inf"')
            lines.append(f"{family.name}_bucket{label_str} {cumulative[-1]}")
            plain = _label_string(family.label_names, values)
            lines.append(f"{family.name}_sum{plain} {_format_value(metric.sum)}")
            lines.append(f"{family.name}_count{plain} {metric.count}")
        else:
            label_str = _label_string(family.label_names, values)
            lines.append(f"{family.name}{label_str} {_format_value(metric.value)}")
    return lines


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.collect():
        lines.extend(_render_family(family))
    return "\n".join(lines) + "\n" if lines else ""


def _metric_json(metric: "Counter | Gauge | Histogram") -> Dict[str, Any]:
    if isinstance(metric, Histogram):
        return {
            "count": metric.count,
            "sum": metric.sum,
            "buckets": {
                _format_value(bound): count
                for bound, count in zip(
                    list(metric.bounds) + [math.inf], metric.bucket_counts()
                )
            },
            "p50": _nan_safe(metric.p50()),
            "p95": _nan_safe(metric.p95()),
            "p99": _nan_safe(metric.p99()),
        }
    return {"value": _nan_safe(metric.value)}


def _nan_safe(value: float) -> float | None:
    return None if math.isnan(value) else value


def registry_snapshot(registry: MetricsRegistry) -> Dict[str, Any]:
    """The registry as one JSON-serialisable document."""
    snapshot: Dict[str, Any] = {}
    for family in registry.collect():
        series = []
        for values, metric in family.samples():
            series.append(
                {
                    "labels": dict(zip(family.label_names, values)),
                    **_metric_json(metric),
                }
            )
        snapshot[family.name] = {
            "type": family.kind,
            "help": family.help,
            "series": series,
        }
    return snapshot


def render_json(registry: MetricsRegistry, indent: int | None = 2) -> str:
    """The registry as a JSON string."""
    return json.dumps(registry_snapshot(registry), indent=indent, sort_keys=True)
