"""Correlated spans: per-stage timing for one password generation.

A *trace* is the set of spans sharing one correlation id (the server
uses the pending-exchange id, which already travels server → rendezvous
→ phone → server, so every hop can join the same trace). Each span
names one stage of the Figure 1 pipeline and carries start/end stamps
from whatever clock the deployment runs on (simulated or wall).

The canonical stages of a generation trace:

========================  ====================================================
``push_wait``             R leaves the server until the phone's app sees it
                          (server → rendezvous → push delivery).
``phone_compute``         the device's Algorithm 1 computation window.
``return_hop``            token leaves the phone until the server's ``/token``
                          handler runs (network + server queue/compute).
``server_render``         intermediate value + template rendering on the
                          server, ending at the paper's ``t_end``.
========================  ====================================================

Their durations sum to exactly ``t_end - t_start`` — Figure 3's latency
— which the test suite asserts, making the breakdown trustworthy for
attribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.util.errors import ValidationError

GENERATION_STAGES = (
    "push_wait",
    "phone_compute",
    "return_hop",
    "server_render",
)

STAGE_HISTOGRAM = "amnesia_stage_ms"


@dataclass(frozen=True)
class Span:
    """One named stage within a trace.

    Stamps are validated at construction: a span that ends before it
    starts is a programming error everywhere (a clock can stall, but
    the sim clock never runs backwards), so no recorder path may build
    one.
    """

    corr_id: str
    name: str
    start_ms: float
    end_ms: float

    def __post_init__(self) -> None:
        if self.end_ms < self.start_ms:
            raise ValidationError(
                f"span {self.name!r} ends before it starts "
                f"({self.end_ms} < {self.start_ms})"
            )

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass
class StageStats:
    """Aggregate duration statistics for one stage name."""

    name: str
    durations_ms: List[float] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.durations_ms)

    @property
    def total_ms(self) -> float:
        return sum(self.durations_ms)

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else math.nan

    @property
    def max_ms(self) -> float:
        return max(self.durations_ms) if self.count else math.nan


class SpanRecorder:
    """Collects spans per correlation id; optionally feeds a registry.

    When built with a :class:`~repro.obs.registry.MetricsRegistry`, each
    recorded span also lands in the ``amnesia_stage_ms{stage=...}``
    histogram, so exporters see the same data as the trace store.

    *max_traces* bounds memory: the oldest completed traces are evicted
    first, which matters for a server meant to run indefinitely.
    """

    def __init__(self, registry=None, max_traces: int = 1024) -> None:
        if max_traces < 1:
            raise ValidationError(f"max_traces must be >= 1, got {max_traces}")
        self._registry = registry
        self._max_traces = max_traces
        # insertion-ordered: dict preserves trace arrival order for eviction
        self._traces: Dict[str, List[Span]] = {}
        self.recorded_spans = 0

    def record(self, corr_id: str, name: str, start_ms: float, end_ms: float) -> Span:
        """Record one completed stage; returns the span."""
        if not corr_id:
            raise ValidationError("corr_id must be non-empty")
        if not name:
            raise ValidationError("span name must be non-empty")
        # Stamp ordering is enforced by Span.__post_init__ itself.
        span = Span(corr_id=corr_id, name=name, start_ms=start_ms, end_ms=end_ms)
        spans = self._traces.get(corr_id)
        if spans is None:
            while len(self._traces) >= self._max_traces:
                oldest = next(iter(self._traces))
                del self._traces[oldest]
            spans = []
            self._traces[corr_id] = spans
        spans.append(span)
        self.recorded_spans += 1
        if self._registry is not None:
            self._registry.histogram(
                STAGE_HISTOGRAM,
                "Per-stage duration of the Figure 1 pipeline",
                label_names=("stage",),
            ).labels(stage=name).observe(span.duration_ms)
        return span

    def trace(self, corr_id: str) -> List[Span]:
        """All spans recorded under *corr_id* (possibly empty)."""
        return list(self._traces.get(corr_id, []))

    def trace_ids(self) -> List[str]:
        return list(self._traces)

    def trace_total_ms(self, corr_id: str) -> float:
        """Sum of stage durations — should equal ``t_end - t_start``."""
        spans = self._traces.get(corr_id)
        if not spans:
            return math.nan
        return sum(span.duration_ms for span in spans)

    def stage_breakdown(self) -> Dict[str, StageStats]:
        """Durations aggregated by stage name, across all traces."""
        stats: Dict[str, StageStats] = {}
        for spans in self._traces.values():
            for span in spans:
                entry = stats.get(span.name)
                if entry is None:
                    entry = StageStats(span.name)
                    stats[span.name] = entry
                entry.durations_ms.append(span.duration_ms)
        return stats

    def clear(self) -> None:
        self._traces.clear()


def render_stage_table(
    stats: Iterable[StageStats], total_label: str = "total"
) -> str:
    """Render stage statistics as the latency-attribution table.

    One row per stage (given order preserved) with count, mean, max and
    the share of the summed mean — the table BENCH runs use to say
    *where* Figure 3's milliseconds go.
    """
    rows = list(stats)
    if not rows:
        raise ValidationError("no stages to render")
    total_mean = sum(r.mean_ms for r in rows if not math.isnan(r.mean_ms))
    header = f"{'stage':<16s} {'n':>5s} {'mean ms':>10s} {'max ms':>10s} {'share':>7s}"
    lines = [header, "-" * len(header)]
    for row in rows:
        share = (
            f"{100.0 * row.mean_ms / total_mean:6.1f}%"
            if total_mean > 0 and not math.isnan(row.mean_ms)
            else "    n/a"
        )
        lines.append(
            f"{row.name:<16s} {row.count:>5d} {row.mean_ms:>10.2f} "
            f"{row.max_ms:>10.2f} {share:>7s}"
        )
    lines.append("-" * len(header))
    lines.append(f"{total_label:<16s} {'':>5s} {total_mean:>10.2f}")
    return "\n".join(lines)
