"""The metrics registry: counters, gauges, fixed-bucket histograms.

Modelled on the Prometheus client data model, scaled down to what this
repository needs and implemented with zero dependencies:

- metrics are *families* identified by name; a family owns labelled
  children (one child per unique label-value tuple);
- counters are monotonic, gauges settable (optionally backed by a
  callback, e.g. a thread-pool depth), histograms have fixed bucket
  upper bounds with cumulative ``le`` semantics (``value <= bound``);
- histograms estimate p50/p95/p99 by linear interpolation inside the
  owning bucket, clamped to the observed min/max so tight distributions
  do not get smeared across a wide bucket.

Registries are cheap; the testbed builds one per deployment so tests
stay isolated, while :func:`global_registry` offers the conventional
process-wide instance for real deployments.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Callable, Dict, Iterable, Mapping, Tuple

from repro.util.errors import ConflictError, ValidationError

LabelValues = Tuple[str, ...]

# Wide enough for both simulated milliseconds (Figure 3 lives around
# 700-1000 ms) and the microsecond-scale wall timings of kernel events.
DEFAULT_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0, 2500.0, 5000.0, 10000.0, 30000.0,
)


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValidationError(f"bad metric name {name!r}")
    if name[0].isdigit():
        raise ValidationError(f"metric name cannot start with a digit: {name!r}")


def _validate_label_name(name: str) -> None:
    if not name or not name.isidentifier():
        raise ValidationError(f"bad label name {name!r}")


class Counter:
    """A monotonically increasing value."""

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError(f"counter can only increase, got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down, or track a callback."""

    def __init__(self) -> None:
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        self._fn = None
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._fn = None
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Track *fn* lazily: the gauge reads it at collection time."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """Fixed-bucket histogram with cumulative ``le`` export semantics."""

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS_MS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValidationError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValidationError(f"bucket bounds must increase: {bounds}")
        if any(math.isnan(b) or math.isinf(b) for b in bounds):
            raise ValidationError("bucket bounds must be finite (+Inf is implicit)")
        self.bounds = bounds
        # One slot per bound plus the implicit +Inf overflow bucket.
        self._counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        # Last exemplar per bucket: bucket index -> (reference, value).
        # The reference is a trace/correlation id, so an alert on the
        # slow tail of this histogram links straight to one concrete
        # exchange. Exposed via the JSON snapshot and as OpenMetrics
        # exemplar clauses on the text-exposition bucket lines.
        self._exemplars: Dict[int, Tuple[str, float]] = {}

    def observe(self, value: float, exemplar: str | None = None) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValidationError("cannot observe NaN")
        # ``le`` semantics: a value equal to a bound lands in that bucket.
        index = bisect.bisect_left(self.bounds, value)
        self._counts[index] += 1
        self.count += 1
        self.sum += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if exemplar:
            self._exemplars[index] = (str(exemplar), value)

    def exemplars(self) -> Dict[int, Tuple[str, float]]:
        """Last ``(reference, value)`` seen per bucket index (+Inf last)."""
        return dict(self._exemplars)

    def last_exemplar(self) -> Tuple[str, float] | None:
        """The exemplar in the highest populated bucket, if any — the
        most interesting one for a latency alert (slowest tail)."""
        if not self._exemplars:
            return None
        return self._exemplars[max(self._exemplars)]

    @property
    def min(self) -> float:
        return self._min if self.count else math.nan

    @property
    def max(self) -> float:
        return self._max if self.count else math.nan

    def bucket_counts(self) -> list[int]:
        """Per-bucket (non-cumulative) counts, overflow last."""
        return list(self._counts)

    def cumulative_counts(self) -> list[int]:
        """Cumulative counts per bound plus +Inf, as Prometheus exports."""
        cumulative = []
        running = 0
        for count in self._counts:
            running += count
            cumulative.append(running)
        return cumulative

    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Estimate the *q*-th percentile (q in [0, 100]).

        Linear interpolation inside the bucket holding the target rank,
        clamped to the observed min/max. ``nan`` when empty.
        """
        if not (0.0 <= q <= 100.0):
            raise ValidationError(f"percentile q must be in [0, 100], got {q}")
        if self.count == 0:
            return math.nan
        rank = (q / 100.0) * self.count
        cumulative = 0
        for index, count in enumerate(self._counts):
            if count == 0:
                cumulative += count
                continue
            previous = cumulative
            cumulative += count
            if cumulative >= rank:
                lower = self.bounds[index - 1] if index > 0 else min(0.0, self._min)
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self._max
                )
                fraction = (rank - previous) / count
                estimate = lower + fraction * (upper - lower)
                return min(max(estimate, self._min), self._max)
        return self._max  # pragma: no cover - rank <= count always hits above

    def p50(self) -> float:
        return self.percentile(50.0)

    def p95(self) -> float:
        return self.percentile(95.0)

    def p99(self) -> float:
        return self.percentile(99.0)


class MetricFamily:
    """A named metric with labelled children of one concrete type."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Tuple[str, ...],
        factory: Callable[[], "Counter | Gauge | Histogram"],
    ) -> None:
        _validate_name(name)
        for label in label_names:
            _validate_label_name(label)
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self._factory = factory
        self._children: Dict[LabelValues, Counter | Gauge | Histogram] = {}

    def labels(self, **label_values: str):
        """The child for these label values (created on first use)."""
        if set(label_values) != set(self.label_names):
            raise ValidationError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(label_values))}"
            )
        key = tuple(str(label_values[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._factory()
            self._children[key] = child
        return child

    def _default_child(self):
        if self.label_names:
            raise ValidationError(
                f"{self.name} is labelled {self.label_names}; use .labels()"
            )
        return self.labels()

    # -- unlabelled conveniences ---------------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._default_child().set_function(fn)

    def observe(self, value: float, exemplar: str | None = None) -> None:
        if exemplar is None:
            self._default_child().observe(value)
        else:
            self._default_child().observe(value, exemplar=exemplar)

    @property
    def value(self) -> float:
        return self._default_child().value

    def percentile(self, q: float) -> float:
        return self._default_child().percentile(q)

    # -- collection -----------------------------------------------------------

    def samples(self) -> Iterable[tuple[LabelValues, "Counter | Gauge | Histogram"]]:
        """Children in deterministic (sorted label) order."""
        return sorted(self._children.items(), key=lambda item: item[0])


class MetricsRegistry:
    """Get-or-create registry of metric families."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _get_or_create(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Tuple[str, ...],
        factory: Callable[[], "Counter | Gauge | Histogram"],
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind:
                    raise ConflictError(
                        f"metric {name!r} already registered as {family.kind}"
                    )
                if family.label_names != label_names:
                    raise ConflictError(
                        f"metric {name!r} already registered with labels "
                        f"{family.label_names}"
                    )
                return family
            family = MetricFamily(name, kind, help, label_names, factory)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", label_names: Tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._get_or_create(name, "counter", help, tuple(label_names), Counter)

    def gauge(
        self, name: str, help: str = "", label_names: Tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._get_or_create(name, "gauge", help, tuple(label_names), Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: Tuple[str, ...] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS_MS,
    ) -> MetricFamily:
        bounds = tuple(float(b) for b in buckets)
        return self._get_or_create(
            name, "histogram", help, tuple(label_names),
            lambda: Histogram(bounds),
        )

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def collect(self) -> list[MetricFamily]:
        """All families in registration-name order."""
        return [self._families[name] for name in sorted(self._families)]

    def family_names(self) -> list[str]:
        return sorted(self._families)

    def as_dict(self) -> Mapping[str, MetricFamily]:
        return dict(self._families)


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The conventional process-wide registry (real deployments)."""
    return _GLOBAL
