"""Observability: metrics registry, span tracing, and exporters.

The paper's only instrumentation is the ``t_start``/``t_end`` pair
behind Figure 3. This package gives the reproduction production-grade
telemetry on top of that seed:

- :mod:`repro.obs.registry` — a process-wide metrics registry with
  counters, gauges, and fixed-bucket histograms (p50/p95/p99);
- :mod:`repro.obs.spans` — a span recorder that threads a correlation
  id through one password generation across browser → server →
  rendezvous → phone → server, attributing each stage's duration;
- :mod:`repro.obs.export` — Prometheus text exposition and JSON
  renderers, served by the ``/metricsz`` route;
- :mod:`repro.obs.instrument` — adapters binding the simulation
  kernel, the network fabric, and the HTTP thread pool to a registry;
- :mod:`repro.obs.profiler` — a deterministic scoped profiler
  (``with profile("crypto.sha512"): ...``) with self/cumulative time
  and flame-stack aggregation;
- :mod:`repro.obs.tracefile` — Chrome ``trace_event`` export of span
  traces and profiler scopes for ``chrome://tracing`` / Perfetto;
- :mod:`repro.obs.health` — the fleet health surface: ``/healthz`` and
  ``/statusz`` payload builders shared by server, phone, and
  rendezvous.

All clocks are duck-typed: the simulator's virtual clock and
:class:`repro.deploy.clock.WallClock` both work, so spans and
histograms mean the same thing in simulation and real deployments.
"""

from repro.obs.export import render_json, render_prometheus
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from repro.obs.profiler import (
    Profiler,
    active_profiler,
    profile,
    profiled,
    profiling,
)
from repro.obs.spans import Span, SpanRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Profiler",
    "Span",
    "SpanRecorder",
    "active_profiler",
    "global_registry",
    "profile",
    "profiled",
    "profiling",
    "render_json",
    "render_prometheus",
]
