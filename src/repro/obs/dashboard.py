"""A deterministic terminal dashboard over the fleet telemetry plane.

Pure functions of :class:`~repro.obs.scrape.FleetTelemetry` state — no
wall clock, no colour codes, no terminal queries — so the same sim
state always renders the same text (the ``dash --check`` smoke renders
twice and compares). Three sections: fleet topology (per-node up/stale
from scrape staleness), top-series sparklines (counter rates and
windowed p95s from the TSDB), and alert state per SLO.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.scrape import FleetTelemetry

_BLOCKS = "▁▂▃▄▅▆▇█"

#: Topology ordering: infrastructure first, then serving tiers, edges last.
_ROLE_ORDER = {
    "gateway": 0,
    "shard-primary": 1,
    "shard-standby": 2,
    "rendezvous": 3,
    "phone": 4,
    "node": 5,
}


def sparkline(values: Sequence[float], width: int = 24) -> str:
    """*values* as unicode block characters, right-aligned to *width*.

    Scaling is per-sparkline (min→▁, max→█); a flat series renders as
    all-▁ so "nothing happening" and "steady high load" stay visually
    distinct from a varying series.
    """
    if not values:
        return " " * width
    tail = list(values)[-width:]
    lo = min(tail)
    hi = max(tail)
    span = hi - lo
    if span <= 0:
        line = _BLOCKS[0] * len(tail)
    else:
        line = "".join(
            _BLOCKS[
                min(len(_BLOCKS) - 1, int((value - lo) / span * len(_BLOCKS)))
            ]
            for value in tail
        )
    return line.rjust(width, " ")


@dataclass
class Panel:
    """One sparkline row: a TSDB query rendered over trailing history."""

    title: str
    node: str
    metric: str
    mode: str = "rate"  # "rate" | "p95" | "last"
    match_labels: Dict[str, str] = field(default_factory=dict)
    unit: str = "/s"

    def matches(self, labels: Dict[str, str]) -> bool:
        return all(labels.get(k) == v for k, v in self.match_labels.items())


def default_panels(gateway_node: str = "gateway") -> List[Panel]:
    """The stock cluster panels: forwarded request rate, forwarded
    error rate, the fleet-wide p95 of the forwarded-request latency
    histogram, and the dispatch core's admission-queue depth and shed
    rate (flat zero unless batched dispatch is enabled — the population
    engine enables it; the legacy path never emits these families)."""
    forwarded = {"route": "unmatched"}
    return [
        Panel(
            "req rate", gateway_node, "amnesia_http_requests_total",
            mode="rate", match_labels=forwarded, unit="/s",
        ),
        Panel(
            "5xx rate", gateway_node, "amnesia_http_requests_total",
            mode="rate",
            match_labels=forwarded, unit="/s",
        ),
        Panel(
            "p95 ms", gateway_node, "amnesia_http_request_ms",
            mode="p95", match_labels=forwarded, unit="ms",
        ),
        Panel(
            "disp queue", gateway_node, "amnesia_dispatch_queue_depth",
            mode="last", unit="",
        ),
        Panel(
            "shed rate", gateway_node, "amnesia_dispatch_shed_total",
            mode="rate", unit="/s",
        ),
    ]


def _panel_where(panel: Panel):
    if panel.title == "5xx rate":
        return lambda labels: panel.matches(labels) and labels.get(
            "status", ""
        ).startswith("5")
    return panel.matches


def render_dashboard(
    plane: FleetTelemetry,
    panels: Optional[List[Panel]] = None,
    width: int = 76,
    spark_points: int = 24,
    spark_step_ms: float = 500.0,
    spark_window_ms: float = 2_000.0,
) -> str:
    """The whole dashboard as one deterministic text block."""
    now = plane.kernel.now
    rows = plane.node_rows()
    up = sum(1 for row in rows if row["up"])
    summary = plane.slo_summary()
    firing = summary["alerts_firing"]
    header = (
        f" AMNESIA FLEET  t=+{now / 1000.0:.1f}s"
        f"  nodes {up}/{len(rows)} up  alerts firing: {firing} "
    )
    lines = ["=" * width, header.center(width, " "), "=" * width]

    # -- topology ---------------------------------------------------------
    lines.append("TOPOLOGY")
    for row in sorted(
        rows, key=lambda r: (_ROLE_ORDER.get(str(r["role"]), 9), r["node"])
    ):
        marker = "UP  " if row["up"] else ("STALE" if row["stale"] else "DOWN")
        last = row["last_scrape_ms"]
        age = f"age={((now - last) / 1000.0):.1f}s" if last is not None else "never scraped"
        lines.append(
            f"  {str(row['node']):<16} {str(row['role']):<14} "
            f"{marker:<6} {age}  fails={row['scrape_failures']}"
        )

    # -- series -----------------------------------------------------------
    lines.append("SERIES")
    for panel in panels if panels is not None else default_panels():
        trail = plane.store.sample_trail(
            panel.node,
            panel.metric,
            now,
            spark_points,
            spark_step_ms,
            spark_window_ms,
            mode=panel.mode,
            where=_panel_where(panel),
        )
        last = trail[-1] if trail else 0.0
        lines.append(
            f"  {panel.title:<10} {sparkline(trail, spark_points)} "
            f"{last:8.1f}{panel.unit}"
        )

    # -- traces -----------------------------------------------------------
    if plane.traces is not None:
        from repro.obs.tracestore import critical_edges

        store = plane.traces
        stats = store.stats()
        incomplete = sum(1 for tree in store.traces() if tree.incomplete)
        lines.append("TRACES")
        lines.append(
            f"  kept={stats['traces_kept']}"
            f" sampled_out={stats['traces_sampled_out']}"
            f" incomplete={incomplete}"
            f" pending={stats['pending']}"
            f" spans={stats['spans_ingested']}"
        )
        for tree in store.top(3):
            flags = " INCOMPLETE" if tree.incomplete else ""
            lines.append(
                f"  {tree.trace_id}  {tree.root_duration_ms:8.1f}ms"
                f"  spans={tree.span_count:<3d}"
                f" keep={tree.keep_reason}{flags}"
            )
        for parent, name, count, total in critical_edges(store.traces())[:4]:
            lines.append(
                f"  path {parent} > {name:<24} n={count:<4d}"
                f" {total:8.1f}ms"
            )

    # -- alerts -----------------------------------------------------------
    lines.append("ALERTS")
    slos: Dict[str, Dict] = summary["slos"]  # type: ignore[assignment]
    if not slos:
        lines.append("  (no SLOs declared)")
    for name in sorted(slos):
        entry = slos[name]
        burn = entry.get("burn", {})
        line = (
            f"  {name:<20} {str(entry['state']).upper():<9}"
            f" since=+{float(entry['since_ms']) / 1000.0:.1f}s"
            f" burn fast={burn.get('fast', 0.0):.2f}"
            f" slow={burn.get('slow', 0.0):.2f}"
        )
        exemplar = entry.get("exemplar")
        if exemplar:
            line += f"  corr={exemplar['corr_id']}"
            if "trace_id" in exemplar:
                line += f" trace={exemplar['trace_id']}"
        lines.append(line)
    lines.append("=" * width)
    return "\n".join(lines) + "\n"
