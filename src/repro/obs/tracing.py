"""Dapper-style distributed tracing over the simulation kernel.

PR 1's :mod:`repro.obs.spans` answered *what* a generation's latency is
made of on one server; this module answers *where in the fleet* each
piece happened. A :class:`TraceContext` travels hop to hop — as the
``amnesia-trace`` HTTP header between web tiers, and as a ``trace_ctx``
field inside rendezvous push payloads and replication batches — so one
bilateral exchange (browser → gateway → shard → rendezvous push →
phone compute → ``/token`` return → render) assembles into a single
span tree on the monitor host.

Determinism contract: every id is a hash of sim-deterministic inputs
(the trace id derives from the correlation id, span ids from the trace
id + node + name + a per-tracer counter), and all stamps come from the
kernel clock — the same seed always yields byte-identical traces.
Trace context appears on the wire **only when a deployment installs
tracing**; un-traced runs stay bit-for-bit what they were.

Collection contract: a :class:`Tracer` buffers *ended* spans only. A
span opened on a node that crashes before ending is simply never
exported — the assembled trace is flagged ``incomplete`` by the store
(:mod:`repro.obs.tracestore`) instead of erroring, exactly the tail a
failover investigation wants to see.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.util.errors import ValidationError
from repro.util.logs import NO_CORR_ID, current_corr_id

#: The propagation header: ``<trace_id>-<span_id>-<flags>`` (hex ids,
#: flags ``01`` sampled / ``00`` not). Also the value of the
#: ``trace_ctx`` field on rendezvous pushes and replication batches.
TRACE_HEADER = "amnesia-trace"

_ID_HEX = 16  # 64-bit ids, rendered as 16 hex chars


def _hash16(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:_ID_HEX]


def trace_id_for(corr_id: str) -> str:
    """The deterministic trace id for a correlation id."""
    if not corr_id:
        raise ValidationError("corr_id must be non-empty")
    return _hash16(f"trace|{corr_id}")


@dataclass(frozen=True)
class TraceContext:
    """What actually propagates: trace id, parent span id, sampled flag."""

    trace_id: str
    span_id: str
    sampled: bool = True

    def to_header(self) -> str:
        return f"{self.trace_id}-{self.span_id}-{'01' if self.sampled else '00'}"

    @classmethod
    def from_header(cls, value: str) -> "TraceContext | None":
        """Parse a header value; malformed input yields ``None`` (a
        broken peer must degrade to an un-joined trace, never a 500)."""
        parts = value.strip().split("-")
        if len(parts) != 3:
            return None
        trace_id, span_id, flags = parts
        if len(trace_id) != _ID_HEX or len(span_id) != _ID_HEX:
            return None
        try:
            int(trace_id, 16)
            int(span_id, 16)
        except ValueError:
            return None
        return cls(trace_id=trace_id, span_id=span_id, sampled=flags != "00")


@dataclass(frozen=True)
class TraceSpan:
    """One finished span as exported over ``/spansz``.

    ``seq`` is the per-node export sequence (monotonic buffer position)
    used by the scraper's incremental ``?since=`` protocol; it is not
    part of the span's identity.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    node: str
    kind: str  # "server" | "client" | "internal"
    start_ms: float
    end_ms: float
    status: str = "ok"
    corr_id: str = NO_CORR_ID
    attributes: Dict[str, Any] = field(default_factory=dict)
    events: Tuple[Tuple[float, str], ...] = ()
    seq: int = 0

    def __post_init__(self) -> None:
        if self.end_ms < self.start_ms:
            raise ValidationError(
                f"span {self.name!r} ends before it starts "
                f"({self.end_ms} < {self.start_ms})"
            )

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    def to_wire(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node,
            "kind": self.kind,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "status": self.status,
            "corr_id": self.corr_id,
            "attributes": self.attributes,
            "events": [[t, text] for t, text in self.events],
            "seq": self.seq,
        }

    @classmethod
    def from_wire(cls, doc: Dict[str, Any]) -> "TraceSpan":
        return cls(
            trace_id=str(doc["trace_id"]),
            span_id=str(doc["span_id"]),
            parent_id=doc.get("parent_id"),
            name=str(doc["name"]),
            node=str(doc["node"]),
            kind=str(doc.get("kind", "internal")),
            start_ms=float(doc["start_ms"]),
            end_ms=float(doc["end_ms"]),
            status=str(doc.get("status", "ok")),
            corr_id=str(doc.get("corr_id", NO_CORR_ID)),
            attributes=dict(doc.get("attributes", {})),
            events=tuple(
                (float(t), str(text)) for t, text in doc.get("events", [])
            ),
            seq=int(doc.get("seq", 0)),
        )


class ActiveSpan:
    """A span being recorded: mutable until :meth:`end` freezes it."""

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        sampled: bool,
        kind: str,
        corr_id: str,
        start_ms: float,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.sampled = sampled
        self.kind = kind
        self.corr_id = corr_id
        self.start_ms = start_ms
        self.attributes: Dict[str, Any] = {}
        self.events: List[Tuple[float, str]] = []
        self.ended = False

    @property
    def context(self) -> TraceContext:
        """The context children of this span propagate."""
        return TraceContext(self.trace_id, self.span_id, self.sampled)

    def set_name(self, name: str) -> None:
        if not self.ended:
            self.name = name

    def set_corr_id(self, corr_id: str) -> None:
        if not self.ended and corr_id:
            self.corr_id = corr_id

    def set_attribute(self, key: str, value: Any) -> None:
        if not self.ended:
            self.attributes[key] = value

    def add_event(self, text: str, at_ms: Optional[float] = None) -> None:
        if not self.ended:
            at = self._tracer.clock.now if at_ms is None else at_ms
            self.events.append((at, text))

    def end(self, status: str = "ok", end_ms: Optional[float] = None) -> None:
        """Freeze and export; later calls are ignored (first wins)."""
        if self.ended:
            return
        self.ended = True
        end = self._tracer.clock.now if end_ms is None else end_ms
        self._tracer._export(
            TraceSpan(
                trace_id=self.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                node=self._tracer.node,
                kind=self.kind,
                start_ms=self.start_ms,
                end_ms=end,
                status=status,
                corr_id=self.corr_id,
                attributes=dict(self.attributes),
                events=tuple(self.events),
                seq=self._tracer._next_seq(),
            )
        )


class Tracer:
    """Opens kernel-clock spans on one node; buffers the ended ones.

    The buffer is bounded (*max_spans*; oldest dropped first) and
    served incrementally: :meth:`export_since` answers the scraper's
    ``GET /spansz?since=N`` with every span whose export sequence is
    greater than *N*, so a slow scrape cadence never re-ships history.
    """

    def __init__(self, node: str, clock, max_spans: int = 4096) -> None:
        if max_spans < 1:
            raise ValidationError("max_spans must be >= 1")
        self.node = node
        self.clock = clock
        self.max_spans = max_spans
        self._spans: List[TraceSpan] = []
        self._seq = 0  # export sequence (buffer position)
        self._id_seq = 0  # span-id derivation counter
        self._root_seq = 0  # synthetic corr-ids for roots
        self.spans_started = 0
        self.spans_ended = 0
        self.spans_dropped = 0

    # -- span creation -----------------------------------------------------

    def start_span(
        self,
        name: str,
        parent: Optional[TraceContext] = None,
        corr_id: Optional[str] = None,
        kind: str = "internal",
        start_ms: Optional[float] = None,
    ) -> ActiveSpan:
        """Open a span. With *parent* the span joins that trace; without
        one it roots a new trace whose id derives from *corr_id* (a
        synthetic ``{node}-{n}`` id is minted when none is given — the
        entry hop of an exchange runs before the exchange id exists)."""
        if parent is None:
            if corr_id is None:
                self._root_seq += 1
                corr_id = f"{self.node}-{self._root_seq}"
            trace_id = trace_id_for(corr_id)
            parent_id = None
            sampled = True
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
            sampled = parent.sampled
        if corr_id is None:
            corr_id = current_corr_id()
        self._id_seq += 1
        span_id = _hash16(f"{trace_id}|{self.node}|{name}|{self._id_seq}")
        self.spans_started += 1
        return ActiveSpan(
            self, name, trace_id, span_id, parent_id, sampled,
            kind, corr_id, self.clock.now if start_ms is None else start_ms,
        )

    def record_span(
        self,
        name: str,
        parent: Optional[TraceContext],
        start_ms: float,
        end_ms: float,
        corr_id: Optional[str] = None,
        kind: str = "internal",
        attributes: Optional[Dict[str, Any]] = None,
        status: str = "ok",
    ) -> None:
        """Open-and-end in one call, for spans whose stamps are already
        known (the stage breakdown recorded at ``/token`` time)."""
        span = self.start_span(
            name, parent=parent, corr_id=corr_id, kind=kind, start_ms=start_ms
        )
        for key, value in (attributes or {}).items():
            span.set_attribute(key, value)
        span.end(status=status, end_ms=end_ms)

    # -- buffer ------------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _export(self, span: TraceSpan) -> None:
        self.spans_ended += 1
        self._spans.append(span)
        excess = len(self._spans) - self.max_spans
        if excess > 0:
            del self._spans[:excess]
            self.spans_dropped += excess

    def spans(self) -> List[TraceSpan]:
        return list(self._spans)

    def export_since(self, since: int = 0) -> List[Dict[str, Any]]:
        """Wire documents for every buffered span with ``seq > since``."""
        return [span.to_wire() for span in self._spans if span.seq > since]

    def clear(self) -> None:
        self._spans.clear()


# -- ambient context --------------------------------------------------------
#
# Mirrors the corr-id contextvars in repro.util.logs: bindings wrap
# *synchronous* sections only (the kernel runs callbacks in the driver's
# context), which is exactly the window in which a handler issues its
# outbound calls.

_ctx: contextvars.ContextVar[Optional[TraceContext]] = contextvars.ContextVar(
    "repro_trace_ctx", default=None
)
_span: contextvars.ContextVar[Optional[ActiveSpan]] = contextvars.ContextVar(
    "repro_trace_span", default=None
)


def current_context() -> Optional[TraceContext]:
    """The trace context bound to the current call stack, if any."""
    return _ctx.get()


def current_span() -> Optional[ActiveSpan]:
    """The active span bound to the current call stack, if any (lets
    handler code annotate the span its container opened)."""
    return _span.get()


@contextlib.contextmanager
def bind_context(ctx: Optional[TraceContext]) -> Iterator[None]:
    """Bind a bare context (no active span) for the enclosed block."""
    ctx_token = _ctx.set(ctx)
    span_token = _span.set(None)
    try:
        yield
    finally:
        _span.reset(span_token)
        _ctx.reset(ctx_token)


@contextlib.contextmanager
def bind_span(span: ActiveSpan) -> Iterator[ActiveSpan]:
    """Bind *span* (and its context) for the enclosed block."""
    ctx_token = _ctx.set(span.context)
    span_token = _span.set(span)
    try:
        yield span
    finally:
        _span.reset(span_token)
        _ctx.reset(ctx_token)


# -- header codec ------------------------------------------------------------


def inject(headers: Dict[str, str], ctx: Optional[TraceContext] = None) -> None:
    """Add the ``amnesia-trace`` header from *ctx* (default: the bound
    context); a header already present is left alone."""
    context = ctx if ctx is not None else current_context()
    if context is not None and TRACE_HEADER not in headers:
        headers[TRACE_HEADER] = context.to_header()


def extract(headers: Dict[str, str]) -> Optional[TraceContext]:
    """The trace context carried by *headers*, if any."""
    value = headers.get(TRACE_HEADER)
    if value is None:
        return None
    return TraceContext.from_header(value)
