"""The fleet scraper: polls every node's ``/metricsz`` on the sim clock.

Scrapes are real in-sim HTTP requests from a dedicated monitor host, so
they traverse the same links, TLS channels and fault plane as user
traffic. A crashed or partitioned node therefore does not raise — its
scrape times out, ``amnesia_scrape_up{node}`` drops to 0, and the
node's series in the :class:`~repro.obs.timeseries.TimeSeriesStore` go
*stale* — exactly how a production Prometheus sees an outage.

Tiers without a web server of their own (the rendezvous service, phone
apps) get an :class:`OpsEndpoint`: their status
:class:`~repro.web.app.Application` served over the host's secure stack
under the dedicated ``"ops"`` service. The endpoint doubles as a fault-
plane *companion* process — a host crash wipes all port bindings, so
the ops port must re-bind on restart for scrapes to recover.

:class:`FleetTelemetry` composes store + scraper + SLO evaluator into
the one object testbeds install and dashboards/CLIs read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.certificates import Certificate
from repro.obs.export import parse_prometheus
from repro.obs.timeseries import TimeSeriesStore
from repro.util.errors import ConflictError, ValidationError
from repro.web.http import HttpRequest

#: Service name for out-of-band status/metrics exposure on hosts whose
#: port-443 service (or no service at all) is something else.
OPS_SERVICE = "ops"

DEFAULT_SCRAPE_INTERVAL_MS = 500.0

#: A node is stale once this many scrape intervals pass without success.
STALE_INTERVALS = 2.5


class OpsEndpoint:
    """Serve a status application on a host's secure stack (service
    ``"ops"``), surviving fault-plane crash/restart cycles."""

    def __init__(
        self,
        application,
        host,
        network,
        kernel,
        rng,
        stack=None,
        identity: Optional[str] = None,
        thread_pool_size: int = 2,
    ) -> None:
        from repro.net.tls import SecureServer, SecureStack
        from repro.sim.latency import Constant
        from repro.web.server import SimHttpServer

        self.host = host
        if stack is None:
            stack = SecureStack(host, network, rng)
        self.stack = stack
        if stack.server is None:
            stack.attach_server(SecureServer(identity or f"{host.name}-ops", rng))
        self.secure_server = stack.server
        self.http = SimHttpServer(
            application,
            stack,
            self.secure_server,
            kernel,
            service=OPS_SERVICE,
            compute_latency=Constant(0.2),
            thread_pool_size=thread_pool_size,
        )
        self.certificate = self.secure_server.certificate

    # -- fault-plane companion contract -----------------------------------

    def crash(self) -> None:
        """Nothing beyond what ``Host.crash()`` already did (bindings
        are gone; in-memory sessions survive like any process state the
        schedule chose not to wipe)."""

    def restart(self) -> None:
        """Re-bind the ops port after a crash cleared the host's ports."""
        if self.host.handler_for(self.stack.port) is None:
            self.host.bind(self.stack.port, self.stack._on_datagram)


@dataclass
class ScrapeTarget:
    """One node the scraper polls."""

    name: str  # display/series key — the host name
    host: str  # network host to dial
    certificate: Certificate
    service: str
    role: str = "node"  # gateway | shard-primary | shard-standby | rendezvous | phone


@dataclass
class _TargetState:
    client: object = None
    token: int = 0  # id of the scrape in flight (0 = none)
    up: bool = False
    attempts: int = 0
    failures: int = 0
    last_error: str = ""
    # Span collection (/spansz) cursor: spans with export seq above
    # span_since were already ingested. A separate in-flight token so a
    # slow span pull never blocks the metrics scrape (and vice versa).
    span_token: int = 0
    span_since: int = 0


class FleetScraper:
    """Kernel-scheduled ``/metricsz`` poller over the in-sim network."""

    def __init__(
        self,
        kernel,
        stack,
        store: TimeSeriesStore,
        interval_ms: float = DEFAULT_SCRAPE_INTERVAL_MS,
        timeout_ms: Optional[float] = None,
        registry=None,
    ) -> None:
        if interval_ms <= 0:
            raise ValidationError("scrape interval must be > 0 ms")
        self.kernel = kernel
        self.stack = stack
        self.store = store
        self.interval_ms = interval_ms
        self.timeout_ms = (
            timeout_ms if timeout_ms is not None else 0.9 * interval_ms
        )
        self.targets: Dict[str, ScrapeTarget] = {}
        self._states: Dict[str, _TargetState] = {}
        self._task = None
        self._seq = 0
        # Trace collection (set via attach_trace_store): each round also
        # pulls /spansz incrementally and lets the store decide quiesced
        # traces. None keeps the scraper metrics-only.
        self.trace_store = None
        self._m_attempts = None
        self._m_failures = None
        self._m_samples = None
        if registry is not None:
            self._m_attempts = registry.counter(
                "amnesia_scrape_attempts_total",
                "Scrapes attempted, by node",
                label_names=("node",),
            )
            self._m_failures = registry.counter(
                "amnesia_scrape_failures_total",
                "Scrapes that failed, by node and reason",
                label_names=("node", "reason"),
            )
            self._m_samples = registry.counter(
                "amnesia_scrape_samples_total",
                "Samples ingested into the time-series store, by node",
                label_names=("node",),
            )
            self._m_up = registry.gauge(
                "amnesia_scrape_up",
                "1 when the node's latest scrape succeeded, else 0",
                label_names=("node",),
            )
        else:
            self._m_up = None

    @property
    def stale_after_ms(self) -> float:
        return STALE_INTERVALS * self.interval_ms

    # -- targets ----------------------------------------------------------

    def add_target(
        self,
        name: str,
        host: str,
        certificate: Certificate,
        service: str,
        role: str = "node",
    ) -> ScrapeTarget:
        if name in self.targets:
            raise ConflictError(f"scrape target {name!r} already registered")
        target = ScrapeTarget(name, host, certificate, service, role)
        self.targets[name] = target
        state = _TargetState()
        self._states[name] = state
        if self._m_up is not None:
            self._m_up.labels(node=name).set_function(
                lambda s=state: 1.0 if s.up else 0.0
            )
        return target

    def up(self, name: str) -> bool:
        state = self._states.get(name)
        return bool(state is not None and state.up)

    def state(self, name: str) -> _TargetState:
        return self._states[name]

    # -- the loop ---------------------------------------------------------

    def start(self) -> None:
        """Begin scraping every ``interval_ms`` (idempotent). The loop
        keeps the kernel busy; drivers relying on ``run_until_idle``
        must :meth:`stop` first."""
        if self._task is None or self._task.cancelled:
            self._task = self.kernel.schedule_every(
                self.interval_ms, self.scrape_once, "telemetry-scrape"
            )

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.cancelled

    def attach_trace_store(self, trace_store) -> None:
        """Also collect ``/spansz`` from every target into *trace_store*."""
        self.trace_store = trace_store

    def scrape_once(self) -> None:
        """Fire one scrape round across all targets (sorted order)."""
        for name in sorted(self.targets):
            self._scrape(self.targets[name], self._states[name])
        if self.trace_store is not None:
            for name in sorted(self.targets):
                self._scrape_spans(self.targets[name], self._states[name])
            # Quiesced traces decide on the monitor's clock; traces cut
            # off by a crash/partition settle as *incomplete* trees.
            self.trace_store.gc()

    def _scrape_spans(self, target: ScrapeTarget, state: _TargetState) -> None:
        """Pull the target's ended-span buffer incrementally.

        Failures are silent by design: span collection is best-effort
        on top of the metrics scrape (which already alarms on a down
        node); a crashed or partitioned node simply contributes nothing
        this round, and its traces assemble as partial/incomplete."""
        if state.span_token or state.client is None:
            # No client yet (first metrics scrape still dialling) or a
            # pull outstanding: skip this round rather than stack. The
            # shared channel correlates by sequence id, so running next
            # to the in-flight metrics scrape is fine.
            return
        self._seq += 1
        token = self._seq
        state.span_token = token

        def on_response(response) -> None:
            if state.span_token != token:
                return
            state.span_token = 0
            if response.status != 200:
                return
            try:
                body = response.json()
                docs = body.get("spans", [])
            except Exception:  # noqa: BLE001 - malformed body: skip round
                return
            if docs:
                self.trace_store.ingest(docs)
                state.span_since = max(
                    state.span_since,
                    max(int(doc.get("seq", 0)) for doc in docs),
                )

        def on_error(error: Exception) -> None:
            if state.span_token != token:
                return
            state.span_token = 0

        def on_timeout() -> None:
            if state.span_token == token:
                state.span_token = 0

        state.client.send(
            HttpRequest(
                method="GET",
                path="/spansz",
                query={"since": str(state.span_since)},
            ),
            on_response,
            on_error,
        )
        self.kernel.schedule(self.timeout_ms, on_timeout, "telemetry-span-timeout")

    def _scrape(self, target: ScrapeTarget, state: _TargetState) -> None:
        if state.token:
            # The previous scrape has not concluded; its timeout will
            # mark the miss. Never stack concurrent scrapes per target.
            self._fail(target, state, "overlap", token=None)
            return
        from repro.web.client import SimHttpClient

        if state.client is None:
            state.client = SimHttpClient(
                self.stack,
                self.kernel,
                target.host,
                target.certificate,
                service=target.service,
            )
        self._seq += 1
        token = self._seq
        state.token = token
        state.attempts += 1
        if self._m_attempts is not None:
            self._m_attempts.labels(node=target.name).inc()

        def on_response(response) -> None:
            if state.token != token:
                return  # timed out already; a miss was recorded
            state.token = 0
            if response.status != 200:
                self._fail(target, state, f"status-{response.status}", token)
                return
            try:
                families = parse_prometheus(response.body.decode("utf-8"))
            except Exception:  # noqa: BLE001 - malformed exposition
                self._fail(target, state, "parse", token)
                return
            stored = self.store.ingest(target.name, families, self.kernel.now)
            state.up = True
            state.last_error = ""
            if self._m_samples is not None:
                self._m_samples.labels(node=target.name).inc(stored)

        def on_error(error: Exception) -> None:
            if state.token != token:
                return
            state.token = 0
            self._fail(target, state, "transport", token, detail=str(error))

        def on_timeout() -> None:
            if state.token != token:
                return
            state.token = 0
            self._fail(target, state, "timeout", token)

        state.client.send(
            HttpRequest(method="GET", path="/metricsz"), on_response, on_error
        )
        self.kernel.schedule(self.timeout_ms, on_timeout, "telemetry-scrape-timeout")

    def _fail(
        self,
        target: ScrapeTarget,
        state: _TargetState,
        reason: str,
        token: Optional[int],
        detail: str = "",
    ) -> None:
        state.failures += 1
        state.up = False
        state.last_error = detail or reason
        if self._m_failures is not None:
            self._m_failures.labels(node=target.name, reason=reason).inc()


class FleetTelemetry:
    """Store + scraper + SLO evaluator, one object per deployment.

    Built by ``install_telemetry()`` on the testbeds; read by the
    dashboard, the gateway's ``/statusz`` aggregation and the eval
    harnesses.
    """

    def __init__(
        self,
        kernel,
        stack,
        registry=None,
        interval_ms: float = DEFAULT_SCRAPE_INTERVAL_MS,
        store: Optional[TimeSeriesStore] = None,
    ) -> None:
        from repro.obs.slo import SLOEvaluator

        self.kernel = kernel
        self.registry = registry
        self.store = store if store is not None else TimeSeriesStore()
        self.scraper = FleetScraper(
            kernel, stack, self.store, interval_ms=interval_ms, registry=registry
        )
        self.evaluator = SLOEvaluator(
            self.store, registry=registry, clock=kernel
        )
        # Trace plane (attach_traces): the fleet TraceStore, or None.
        self.traces = None

    # -- delegation conveniences ------------------------------------------

    def attach_traces(self, trace_store) -> None:
        """Wire a :class:`~repro.obs.tracestore.TraceStore` into the
        plane: the scraper pulls every target's ``/spansz`` and SLO
        alert exemplars upgrade from bare corr-ids to stored-trace
        links."""
        self.traces = trace_store
        self.scraper.attach_trace_store(trace_store)
        self.evaluator.set_trace_lookup(trace_store.trace_for_corr)

    def add_target(self, *args, **kwargs) -> ScrapeTarget:
        return self.scraper.add_target(*args, **kwargs)

    def add_slo(self, slo) -> None:
        self.evaluator.add(slo)

    def start(self) -> None:
        """Start scraping and (when SLOs are declared) evaluating."""
        self.scraper.start()
        self.evaluator.start(self.kernel)

    def stop(self) -> None:
        self.scraper.stop()
        self.evaluator.stop()

    @property
    def running(self) -> bool:
        return self.scraper.running

    # -- read side --------------------------------------------------------

    def node_rows(self) -> List[Dict[str, object]]:
        """Per-node status rows for dashboards and ``/statusz``."""
        now = self.kernel.now
        rows: List[Dict[str, object]] = []
        for name in sorted(self.scraper.targets):
            target = self.scraper.targets[name]
            state = self.scraper.state(name)
            rows.append(
                {
                    "node": name,
                    "role": target.role,
                    "up": state.up,
                    "stale": self.store.stale(
                        name, now, self.scraper.stale_after_ms
                    ),
                    "last_scrape_ms": self.store.last_scrape_ms(name),
                    "scrape_failures": state.failures,
                }
            )
        return rows

    def slo_summary(self) -> Dict[str, object]:
        return self.evaluator.summary()
