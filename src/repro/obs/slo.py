"""Declarative SLOs evaluated as multi-window burn-rate alert rules.

An :class:`SLOSpec` names a node-scoped objective over scraped series:

- ``availability`` — the non-5xx ratio of a requests counter (labels
  filtered by ``match_labels``, bad = ``status`` starting with ``5``).
  Burn rate = bad-ratio / error-budget, where the error budget is
  ``1 - objective`` (objective 0.9 → budget 0.1; a burn of 1.0 spends
  the budget exactly as fast as allowed).
- ``latency`` — the windowed p95 of a latency histogram versus
  ``threshold_ms``; burn rate = p95 / threshold.

Each SLO is evaluated over a **fast** and a **slow** window (the
classic multi-window rule: the fast window catches the onset quickly,
the slow window stops a brief blip from paging). The alert condition
requires *both* burns above ``burn_threshold``; sustained breach moves
the alert through a ``pending → firing → resolved`` state machine whose
transitions are timestamped on the sim clock — and therefore replay
bit-identically.

Exported families: ``amnesia_slo_burn_rate{slo,window}``,
``amnesia_slo_alert_state{slo}`` (0 ok / 1 pending / 2 firing /
3 resolved), ``amnesia_alerts_firing`` and
``amnesia_slo_transitions_total{slo,to}``. The gateway folds
:meth:`SLOEvaluator.summary` into its ``/statusz`` detail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.timeseries import TimeSeriesStore
from repro.util.errors import ConflictError, ValidationError

# Alert states (exported as the value of amnesia_slo_alert_state).
OK = "ok"
PENDING = "pending"
FIRING = "firing"
RESOLVED = "resolved"

_STATE_VALUE = {OK: 0.0, PENDING: 1.0, FIRING: 2.0, RESOLVED: 3.0}

DEFAULT_EVAL_INTERVAL_MS = 250.0


@dataclass(frozen=True)
class SLOSpec:
    """One service-level objective over a node's scraped series."""

    name: str
    kind: str  # "availability" | "latency"
    node: str  # scrape-target name whose series feed the rule
    metric: str  # counter family (availability) / histogram family (latency)
    objective: float = 0.999  # availability target (ignored for latency)
    threshold_ms: float = 1000.0  # latency target (ignored for availability)
    fast_window_ms: float = 4_000.0
    slow_window_ms: float = 16_000.0
    burn_threshold: float = 1.0
    for_ms: float = 500.0  # continuous breach before pending → firing
    #: Labels a sample must carry to count (e.g. route="unmatched" keeps
    #: the availability rule on gateway-forwarded client traffic only).
    match_labels: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise ValidationError(f"unknown SLO kind {self.kind!r}")
        if self.kind == "availability" and not (0.0 < self.objective < 1.0):
            raise ValidationError("objective must be in (0, 1)")
        if self.kind == "latency" and self.threshold_ms <= 0:
            raise ValidationError("threshold_ms must be > 0")
        if self.fast_window_ms <= 0 or self.slow_window_ms <= 0:
            raise ValidationError("windows must be > 0")
        if self.slow_window_ms < self.fast_window_ms:
            raise ValidationError("slow window must be >= fast window")
        if self.burn_threshold <= 0:
            raise ValidationError("burn_threshold must be > 0")
        if self.for_ms < 0:
            raise ValidationError("for_ms must be >= 0")

    def matches(self, labels: Dict[str, str]) -> bool:
        return all(labels.get(k) == v for k, v in self.match_labels)


@dataclass(frozen=True)
class Transition:
    """One alert-state change, timestamped on the sim clock."""

    t_ms: float
    slo: str
    from_state: str
    to_state: str


@dataclass
class _AlertState:
    state: str = OK
    pending_since_ms: Optional[float] = None
    since_ms: float = 0.0
    burn: Dict[str, float] = field(default_factory=dict)


class SLOEvaluator:
    """Evaluates SLO specs against the store on a recurring sim tick."""

    def __init__(
        self,
        store: TimeSeriesStore,
        slos: Optional[List[SLOSpec]] = None,
        registry=None,
        clock=None,
    ) -> None:
        self.store = store
        self.registry = registry
        self._clock = clock
        self.slos: Dict[str, SLOSpec] = {}
        self._alerts: Dict[str, _AlertState] = {}
        self.transitions: List[Transition] = []
        self.evaluations = 0
        self._task = None
        # Optional corr-id → TraceTree lookup (set_trace_lookup): firing
        # latency alerts then link the stored trace, not just a corr-id.
        self._trace_lookup = None
        self._m_burn = None
        self._m_state = None
        self._m_transitions = None
        if registry is not None:
            self._m_burn = registry.gauge(
                "amnesia_slo_burn_rate",
                "Error-budget burn rate per SLO and window",
                label_names=("slo", "window"),
            )
            self._m_state = registry.gauge(
                "amnesia_slo_alert_state",
                "Alert state per SLO: 0 ok, 1 pending, 2 firing, 3 resolved",
                label_names=("slo",),
            )
            self._m_transitions = registry.counter(
                "amnesia_slo_transitions_total",
                "Alert-state transitions, by SLO and destination state",
                label_names=("slo", "to"),
            )
            registry.gauge(
                "amnesia_alerts_firing", "SLO alerts currently firing"
            ).set_function(lambda: float(len(self.firing())))
        for slo in slos or []:
            self.add(slo)

    # -- configuration ----------------------------------------------------

    def set_trace_lookup(self, lookup) -> None:
        """Install a ``corr_id -> TraceTree | None`` resolver (the fleet
        trace store); exemplars on firing alerts gain a ``trace_id``."""
        self._trace_lookup = lookup

    def add(self, slo: SLOSpec) -> None:
        if slo.name in self.slos:
            raise ConflictError(f"SLO {slo.name!r} already declared")
        self.slos[slo.name] = slo
        self._alerts[slo.name] = _AlertState()
        if self._m_state is not None:
            self._m_state.labels(slo=slo.name).set(_STATE_VALUE[OK])

    # -- burn computation -------------------------------------------------

    def burn_rate(self, slo: SLOSpec, window_ms: float, now_ms: float) -> float:
        if slo.kind == "availability":
            total = self.store.sum_increase(
                slo.node, slo.metric, window_ms, now_ms, where=slo.matches
            )
            if total <= 0:
                return 0.0
            bad = self.store.sum_increase(
                slo.node,
                slo.metric,
                window_ms,
                now_ms,
                where=lambda labels: slo.matches(labels)
                and labels.get("status", "").startswith("5"),
            )
            return (bad / total) / (1.0 - slo.objective)
        p95 = self.store.histogram_percentile(
            slo.node, slo.metric, 95.0, window_ms, now_ms, where=slo.matches
        )
        if p95 is None:
            return 0.0
        return p95 / slo.threshold_ms

    # -- evaluation tick --------------------------------------------------

    def evaluate(self, now_ms: Optional[float] = None) -> None:
        """One evaluation pass over every SLO (normally kernel-driven)."""
        if now_ms is None:
            if self._clock is None:
                raise ValidationError("evaluate() needs now_ms or a clock")
            now_ms = self._clock.now
        self.evaluations += 1
        for name in sorted(self.slos):
            self._evaluate_one(self.slos[name], self._alerts[name], now_ms)

    def _evaluate_one(
        self, slo: SLOSpec, alert: _AlertState, now_ms: float
    ) -> None:
        fast = self.burn_rate(slo, slo.fast_window_ms, now_ms)
        slow = self.burn_rate(slo, slo.slow_window_ms, now_ms)
        alert.burn = {"fast": fast, "slow": slow}
        if self._m_burn is not None:
            self._m_burn.labels(slo=slo.name, window="fast").set(fast)
            self._m_burn.labels(slo=slo.name, window="slow").set(slow)
        breaching = (
            fast > slo.burn_threshold and slow > slo.burn_threshold
        )
        state = alert.state
        if state in (OK, RESOLVED):
            if breaching:
                self._transition(slo, alert, PENDING, now_ms)
                alert.pending_since_ms = now_ms
                if slo.for_ms == 0:
                    self._transition(slo, alert, FIRING, now_ms)
        elif state == PENDING:
            if not breaching:
                self._transition(slo, alert, OK, now_ms)
                alert.pending_since_ms = None
            elif (
                alert.pending_since_ms is not None
                and now_ms - alert.pending_since_ms >= slo.for_ms
            ):
                self._transition(slo, alert, FIRING, now_ms)
        elif state == FIRING:
            if not breaching:
                self._transition(slo, alert, RESOLVED, now_ms)
                alert.pending_since_ms = None

    def _transition(
        self, slo: SLOSpec, alert: _AlertState, to_state: str, now_ms: float
    ) -> None:
        self.transitions.append(
            Transition(now_ms, slo.name, alert.state, to_state)
        )
        alert.state = to_state
        alert.since_ms = now_ms
        if self._m_state is not None:
            self._m_state.labels(slo=slo.name).set(_STATE_VALUE[to_state])
        if self._m_transitions is not None:
            self._m_transitions.labels(slo=slo.name, to=to_state).inc()

    # -- the loop ---------------------------------------------------------

    def start(
        self, kernel, interval_ms: float = DEFAULT_EVAL_INTERVAL_MS
    ) -> None:
        """Evaluate every *interval_ms* on the kernel (idempotent; no-op
        without declared SLOs so pure-scrape deployments stay idle-able)."""
        if not self.slos:
            return
        if self._task is None or self._task.cancelled:
            self._task = kernel.schedule_every(
                interval_ms, self.evaluate, "slo-evaluate"
            )

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    # -- read side --------------------------------------------------------

    def state_of(self, name: str) -> str:
        return self._alerts[name].state

    def firing(self) -> List[str]:
        return sorted(
            name for name, alert in self._alerts.items() if alert.state == FIRING
        )

    def transitions_for(self, name: str) -> List[Transition]:
        return [t for t in self.transitions if t.slo == name]

    def exemplar_for(self, name: str) -> Optional[Dict[str, object]]:
        """For a latency SLO: the slowest-bucket exemplar of the backing
        histogram in the (shared) live registry — the corr-id that links
        a firing alert to one Chrome-traceable exchange."""
        slo = self.slos.get(name)
        if slo is None or slo.kind != "latency" or self.registry is None:
            return None
        family = self.registry.get(slo.metric)
        if family is None:
            return None

        def best_exemplar(restrict: bool) -> Optional[Tuple[str, float]]:
            best: Optional[Tuple[str, float]] = None
            for values, metric in family.samples():
                labels = dict(zip(family.label_names, values))
                if restrict and not slo.matches(labels):
                    continue
                exemplar = metric.last_exemplar()
                if exemplar is not None and (
                    best is None or exemplar[1] > best[1]
                ):
                    best = exemplar
            return best

        # Prefer the SLO's own series; a child recorded outside any
        # corr binding (the gateway's forward hop) carries no exemplar,
        # so fall back to the family's slowest traced exchange — same
        # requests, observed one hop deeper.
        best = best_exemplar(restrict=True) or best_exemplar(restrict=False)
        if best is None:
            return None
        exemplar: Dict[str, object] = {"corr_id": best[0], "latency_ms": best[1]}
        if self._trace_lookup is not None:
            # Upgrade the bare corr-id to a stored-trace link when the
            # fleet trace store kept (or is still assembling) the trace.
            tree = self._trace_lookup(best[0])
            if tree is not None:
                exemplar["trace_id"] = tree.trace_id
        return exemplar

    def summary(self) -> Dict[str, object]:
        """The aggregate the gateway serves under ``/statusz``."""
        slos: Dict[str, object] = {}
        for name in sorted(self.slos):
            alert = self._alerts[name]
            entry: Dict[str, object] = {
                "state": alert.state,
                "since_ms": alert.since_ms,
                "burn": dict(alert.burn),
            }
            exemplar = self.exemplar_for(name)
            if exemplar is not None and alert.state == FIRING:
                entry["exemplar"] = exemplar
            slos[name] = entry
        return {
            "slos": slos,
            "alerts_firing": len(self.firing()),
            "transitions": len(self.transitions),
        }


def default_fleet_slos(node: str = "gateway") -> List[SLOSpec]:
    """The stock SLO pair every testbed declares against its entry node.

    Both rules watch gateway-forwarded client traffic (``route`` label
    ``unmatched`` — per-route families keep matched routes separate).
    The availability objective is deliberately loose (0.9): a sim
    workload issues tens of requests per window, not thousands, so one
    degraded response must move the burn decisively rather than drown
    in the denominator.
    """
    return [
        SLOSpec(
            name="gateway-availability",
            kind="availability",
            node=node,
            metric="amnesia_http_requests_total",
            objective=0.9,
            fast_window_ms=4_000.0,
            slow_window_ms=16_000.0,
            burn_threshold=1.0,
            for_ms=500.0,
            match_labels=(("route", "unmatched"),),
        ),
        SLOSpec(
            name="gateway-latency-p95",
            kind="latency",
            node=node,
            metric="amnesia_http_request_ms",
            threshold_ms=3_000.0,
            fast_window_ms=4_000.0,
            slow_window_ms=16_000.0,
            burn_threshold=1.0,
            for_ms=500.0,
            match_labels=(("route", "unmatched"),),
        ),
    ]
