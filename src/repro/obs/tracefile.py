"""Chrome ``trace_event`` export for spans and profiler scopes.

The other half of the observability story: the registry aggregates, the
:class:`~repro.obs.spans.SpanRecorder` attributes one exchange's
milliseconds to pipeline stages, and the profiler attributes one
process's microseconds to code scopes — this module serializes any of
them into the JSON format ``chrome://tracing`` and Perfetto consume, so
a generated exchange becomes a picture.

The output follows the Trace Event Format's *JSON object* flavour::

    {"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}

Every span/scope becomes one complete ("X") event with ``ts``/``dur``
in microseconds. Trace-viewer rows are organised the way the Figure 1
pipeline reads:

- each **correlation id** (one password-generation exchange) maps to
  one *process* (``pid``), named via an ``M``-phase ``process_name``
  metadata event, so exchanges stack as separate tracks;
- pipeline stages sit on ``tid`` 1 within their exchange;
- profiler scopes (when a :class:`~repro.obs.profiler.Profiler` is
  given) map to a dedicated ``profiler`` process, one thread, with the
  scope's stack depth preserved by the viewer's own flame nesting —
  Chrome infers nesting from containment of ``[ts, ts+dur)`` ranges.

Determinism: events are emitted sorted by ``(pid, tid, ts, dur, name)``
and the JSON is rendered with sorted keys, so identical recorders
produce byte-identical files — which is what the golden-file test pins.

Span clocks are simulated milliseconds and profiler clocks are
microseconds; both are converted to integer-ish microsecond ``ts``
values but *not* rebased against each other (they are different clocks;
the viewer's per-process timelines keep them readable).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.obs.profiler import ProfileEvent, Profiler
from repro.obs.spans import Span, SpanRecorder
from repro.util.errors import ValidationError

TRACE_SCHEMA = "amnesia-chrome-trace/1"

# pid assignments: exchanges get 1..N in first-seen order; the profiler
# track sits far away so new exchanges never collide with it.
PROFILER_PID = 1_000_000


def _span_event(span: Span, pid: int) -> Dict[str, object]:
    """One pipeline stage as a complete event (ms clock -> µs)."""
    return {
        "name": span.name,
        "cat": "stage",
        "ph": "X",
        "ts": round(span.start_ms * 1000.0, 3),
        "dur": round(span.duration_ms * 1000.0, 3),
        "pid": pid,
        "tid": 1,
        "args": {"corr_id": span.corr_id, "duration_ms": span.duration_ms},
    }


def _scope_event(event: ProfileEvent) -> Dict[str, object]:
    """One profiler scope as a complete event (µs clock)."""
    return {
        "name": event.name,
        "cat": "scope",
        "ph": "X",
        "ts": round(event.start_us, 3),
        "dur": round(event.duration_us, 3),
        "pid": PROFILER_PID,
        "tid": 1,
        "args": {"stack": ";".join(event.path), "depth": event.depth},
    }


def _process_name_event(pid: int, name: str) -> Dict[str, object]:
    return {
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": name},
    }


def chrome_trace(
    spans: Optional[SpanRecorder] = None,
    profiler: Optional[Profiler] = None,
    corr_ids: Optional[Iterable[str]] = None,
) -> Dict[str, object]:
    """Build the trace document from a span recorder and/or profiler.

    *corr_ids* restricts the export to specific exchanges (default: all
    traces the recorder holds, in arrival order). Unknown ids raise, so
    an empty export cannot masquerade as a successful one.
    """
    if spans is None and profiler is None:
        raise ValidationError("need a SpanRecorder and/or a Profiler to export")
    metadata: List[Dict[str, object]] = []
    events: List[Dict[str, object]] = []
    trace_totals: Dict[str, float] = {}
    if spans is not None:
        ids = list(corr_ids) if corr_ids is not None else spans.trace_ids()
        for pid, corr_id in enumerate(ids, start=1):
            trace = spans.trace(corr_id)
            if not trace:
                raise ValidationError(f"no spans recorded for corr_id {corr_id!r}")
            metadata.append(_process_name_event(pid, f"exchange {corr_id}"))
            for span in trace:
                events.append(_span_event(span, pid))
            trace_totals[corr_id] = spans.trace_total_ms(corr_id)
    elif corr_ids is not None:
        raise ValidationError("corr_ids given without a SpanRecorder")
    if profiler is not None and profiler.events:
        metadata.append(_process_name_event(PROFILER_PID, "profiler"))
        for event in profiler.events:
            events.append(_scope_event(event))
    events.sort(
        key=lambda e: (e["pid"], e["tid"], e["ts"], e["dur"], e["name"])
    )
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA,
            "trace_total_ms": {
                corr_id: trace_totals[corr_id] for corr_id in sorted(trace_totals)
            },
        },
    }


def render_chrome_trace(
    spans: Optional[SpanRecorder] = None,
    profiler: Optional[Profiler] = None,
    corr_ids: Optional[Iterable[str]] = None,
) -> str:
    """The trace document as deterministic JSON text."""
    document = chrome_trace(spans=spans, profiler=profiler, corr_ids=corr_ids)
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def write_chrome_trace(
    path: str,
    spans: Optional[SpanRecorder] = None,
    profiler: Optional[Profiler] = None,
    corr_ids: Optional[Iterable[str]] = None,
) -> str:
    """Render and write the trace file; returns *path* for chaining."""
    text = render_chrome_trace(spans=spans, profiler=profiler, corr_ids=corr_ids)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path


def exported_span_sum_ms(document: Dict[str, object], corr_id: str) -> float:
    """Sum of exported stage durations for one exchange, in ms.

    Reads the *document* (not the recorder), so tests can assert the
    exported artifact — not merely the in-memory spans — still accounts
    for the full Figure 3 end-to-end latency.
    """
    total = 0.0
    found = False
    for event in document["traceEvents"]:  # type: ignore[index]
        if (
            event.get("ph") == "X"
            and event.get("cat") == "stage"
            and event.get("args", {}).get("corr_id") == corr_id
        ):
            total += float(event["dur"]) / 1000.0
            found = True
    if not found:
        raise ValidationError(f"no stage events for corr_id {corr_id!r}")
    return total
