"""The whole sharded deployment in one object.

Mirrors :class:`~repro.testbed.AmnesiaTestbed` but scales the server
plane out: N primary/standby shard pairs behind a
:class:`~repro.cluster.gateway.ClusterGateway`, one rendezvous (GCM)
service shared by all shards, a laptop for browsers, and one phone host
per enrolled login.  Browsers and phones are pointed at the *gateway* —
from the client's perspective the cluster is indistinguishable from the
paper's single CherryPy server.

Topology (all on one simulation kernel)::

    laptop ──┐                       ┌── shard-0 ⇄ shard-0b
             ├── gateway ── LAN ─────┤
    phone-* ─┘        │              └── shard-1 ⇄ shard-1b
                      └ probes        (primaries+standbys) ── gcm ── phone-*

Failover wiring: the gateway's ``on_failover`` hook re-registers every
affected phone through the existing ``/phone/reregister`` path — routed
back through the gateway to the promoted standby, which verifies
``P_id`` against its *replicated* verifier (a live proof the op-log
shipped the right rows).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.client.browser import AmnesiaBrowser
from repro.cluster.gateway import (
    DEFAULT_LAG_DEGRADED_THRESHOLD,
    DEFAULT_PROBE_INTERVAL_MS,
    DEFAULT_PROBE_MISS_THRESHOLD,
    DEFAULT_PROBE_TIMEOUT_MS,
    ClusterDirectory,
    ClusterGateway,
)
from repro.cluster.shard import ClusterShard
from repro.core.params import DEFAULT_PARAMS, ProtocolParams
from repro.crypto.randomness import SeededRandomSource
from repro.faults.plane import FaultPlane, FaultSchedule
from repro.net.certificates import CertificateStore
from repro.net.link import Link
from repro.net.network import Network
from repro.net.profiles import FAST_PROFILE, NetworkProfile
from repro.obs.instrument import (
    attach_kernel_stats,
    attach_network_stats,
    attach_rendezvous_stats,
)
from repro.obs.registry import MetricsRegistry
from repro.phone.app import AmnesiaApp, ApprovalPolicy
from repro.phone.device import PhoneDevice
from repro.rendezvous.service import RendezvousService
from repro.server.service import AmnesiaServer
from repro.storage.server_db import ID_NAMESPACE_SPAN
from repro.sim.kernel import Simulator
from repro.sim.latency import Constant
from repro.sim.random import RngRegistry
from repro.util.errors import NetworkError, ValidationError

LAPTOP = "laptop"
GATEWAY = "gateway"
RENDEZVOUS = "gcm"
MONITOR = "monitor"

#: Gateway ↔ shard and primary ↔ standby are same-datacenter hops.
LAN_LATENCY_MS = 0.4


def shard_host(index: int) -> str:
    return f"shard-{index}"


def standby_host(index: int) -> str:
    return f"shard-{index}b"


def phone_host(login: str) -> str:
    return f"phone-{login}"


class ClusterTestbed:
    """N shards + gateway + rendezvous + per-login phones, one kernel."""

    def __init__(
        self,
        shards: int = 2,
        seed: int | str = 0,
        profile: NetworkProfile = FAST_PROFILE,
        params: ProtocolParams = DEFAULT_PARAMS,
        approval: ApprovalPolicy = ApprovalPolicy.AUTO,
        thread_pool_size: int = 10,
        generation_timeout_ms: float = 30_000.0,
        probe_interval_ms: float = DEFAULT_PROBE_INTERVAL_MS,
        probe_timeout_ms: float = DEFAULT_PROBE_TIMEOUT_MS,
        probe_miss_threshold: int = DEFAULT_PROBE_MISS_THRESHOLD,
        lag_degraded_threshold: int = DEFAULT_LAG_DEGRADED_THRESHOLD,
        auto_reregister: bool = True,
        token_session_ttl_ms: float = 0.0,
        batched_dispatch: bool = False,
        batched_render: bool = False,
        worker_processes: int = 0,
    ) -> None:
        if shards < 1:
            raise ValidationError("a cluster needs at least one shard")
        if worker_processes < 0:
            raise ValidationError(
                f"worker_processes must be >= 0, got {worker_processes}"
            )
        self.kernel = Simulator()
        self.rngs = RngRegistry(seed)
        self.network = Network(self.kernel, self.rngs)
        self.params = params
        self.profile = profile
        self.seed = seed
        self.shard_count = shards
        # PR 10 hot-path knobs, remembered so restored shards inherit them.
        self.token_session_ttl_ms = token_session_ttl_ms
        self.batched_dispatch = batched_dispatch
        self.batched_render = batched_render
        self.workers = (
            None
            if worker_processes == 0
            else self._build_worker_pool(worker_processes)
        )
        self.registry = MetricsRegistry()
        attach_kernel_stats(self.kernel, self.registry)
        attach_network_stats(self.network, self.registry)

        def source(name: str) -> SeededRandomSource:
            return SeededRandomSource(f"{seed}|{name}")

        self._source = source
        lan = Constant(LAN_LATENCY_MS)

        # -- hosts + links ----------------------------------------------
        for host in (LAPTOP, GATEWAY, RENDEZVOUS):
            self.network.add_host(host)
        self.network.add_link(Link(LAPTOP, GATEWAY, profile.browser_server))
        for index in range(shards):
            primary, standby = shard_host(index), standby_host(index)
            self.network.add_host(primary)
            self.network.add_host(standby)
            self.network.add_link(Link(GATEWAY, primary, lan))
            self.network.add_link(Link(GATEWAY, standby, lan))
            self.network.add_link(Link(primary, standby, lan))
            self.network.add_link(Link(primary, RENDEZVOUS, profile.server_gcm))
            self.network.add_link(Link(standby, RENDEZVOUS, profile.server_gcm))

        # -- rendezvous --------------------------------------------------
        self.rendezvous = RendezvousService(
            self.network.host(RENDEZVOUS), self.network, source("rendezvous")
        )
        attach_rendezvous_stats(self.rendezvous, self.registry)

        # -- shards ------------------------------------------------------
        self.shards: Dict[str, ClusterShard] = {}
        for index in range(shards):
            name = shard_host(index)
            primary = AmnesiaServer(
                kernel=self.kernel,
                network=self.network,
                host_name=name,
                rng=source(f"{name}-primary"),
                rendezvous_host=RENDEZVOUS,
                params=params,
                thread_pool_size=thread_pool_size,
                generation_timeout_ms=generation_timeout_ms,
                token_session_ttl_ms=token_session_ttl_ms,
                registry=self.registry,
            )
            standby = AmnesiaServer(
                kernel=self.kernel,
                network=self.network,
                host_name=standby_host(index),
                rng=source(f"{name}-standby"),
                rendezvous_host=RENDEZVOUS,
                params=params,
                thread_pool_size=thread_pool_size,
                generation_timeout_ms=generation_timeout_ms,
                token_session_ttl_ms=token_session_ttl_ms,
                registry=self.registry,
            )
            self._apply_hot_path_mode(primary, name, is_primary=True)
            self._apply_hot_path_mode(
                standby, standby_host(index), is_primary=False
            )
            # Distinct id namespace per shard: user/account ids must
            # stay unique fleet-wide, or migrating a user onto another
            # shard would collide with rows that shard allocated itself.
            id_base = index * ID_NAMESPACE_SPAN
            primary.database.id_base = id_base
            standby.database.id_base = id_base
            self.shards[name] = ClusterShard(
                name,
                primary,
                standby,
                self.kernel,
                registry=self.registry,
                rng=self.network.rng_stream(f"repl-{name}"),
            )

        # -- gateway -----------------------------------------------------
        self.directory = ClusterDirectory(self.shards)
        self.gateway = ClusterGateway(
            kernel=self.kernel,
            network=self.network,
            host_name=GATEWAY,
            rng=source("gateway"),
            directory=self.directory,
            registry=self.registry,
            probe_interval_ms=probe_interval_ms,
            probe_timeout_ms=probe_timeout_ms,
            probe_miss_threshold=probe_miss_threshold,
            lag_degraded_threshold=lag_degraded_threshold,
        )
        if auto_reregister:
            self.gateway.on_failover.append(self._reregister_phones)
        if batched_dispatch:
            # The gateway is the saturation point (every op holds a
            # worker for the whole phone round trip); shard primaries
            # got theirs in _apply_hot_path_mode. Distinct service
            # labels: the testbed shares one registry.
            self.gateway.http_server.enable_batched_dispatch(service="gateway")

        # -- client plumbing --------------------------------------------
        self._laptop_stack = None  # built lazily (import cycle free)
        self.pins = CertificateStore()
        self.pins.pin(self.gateway.certificate)
        self.phones: Dict[str, AmnesiaApp] = {}
        self.faults: FaultPlane | None = None
        self.reregistrations: List[str] = []

        # -- telemetry plane (install_telemetry) ------------------------
        self.telemetry = None
        self._monitor_stack = None
        # -- tracing plane (install_tracing) ----------------------------
        self.trace_store = None
        self.tracers: Dict[str, object] = {}
        # -- durability plane (install_durability) ----------------------
        self.durability = None
        self._restore_generation = 0
        # Crash/restart companions (e.g. the gcm ops endpoint) that must
        # ride the fault plane whether it is installed before or after
        # the telemetry plane.
        self._fault_companions: List = []

    # -- hot-path modes (PR 10) ------------------------------------------

    @staticmethod
    def _build_worker_pool(worker_processes: int):
        from repro.cluster.workers import ShardWorkerPool

        return ShardWorkerPool(processes=worker_processes)

    def _apply_hot_path_mode(
        self, server: AmnesiaServer, service: str, is_primary: bool
    ) -> None:
        """Apply the testbed's batched-render / batched-dispatch /
        worker-pool configuration to one server (also used for the
        replacements built by :meth:`restore_shard`, so a restored
        shard serves in the same mode as the one it replaces)."""
        if self.batched_render:
            server.enable_batched_render()
        if self.workers is not None:
            # Workers are stateless; one pool backs every primary. The
            # standby renders only after promotion, and then through
            # the same engine, so it shares the pool too.
            server.batch.attach_workers(self.workers)
        if self.batched_dispatch and is_primary:
            server.http_server.enable_batched_dispatch(service=service)

    def shutdown_workers(self) -> None:
        """Tear down the shared shard worker processes (idempotent);
        call when a worker-mode testbed is done."""
        if self.workers is not None:
            self.workers.close()
            self.workers = None

    # -- fault injection -------------------------------------------------

    def install_fault_plane(
        self, schedule: FaultSchedule | None = None
    ) -> FaultPlane:
        """Attach a :class:`FaultPlane` (idempotent); rendezvous registered
        as a restartable process, shard hosts crash as plain hosts."""

        if self.faults is None:
            self.faults = FaultPlane(self.network, registry=self.registry)
            self.faults.register_process(RENDEZVOUS, self.rendezvous)
            for host_name, companion in self._fault_companions:
                self.faults.register_companion(host_name, companion)
        if schedule is not None:
            self.faults.apply(schedule)
        return self.faults

    def _register_companion(self, host_name: str, companion) -> None:
        self._fault_companions.append((host_name, companion))
        if self.faults is not None:
            self.faults.register_companion(host_name, companion)

    # -- telemetry plane --------------------------------------------------

    def install_telemetry(
        self,
        scrape_interval_ms: float | None = None,
        slos: List | None = None,
        start: bool = True,
    ):
        """Attach the fleet telemetry plane (idempotent): a dedicated
        ``monitor`` host scraping every node's ``/metricsz`` through the
        in-sim network, feeding the TSDB + SLO burn-rate evaluator.

        Gateway and shards are scraped on their serving (https) port;
        the rendezvous and phones — datagram tiers — get an
        :class:`~repro.obs.scrape.OpsEndpoint` on the ``ops`` service.
        With *slos* None the stock fleet SLOs
        (:func:`~repro.obs.slo.default_fleet_slos`) are declared. The
        scrape loop keeps the kernel busy: ``run_until_idle`` drivers
        must ``telemetry.stop()`` first (or pass ``start=False``)."""
        from repro.net.tls import SecureStack
        from repro.obs.scrape import (
            DEFAULT_SCRAPE_INTERVAL_MS,
            OPS_SERVICE,
            FleetTelemetry,
            OpsEndpoint,
        )
        from repro.obs.slo import default_fleet_slos
        from repro.server.service import AMNESIA_SERVICE

        if self.telemetry is not None:
            return self.telemetry
        interval = (
            scrape_interval_ms
            if scrape_interval_ms is not None
            else DEFAULT_SCRAPE_INTERVAL_MS
        )
        lan = Constant(LAN_LATENCY_MS)
        self.network.add_host(MONITOR)
        self.network.add_link(Link(MONITOR, GATEWAY, lan))
        self.network.add_link(Link(MONITOR, RENDEZVOUS, lan))
        for index in range(self.shard_count):
            self.network.add_link(Link(MONITOR, shard_host(index), lan))
            self.network.add_link(Link(MONITOR, standby_host(index), lan))
        # Short retry budget: a scrape that cannot reach its node should
        # fail (and mark staleness) quickly, not hang for seconds.
        self._monitor_stack = SecureStack(
            self.network.host(MONITOR),
            self.network,
            self._source("monitor-stack"),
            retry_timeout_ms=1_000.0,
            max_retries=2,
        )
        self.telemetry = FleetTelemetry(
            self.kernel,
            self._monitor_stack,
            registry=self.registry,
            interval_ms=interval,
        )
        self.telemetry.add_target(
            GATEWAY, GATEWAY, self.gateway.certificate, AMNESIA_SERVICE,
            role="gateway",
        )
        for name in sorted(self.shards):
            shard = self.shards[name]
            self.telemetry.add_target(
                shard.primary.host.name,
                shard.primary.host.name,
                shard.primary.certificate,
                AMNESIA_SERVICE,
                role="shard-primary",
            )
            self.telemetry.add_target(
                shard.standby.host.name,
                shard.standby.host.name,
                shard.standby.certificate,
                AMNESIA_SERVICE,
                role="shard-standby",
            )
        gcm_ops = OpsEndpoint(
            self.rendezvous.status_application(self.registry),
            self.network.host(RENDEZVOUS),
            self.network,
            self.kernel,
            self._source("gcm-ops"),
        )
        self._register_companion(RENDEZVOUS, gcm_ops)
        self.telemetry.add_target(
            RENDEZVOUS, RENDEZVOUS, gcm_ops.certificate, OPS_SERVICE,
            role="rendezvous",
        )
        for login in sorted(self.phones):
            self._add_phone_target(login, self.phones[login])
        for slo in default_fleet_slos() if slos is None else slos:
            self.telemetry.add_slo(slo)
        self.gateway.attach_telemetry(self.telemetry)
        if self.trace_store is not None:
            self.telemetry.attach_traces(self.trace_store)
        if start:
            self.telemetry.start()
        return self.telemetry

    # -- tracing plane ----------------------------------------------------

    def install_tracing(
        self,
        keep_pct: int | None = None,
        slow_ms: float | None = None,
        quiesce_ms: float | None = None,
    ):
        """Attach the distributed tracing plane (idempotent): one
        :class:`~repro.obs.tracing.Tracer` per node — gateway, every
        primary and standby, the rendezvous, and each phone — plus a
        monitor-side :class:`~repro.obs.tracestore.TraceStore` that the
        telemetry scraper feeds from the nodes' ``/spansz`` endpoints.
        Works in either order with :meth:`install_telemetry`; returns
        the trace store."""
        from repro.obs.tracestore import (
            DEFAULT_KEEP_PCT,
            DEFAULT_QUIESCE_MS,
            DEFAULT_SLOW_MS,
            TraceStore,
        )

        if self.trace_store is not None:
            return self.trace_store
        self.trace_store = TraceStore(
            self.kernel,
            quiesce_ms=(
                DEFAULT_QUIESCE_MS if quiesce_ms is None else quiesce_ms
            ),
            keep_pct=DEFAULT_KEEP_PCT if keep_pct is None else keep_pct,
            slow_ms=DEFAULT_SLOW_MS if slow_ms is None else slow_ms,
        )
        self.gateway.bind_tracing(self._tracer_for(GATEWAY))
        for name in sorted(self.shards):
            shard = self.shards[name]
            for server in (shard.primary, shard.standby):
                server.application.bind_tracing(
                    self._tracer_for(server.host.name)
                )
        self.rendezvous.bind_tracing(self._tracer_for(RENDEZVOUS))
        for login in sorted(self.phones):
            self.phones[login].bind_tracing(
                self._tracer_for(phone_host(login))
            )
        if self.telemetry is not None:
            self.telemetry.attach_traces(self.trace_store)
        return self.trace_store

    def _tracer_for(self, node: str):
        from repro.obs.tracing import Tracer

        tracer = self.tracers.get(node)
        if tracer is None:
            tracer = Tracer(node, self.kernel)
            self.tracers[node] = tracer
        return tracer

    # -- durability plane -------------------------------------------------

    def install_durability(
        self,
        trustees: int | None = None,
        threshold: int | None = None,
        interval_ms: float | None = None,
        start: bool = False,
    ):
        """Attach the durability plane (idempotent): one
        :class:`~repro.durability.bundle.DurabilityPlane` bundling every
        shard onto the simulated off-site archive, with the bundle key
        escrowed k-of-n at construction.  With ``start=True`` periodic
        backups tick on the kernel (``run_until_idle`` drivers must
        ``durability.stop()`` first)."""
        from repro.durability.bundle import (
            DEFAULT_BACKUP_INTERVAL_MS,
            DEFAULT_THRESHOLD,
            DEFAULT_TRUSTEES,
            DurabilityPlane,
        )

        if self.durability is not None:
            return self.durability
        self.durability = DurabilityPlane(
            self.kernel,
            self._source("durability"),
            registry=self.registry,
            trustees=DEFAULT_TRUSTEES if trustees is None else trustees,
            threshold=DEFAULT_THRESHOLD if threshold is None else threshold,
            interval_ms=(
                DEFAULT_BACKUP_INTERVAL_MS if interval_ms is None else interval_ms
            ),
        )
        for name in sorted(self.shards):
            self.durability.add_shard(self.shards[name])
        self.gateway.attach_durability(self.durability)
        if start:
            self.durability.start()
        return self.durability

    def crash_shard(self, shard_name: str) -> None:
        """The disaster failover cannot answer: primary AND standby die."""

        shard = self.shards[shard_name]
        shard.link.stop()
        shard.primary.host.crash()
        shard.standby.host.crash()

    def restore_shard(self, shard_name: str, key: bytes | None = None):
        """Cold-restore *shard_name* onto a fresh primary/standby pair
        from the newest archived bundle + op tail, re-join the ring, and
        re-register every affected phone.  *key* is the recovered bundle
        key (defaults to the plane's online copy — drills pass the one
        reconstructed from trustee shares).  Returns the
        :class:`~repro.durability.restore.RestoreReport`."""
        from repro.durability.restore import restore_cold_shard

        if self.durability is None:
            raise ValidationError("install_durability() first")
        bundle = self.durability.archive.newest_bundle(shard_name)
        if bundle is None:
            raise ValidationError(f"no archived bundle for {shard_name!r}")
        self._restore_generation += 1
        generation = self._restore_generation
        lan = Constant(LAN_LATENCY_MS)
        new_primary = f"{shard_name}-r{generation}"
        new_standby = f"{shard_name}-r{generation}b"
        for host in (new_primary, new_standby):
            self.network.add_host(host)
            self.network.add_link(Link(GATEWAY, host, lan))
            self.network.add_link(Link(host, RENDEZVOUS, self.profile.server_gcm))
        self.network.add_link(Link(new_primary, new_standby, lan))
        servers = []
        for role, host in (("primary", new_primary), ("standby", new_standby)):
            server = AmnesiaServer(
                kernel=self.kernel,
                network=self.network,
                host_name=host,
                rng=self._source(f"{shard_name}-restore{generation}-{role}"),
                rendezvous_host=RENDEZVOUS,
                params=self.params,
                token_session_ttl_ms=self.token_session_ttl_ms,
                registry=self.registry,
            )
            self._apply_hot_path_mode(
                server, host, is_primary=role == "primary"
            )
            servers.append(server)
        if self.trace_store is not None:
            for server in servers:
                server.application.bind_tracing(
                    self._tracer_for(server.host.name)
                )
        report = restore_cold_shard(
            shard_name,
            bundle,
            self.durability.bundle_key if key is None else key,
            self.durability.archive,
            servers[0],
            servers[1],
            self.kernel,
            self.directory,
            gateway=self.gateway,
            registry=self.registry,
            rng=self.network.rng_stream(f"repl-{shard_name}-r{generation}"),
        )
        self.shards[shard_name] = report.shard
        self.durability.adopt_restored_shard(report.shard)
        self._reregister_phones(shard_name, report.shard.logins())
        return report

    def _add_phone_target(self, login: str, app: AmnesiaApp) -> None:
        """Expose one phone to the scraper (ops service on its stack)."""
        from repro.obs.scrape import OPS_SERVICE, OpsEndpoint

        host = phone_host(login)
        self.network.add_link(Link(MONITOR, host, Constant(LAN_LATENCY_MS)))
        ops = OpsEndpoint(
            app.status_application(),
            self.network.host(host),
            self.network,
            self.kernel,
            self._source(f"phone-ops-{login}"),
            stack=app.stack,
        )
        self.telemetry.add_target(
            host, host, ops.certificate, OPS_SERVICE, role="phone"
        )

    # -- drivers ---------------------------------------------------------

    def run(self, ms: float) -> None:
        self.kernel.run(until=self.kernel.now + ms)

    def run_until_idle(self) -> None:
        self.kernel.run_until_idle()

    def drive_until(
        self, predicate: Callable[[], bool], max_events: int = 1_000_000
    ) -> None:
        executed = 0
        while not predicate():
            if not self.kernel.step():
                raise NetworkError("simulation drained before condition held")
            executed += 1
            if executed > max_events:
                raise NetworkError("condition not reached within event budget")

    # -- clients ---------------------------------------------------------

    def _stack(self):
        if self._laptop_stack is None:
            from repro.net.tls import SecureStack

            self._laptop_stack = SecureStack(
                self.network.host(LAPTOP), self.network, self._source("laptop-stack")
            )
        return self._laptop_stack

    def new_browser(self) -> AmnesiaBrowser:
        """A fresh browser profile pointed at the *gateway*."""

        browser = AmnesiaBrowser(
            self._stack(),
            self.kernel,
            GATEWAY,
            self.gateway.certificate,
            pins=self.pins,
        )
        browser.http.registry = self.registry
        return browser

    def add_phone(self, login: str) -> AmnesiaApp:
        """Provision a handset for *login* wired to gcm + gateway."""

        host = phone_host(login)
        self.network.add_host(host)
        self.network.add_link(Link(RENDEZVOUS, host, self.profile.gcm_phone))
        self.network.add_link(Link(host, GATEWAY, self.profile.phone_server))
        device = PhoneDevice(self.network, host)
        app = AmnesiaApp(
            kernel=self.kernel,
            device=device,
            rng=self._source(f"phone-{login}"),
            rendezvous_host=RENDEZVOUS,
            server_host=GATEWAY,
            server_certificate=self.gateway.certificate,
            params=self.params,
            approval=ApprovalPolicy.AUTO,
        )
        app.bind_registry(self.registry)
        if self.trace_store is not None:
            app.bind_tracing(self._tracer_for(host))
        self.phones[login] = app
        if self.telemetry is not None:
            self._add_phone_target(login, app)
        return app

    def enroll(self, login: str, master_password: str) -> AmnesiaBrowser:
        """Signup through the gateway, then pair a dedicated phone."""

        browser = self.new_browser()
        browser.signup(login, master_password)
        phone = self.add_phone(login)
        code = browser.start_pairing()
        phone.install()
        outcome: dict[str, bool] = {}
        phone.register(login, code, lambda ok, *__: outcome.update(done=ok))
        self.drive_until(lambda: "done" in outcome)
        if not outcome["done"]:
            raise ValidationError(f"phone pairing failed for {login!r}")
        return browser

    # -- failover support -------------------------------------------------

    def _reregister_phones(self, shard_name: str, logins: List[str]) -> None:
        """``on_failover`` hook: refresh the rendezvous registration of
        every phone whose user lives on the failed shard, via the
        existing ``/phone/reregister`` path (through the gateway, to the
        promoted standby)."""

        for login in logins:
            phone = self.phones.get(login)
            if phone is None:
                continue
            self.reregistrations.append(login)
            phone.refresh_registration(login)

    def shard_of(self, login: str) -> ClusterShard:
        """Where the ring currently homes *login*."""

        return self.directory.shard_for(login)

    def crash_primary(self, shard_name: str) -> None:
        """Hard-crash a shard primary host (stays down)."""

        self.shards[shard_name].primary.host.crash()

    # -- rebalance --------------------------------------------------------

    def decommission(self, shard_name: str) -> List[str]:
        """Remove a shard: snapshot its users onto their new ring homes,
        drop the node from the ring (epoch bump → in-flight dispatches
        against the old ring become detectably stale), then crash both
        of its hosts.  Returns the migrated logins."""

        shard = self.directory.shards.get(shard_name)
        if shard is None:
            raise ValidationError(f"no shard {shard_name!r}")
        database = shard.serving.database
        docs = [
            database.export_user_snapshot(user.login)
            for user in database.all_users()
        ]
        sessions = shard.serving.sessions.all_sessions()
        removed = self.directory.remove_shard(shard_name)
        migrated: List[str] = []
        for doc in docs:
            login = doc["user"]["login"]
            user_id = doc["user"]["user_id"]
            target = self.directory.shard_for(login)
            # Journaled when the target still has a primary: the move
            # itself replicates to the target's standby.
            target.serving.database.apply_user_snapshot(doc)
            for session in sessions:
                # Live sessions follow the user, so browsers stay
                # logged in across a rebalance (also journaled).
                if session.data.get("user_id") == user_id:
                    target.serving.sessions.install(session)
            migrated.append(login)
        removed.link.stop()
        removed.primary.host.crash()
        removed.standby.host.crash()
        return migrated
