"""Opt-in multiprocess shard workers for the vectorized render path.

A Python shard primary is single-threaded at the interpreter level: the
thread-pool *model* shapes queueing, but every SHA-512 + template
render runs on one core. For cluster deployments on real hardware, a
:class:`ShardWorkerPool` fans a large render batch out across forked
worker processes so the machine's other cores do the arithmetic, while
small batches stay inline (a fork round trip costs more than a handful
of renders — ``min_batch`` is the crossover).

Jobs cross the process boundary as plain tuples of the
:class:`~repro.core.batch.RenderJob` fields; results come back in
submission order, so attaching a pool never changes a single derived
value — only where the cycles are spent. The pool degrades gracefully:
if worker processes cannot be created (restricted sandboxes, platforms
without fork), every batch runs inline through the identical code path
and the ``fallback_batches`` counter says so.

The simulation benches never attach workers — wall-clock fork costs
would pollute the deterministic sim-time numbers; this is for the
real-socket deployment and the worker-mode tests.
"""

from __future__ import annotations

import multiprocessing

from repro.util.errors import ValidationError

DEFAULT_MIN_BATCH = 8


def _render_chunk(payload) -> list:
    """Render one chunk of job tuples (runs inside a worker process).

    Top-level by necessity — :mod:`multiprocessing` resolves it by
    qualified name in the child. Engine construction is cheap; the
    65536-entry segment tables live in the module-level cache, so each
    worker builds each charset's table once and reuses it for the rest
    of its life.
    """
    segment_hex_length, job_tuples = payload
    from repro.core.batch import BatchDerivationEngine
    from repro.core.params import DEFAULT_PARAMS, ProtocolParams

    if segment_hex_length == DEFAULT_PARAMS.segment_hex_length:
        params = DEFAULT_PARAMS
    else:
        params = ProtocolParams(segment_hex_length=segment_hex_length)
    engine = BatchDerivationEngine(params)
    return [
        engine.derive(token_hex, oid, seed, charset, length)
        for token_hex, oid, seed, charset, length in job_tuples
    ]


class ShardWorkerPool:
    """A fork-based process pool rendering §III-B batches in parallel.

    One pool can back several engines (the cluster testbed shares one
    across its shard primaries — workers are stateless, so mixing
    shards' jobs is safe). ``close()`` must be called when the owner is
    done; the testbed's ``shutdown_workers`` does this.
    """

    def __init__(
        self,
        processes: int = 2,
        min_batch: int = DEFAULT_MIN_BATCH,
    ) -> None:
        if processes < 1:
            raise ValidationError(f"worker pool needs >= 1 process, got {processes}")
        if min_batch < 1:
            raise ValidationError(f"min_batch must be >= 1, got {min_batch}")
        self.processes = processes
        self.min_batch = min_batch
        self.batches = 0
        self.jobs = 0
        self.fallback_batches = 0
        try:
            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(processes=processes)
        except (OSError, ValueError):
            # No fork available (restricted sandbox / exotic platform):
            # stay correct, run everything inline.
            self._pool = None

    @property
    def using_processes(self) -> bool:
        return self._pool is not None

    def render_batch(self, jobs, segment_hex_length: int = 4) -> list:
        """Render *jobs* across the workers, results in submission order."""
        job_tuples = [
            (job.token_hex, job.oid, job.seed, job.charset, job.length)
            for job in jobs
        ]
        self.batches += 1
        self.jobs += len(job_tuples)
        if self._pool is None:
            self.fallback_batches += 1
            return _render_chunk((segment_hex_length, job_tuples))
        chunks = max(1, min(self.processes, len(job_tuples)))
        size = -(-len(job_tuples) // chunks)  # ceil division
        payloads = [
            (segment_hex_length, job_tuples[start : start + size])
            for start in range(0, len(job_tuples), size)
        ]
        rendered = self._pool.map(_render_chunk, payloads)
        return [password for chunk in rendered for password in chunk]

    def stats(self) -> dict:
        return {
            "processes": self.processes if self._pool is not None else 0,
            "min_batch": self.min_batch,
            "batches": self.batches,
            "jobs": self.jobs,
            "fallback_batches": self.fallback_batches,
        }

    def close(self) -> None:
        """Tear the worker processes down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
