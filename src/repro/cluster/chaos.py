"""Cluster chaos scenarios: the fleet's resilience story, quantified.

The single-server chaos suite (:mod:`repro.eval.chaos`) attacks the
legs of Figure 1's pipeline; this module attacks the *fleet* machinery
the cluster adds on top of it — failover and ring membership — with the
same two-arm structure (client retries on vs off) and the same
determinism contract (identical seeds reproduce the fingerprint
bit-for-bit).

Two canonical scenarios:

- ``shard-crash-mid-exchange``: the user's shard primary is killed
  2 ms into a password generation.  The probe plane flags it dead, the
  gateway promotes the standby and *drains* the stuck exchange —
  re-dispatching it to the promoted replica, which (because the op-log
  shipped ``σ``/``O_id``/ids) regenerates the byte-identical password.
  Both arms succeed: the drain is gateway-side resilience.  The
  retries-on arm is belt-and-braces for the case where the drained
  re-dispatch itself dies and degrades to the retryable 502.
- ``gateway-stale-ring``: with a ``/generate`` dispatch in flight, the
  target shard's primary crashes and an operator decommissions the
  shard (migrating its users, bumping the ring epoch).  The gateway
  detects the epoch mismatch on the transport error, re-resolves the
  user's new home and re-dispatches — so even the *non*-retrying arm
  succeeds with the identical password.  Gateway-side resilience,
  no client cooperation needed.

Every trial runs on a fresh :class:`ClusterTestbed` (a failover is a
one-way door for a testbed: the primary stays dead), seeded from the
scenario name, suite seed, and trial index.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.cluster.testbed import ClusterTestbed
from repro.eval.chaos import _percentile
from repro.faults.retry import RetryPolicy
from repro.obs.health import counter_total
from repro.util.errors import ReproError, ValidationError

#: Browser-side policy for the retries-on arm.  Tuned to the probe
#: plane: the first re-attempt lands inside the failover window
#: (~1 s of missed probes), the later ones well past it.
CLUSTER_RETRY = RetryPolicy(
    max_attempts=6,
    base_delay_ms=200.0,
    multiplier=2.0,
    max_delay_ms=5_000.0,
    jitter=0.5,
)

_LOGIN = "chaos"
_MASTER_PASSWORD = "chaos-master-password"
_CRASH_DELAY_MS = 2.0  # kill the primary this far into the exchange
_ARM_POLL_MS = 1.0  # stale-ring: poll cadence for the in-flight watch
_ARM_DEADLINE_MS = 30_000.0  # stale-ring: give up arming after this
_STALE_RETRY_TIMEOUT_MS = 100.0  # gateway->shard channel impatience


@dataclass(frozen=True)
class ClusterScenario:
    """One named sabotage, armed fresh against every trial's testbed."""

    name: str
    description: str
    arm: Callable[[ClusterTestbed], None]
    settle: Callable[[ClusterTestbed], None]


def _arm_shard_crash(bed: ClusterTestbed) -> None:
    bed.gateway.start_probing()
    shard = bed.shard_of(_LOGIN)
    bed.kernel.schedule(
        _CRASH_DELAY_MS,
        lambda: bed.crash_primary(shard.name),
        label="chaos-crash",
    )


def _settle_shard_crash(bed: ClusterTestbed) -> None:
    bed.gateway.stop_probing()
    bed.run_until_idle()


def _arm_stale_ring(bed: ClusterTestbed) -> None:
    # Impatient internal channel: the dead-host error (and with it the
    # epoch check) surfaces well inside the browser's own budget.
    bed.gateway.stack.retry_timeout_ms = _STALE_RETRY_TIMEOUT_MS
    victim = bed.shard_of(_LOGIN).name
    deadline = bed.kernel.now + _ARM_DEADLINE_MS

    def sabotage() -> None:
        bed.shards[victim].primary.host.crash()
        bed.decommission(victim)

    def sabotage_once_in_flight() -> None:
        if bed.kernel.now > deadline:
            return  # never saw the dispatch: leave the bed un-sabotaged
        # Same-package peek at the gateway's dispatch table: sabotaging
        # before the forward would simply route with the new ring and
        # nothing would be stale.
        dispatched = any(
            entry.request.path.endswith("/generate")
            for entry in bed.gateway._in_flight.values()
        )
        if dispatched:
            sabotage()
        else:
            bed.kernel.schedule(
                _ARM_POLL_MS, sabotage_once_in_flight, label="stale-ring-arm"
            )

    bed.kernel.schedule(
        _ARM_POLL_MS, sabotage_once_in_flight, label="stale-ring-arm"
    )


def _settle_stale_ring(bed: ClusterTestbed) -> None:
    bed.run_until_idle()


CANONICAL_CLUSTER_SCENARIOS: tuple[ClusterScenario, ...] = (
    ClusterScenario(
        "shard-crash-mid-exchange",
        "primary killed 2 ms into a generate; probes promote the standby",
        _arm_shard_crash,
        _settle_shard_crash,
    ),
    ClusterScenario(
        "gateway-stale-ring",
        "shard decommissioned with a /generate dispatch in flight",
        _arm_stale_ring,
        _settle_stale_ring,
    ),
)


@dataclass
class ClusterArmStats:
    """One arm (retries on or off) of one cluster scenario."""

    retries_enabled: bool
    trials: int = 0
    successes: int = 0
    identical: int = 0  # successes whose password matched pre-fault
    samples_ms: tuple[float, ...] = ()
    failovers: int = 0
    stale_ring_refreshes: int = 0
    reregistrations: int = 0

    @property
    def failures(self) -> int:
        return self.trials - self.successes

    @property
    def success_rate(self) -> float:
        return self.successes / self.trials if self.trials else 0.0

    def percentile(self, q: float) -> float:
        return _percentile(self.samples_ms, q)


@dataclass
class ClusterScenarioResult:
    """Both arms of one scenario, ready to render side by side."""

    scenario: ClusterScenario
    with_retries: ClusterArmStats
    without_retries: ClusterArmStats

    def render(self) -> str:
        lines = [
            f"[{self.scenario.name}] {self.scenario.description}",
            f"  {'arm':<12s} {'ok':>5s} {'rate':>6s} {'ident':>6s} "
            f"{'p50 ms':>9s} {'p95 ms':>9s} {'fover':>6s} {'stale':>6s} "
            f"{'rereg':>6s}",
        ]
        for arm, label in (
            (self.with_retries, "retries-on"),
            (self.without_retries, "retries-off"),
        ):
            p50, p95 = arm.percentile(50), arm.percentile(95)
            lines.append(
                f"  {label:<12s} {arm.successes:>2d}/{arm.trials:<2d} "
                f"{arm.success_rate:>5.0%} "
                f"{arm.identical:>6d} "
                f"{'-' if math.isnan(p50) else format(p50, '9.1f'):>9s} "
                f"{'-' if math.isnan(p95) else format(p95, '9.1f'):>9s} "
                f"{arm.failovers:>6d} {arm.stale_ring_refreshes:>6d} "
                f"{arm.reregistrations:>6d}"
            )
        return "\n".join(lines)

    def fingerprint(self) -> str:
        """A compact determinism witness: identical seeds must reproduce
        this string bit-for-bit."""
        parts = [self.scenario.name]
        for arm in (self.with_retries, self.without_retries):
            parts.append(
                f"{arm.successes}/{arm.trials}"
                f":{','.join(f'{s:.3f}' for s in arm.samples_ms)}"
                f":i{arm.identical}"
                f":f{arm.failovers}"
                f":s{arm.stale_ring_refreshes}"
                f":r{arm.reregistrations}"
            )
        return "|".join(parts)


def run_cluster_arm(
    scenario: ClusterScenario,
    seed: int | str,
    trials: int,
    retries: bool,
    shards: int = 2,
) -> ClusterArmStats:
    """One arm: a *fresh* 2-shard fleet per trial, sabotaged mid-generate."""
    if trials < 1:
        raise ValidationError(f"trials must be >= 1, got {trials}")
    stats = ClusterArmStats(retries_enabled=retries)
    samples: list[float] = []
    for trial in range(trials):
        bed = ClusterTestbed(
            shards=shards,
            seed=f"cluster-chaos|{scenario.name}|{seed}|{trial}",
        )
        browser = bed.enroll(_LOGIN, _MASTER_PASSWORD)
        account_id = browser.add_account(_LOGIN, "chaos.example.com")
        # Warm-up under clear skies: the reference password P, and the
        # replication link converged so the standby holds the same rows.
        before = browser.generate_password(account_id)["password"]
        bed.run_until_idle()
        scenario.arm(bed)
        started = bed.kernel.now
        stats.trials += 1
        try:
            after = browser.generate_password(
                account_id,
                retry=CLUSTER_RETRY if retries else None,
                rng=bed.network.rng_stream("cluster-chaos-retry"),
            )["password"]
        except ReproError:
            pass
        else:
            stats.successes += 1
            if after == before:
                stats.identical += 1
            # Latency as the user sees it: every retry and backoff wait.
            samples.append(bed.kernel.now - started)
        scenario.settle(bed)
        stats.failovers += int(
            counter_total(bed.registry, "amnesia_cluster_failovers_total")
        )
        stats.stale_ring_refreshes += int(
            counter_total(
                bed.registry, "amnesia_cluster_stale_ring_refreshes_total"
            )
        )
        stats.reregistrations += len(bed.reregistrations)
    stats.samples_ms = tuple(samples)
    return stats


def run_cluster_scenario(
    scenario: ClusterScenario, seed: int | str = "chaos", trials: int = 2
) -> ClusterScenarioResult:
    return ClusterScenarioResult(
        scenario=scenario,
        with_retries=run_cluster_arm(scenario, seed, trials, retries=True),
        without_retries=run_cluster_arm(scenario, seed, trials, retries=False),
    )


def run_cluster_chaos(
    seed: int | str = "chaos",
    trials: int = 2,
    scenarios: tuple[ClusterScenario, ...] = CANONICAL_CLUSTER_SCENARIOS,
) -> list[ClusterScenarioResult]:
    """The full cluster suite: every scenario, both arms."""
    return [run_cluster_scenario(s, seed, trials) for s in scenarios]


def cluster_suite_fingerprint(results: list[ClusterScenarioResult]) -> str:
    return "\n".join(result.fingerprint() for result in results)
