"""Primary → standby replication: a sequenced row-level op-log.

What needs replicating is exactly the PALPAS insight applied to
Amnesia's Table I: the per-user durable records — the login row with
``O_id`` and the master-password/phone-id verifiers, one ``(µ, d, σ)``
row per account, vault ciphertexts, and the login-throttle counters —
plus the session table, so a browser's cookie keeps resolving after a
failover (the promoted standby answers with the *same* session the
dead primary issued).  Everything else on a shard (TLS identity,
pending exchanges, in-flight timers) is per-process or volatile and is
deliberately NOT shipped.

Three cooperating pieces:

- :class:`OpLog` — the primary's bounded, monotonically sequenced
  journal.  Ops are **row-level** (full rows with explicit primary
  keys), not logical calls: replaying ``create_user`` on a standby
  would let SQLite's AUTOINCREMENT assign a *different* user_id and
  silently break every client-held account id across a failover.
- :class:`JournalingDatabase` / :class:`JournalingThrottle` — proxies
  installed on the primary after construction: every mutation calls
  through and then journals the resulting row state.
- :class:`ReplicaApplier` (standby side) + :class:`ReplicationLink`
  (primary side) — the wire: the link batches ops over a secure
  channel to the standby's ``POST /replicate/ops``; the applier
  enforces contiguity (``seq == applied_seq + 1``) and answers
  ``need_snapshot`` on a gap, at which point the link ships the full
  versioned per-user snapshot set (``amnesia-user-snapshot/1``) to
  ``POST /replicate/snapshot`` and resumes the tail.

Replication lag — ``journal.seq - acked_seq`` — is exported as
``amnesia_cluster_replication_lag_ops{shard=...}`` and feeds the
gateway's degraded threshold.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.faults.retry import (
    RetryPolicy,
    count_retry_attempt,
    count_retry_giveup,
    jittered_delay_ms,
)
from repro.obs import tracing
from repro.server.throttle import LoginThrottle
from repro.storage.server_db import (
    AccountRecord,
    ServerDatabase,
    UserRecord,
)
from repro.util.errors import NotFoundError, ValidationError
from repro.web.app import Application, json_response
from repro.web.http import HttpRequest
from repro.web.sessions import Session, SessionManager

_log = logging.getLogger("repro.cluster.replication")

#: Default bound on the journal: older ops are trimmed, and a standby
#: that fell behind the trim floor catches up from a snapshot instead.
DEFAULT_MAX_OPS = 4_096

#: How long appends coalesce before a flush is pushed to the standby.
DEFAULT_FLUSH_DELAY_MS = 5.0

#: Ops per /replicate/ops batch.
DEFAULT_BATCH_SIZE = 256

DEFAULT_REPLICATION_RETRY = RetryPolicy(
    max_attempts=3,
    base_delay_ms=50.0,
    multiplier=2.0,
    max_delay_ms=1_000.0,
    jitter=0.5,
)

OP_PUT_USER = "put_user"
OP_DELETE_USER = "delete_user"
OP_PUT_ACCOUNT = "put_account"
OP_DELETE_ACCOUNT = "delete_account"
OP_PUT_VAULT = "put_vault"
OP_DELETE_VAULT = "delete_vault"
OP_USER_SNAPSHOT = "user_snapshot"
OP_THROTTLE_SET = "throttle_set"
OP_SESSION_PUT = "session_put"
OP_SESSION_REVOKE = "session_revoke"


@dataclass(frozen=True)
class Op:
    """One sequenced journal entry (payload is JSON-safe).

    *trace_ctx* is the ``amnesia-trace`` header of the request whose
    handler journaled the op (``None`` in untraced deployments — the
    wire encoding is then byte-identical to the pre-tracing format), so
    replication-apply on the standby shows up inside the originating
    trace.
    """

    seq: int
    kind: str
    payload: Dict[str, Any]
    trace_ctx: Optional[str] = None

    def to_wire(self) -> Dict[str, Any]:
        doc = {"seq": self.seq, "kind": self.kind, "payload": self.payload}
        if self.trace_ctx is not None:
            doc["trace_ctx"] = self.trace_ctx
        return doc

    @classmethod
    def from_wire(cls, doc: Dict[str, Any]) -> "Op":
        trace_ctx = doc.get("trace_ctx")
        return cls(
            seq=int(doc["seq"]),
            kind=str(doc["kind"]),
            payload=doc["payload"],
            trace_ctx=str(trace_ctx) if trace_ctx is not None else None,
        )


class OpLog:
    """The primary's bounded, monotonically sequenced journal."""

    def __init__(self, max_ops: int = DEFAULT_MAX_OPS) -> None:
        if max_ops < 1:
            raise ValidationError("max_ops must be >= 1")
        self.max_ops = max_ops
        self.seq = 0
        #: Sequence number of the oldest op still retained, minus one:
        #: ``since(floor)`` is the earliest answerable query.
        self.floor = 0
        #: Durability gate on trimming (PR 7): when set, ops with
        #: sequence above the barrier may NOT be trimmed, however far
        #: the journal overflows ``max_ops``.  The backup plane raises
        #: the barrier only after a bundle covering that sequence is
        #: durably written, so a crash between trim and backup can
        #: never lose acknowledged ops.  ``None`` (no backup plane)
        #: keeps the legacy size-only trimming.
        self.trim_barrier: Optional[int] = None
        self._ops: List[Op] = []
        self._listeners: List[Callable[[], None]] = []

    def on_append(self, listener: Callable[[], None]) -> None:
        self._listeners.append(listener)

    def set_trim_barrier(self, seq: int) -> None:
        """Mark everything up to *seq* as durably backed up; trimming
        may now advance the floor that far (and no further)."""

        if seq < self.floor:
            raise ValidationError(
                f"trim barrier {seq} is below the floor {self.floor}: "
                "those ops are already gone"
            )
        if self.trim_barrier is not None and seq < self.trim_barrier:
            raise ValidationError("trim barrier cannot move backwards")
        self.trim_barrier = seq
        self._trim()  # backlog held for the barrier drains now

    def _trim(self) -> None:
        excess = len(self._ops) - self.max_ops
        if excess <= 0:
            return
        if self.trim_barrier is not None:
            # Retained ops are contiguous from floor+1, so exactly
            # ``barrier - floor`` of the oldest ones are bundle-covered.
            excess = min(excess, max(0, self.trim_barrier - self.floor))
        if excess > 0:
            del self._ops[:excess]
            self.floor = self._ops[0].seq - 1 if self._ops else self.seq

    def append(self, kind: str, payload: Dict[str, Any]) -> Op:
        self.seq += 1
        # Journaling happens synchronously inside the mutating handler,
        # so the handler's trace context (if any) is still bound here.
        ctx = tracing.current_context()
        op = Op(
            seq=self.seq,
            kind=kind,
            payload=payload,
            trace_ctx=ctx.to_header() if ctx is not None else None,
        )
        self._ops.append(op)
        self._trim()
        for listener in list(self._listeners):
            listener()
        return op

    def since(self, seq: int, limit: int = DEFAULT_BATCH_SIZE) -> Optional[List[Op]]:
        """Ops with sequence > *seq* (oldest first), or ``None`` when the
        journal no longer retains them (trimmed → snapshot catch-up)."""

        if seq < self.floor:
            return None
        return [op for op in self._ops if op.seq > seq][:limit]

    def __len__(self) -> int:
        return len(self._ops)


# -- row serialisation ------------------------------------------------------


def user_payload(user: UserRecord) -> Dict[str, Any]:
    return {
        "user_id": user.user_id,
        "login": user.login,
        "oid": user.oid.hex(),
        "mp_hash": user.mp_hash.hex(),
        "mp_salt": user.mp_salt.hex(),
        "reg_id": user.reg_id,
        "pid_hash": user.pid_hash.hex() if user.pid_hash else None,
        "pid_salt": user.pid_salt.hex() if user.pid_salt else None,
    }


def user_from_payload(payload: Dict[str, Any]) -> UserRecord:
    return UserRecord(
        user_id=int(payload["user_id"]),
        login=str(payload["login"]),
        oid=bytes.fromhex(payload["oid"]),
        mp_hash=bytes.fromhex(payload["mp_hash"]),
        mp_salt=bytes.fromhex(payload["mp_salt"]),
        reg_id=payload["reg_id"],
        pid_hash=bytes.fromhex(payload["pid_hash"]) if payload["pid_hash"] else None,
        pid_salt=bytes.fromhex(payload["pid_salt"]) if payload["pid_salt"] else None,
    )


def account_payload(account: AccountRecord) -> Dict[str, Any]:
    return {
        "account_id": account.account_id,
        "user_id": account.user_id,
        "username": account.username,
        "domain": account.domain,
        "seed": account.seed.hex(),
        "charset": account.charset,
        "length": account.length,
    }


def account_from_payload(payload: Dict[str, Any]) -> AccountRecord:
    return AccountRecord(
        account_id=int(payload["account_id"]),
        user_id=int(payload["user_id"]),
        username=str(payload["username"]),
        domain=str(payload["domain"]),
        seed=bytes.fromhex(payload["seed"]),
        charset=str(payload["charset"]),
        length=int(payload["length"]),
    )


# -- primary-side journaling proxies ----------------------------------------


class JournalingDatabase:
    """A :class:`ServerDatabase` proxy that journals every mutation.

    Installed on a shard primary *after* construction (so the TLS
    identity written via ``set_config`` during startup stays local).
    Reads delegate untouched; each mutation calls through and then
    appends the resulting **row state** to the journal.  ``set_config``
    is deliberately not journaled: it is per-server state.
    """

    def __init__(self, inner: ServerDatabase, journal: OpLog) -> None:
        self.inner = inner
        self.journal = journal

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    # -- users ---------------------------------------------------------

    def create_user(self, login, oid, mp_hash, mp_salt) -> UserRecord:
        user = self.inner.create_user(login, oid, mp_hash, mp_salt)
        self.journal.append(OP_PUT_USER, user_payload(user))
        return user

    def _journal_user(self, user_id: int) -> None:
        self.journal.append(
            OP_PUT_USER, user_payload(self.inner.user_by_id(user_id))
        )

    def set_master_password(self, user_id, mp_hash, mp_salt) -> None:
        self.inner.set_master_password(user_id, mp_hash, mp_salt)
        self._journal_user(user_id)

    def set_phone_registration(self, user_id, reg_id, pid_hash, pid_salt) -> None:
        self.inner.set_phone_registration(user_id, reg_id, pid_hash, pid_salt)
        self._journal_user(user_id)

    def clear_phone_registration(self, user_id) -> None:
        self.inner.clear_phone_registration(user_id)
        self._journal_user(user_id)

    def put_user(self, record: UserRecord) -> None:
        self.inner.put_user(record)
        self.journal.append(OP_PUT_USER, user_payload(record))

    def delete_user(self, user_id: int) -> None:
        self.inner.delete_user(user_id)
        self.journal.append(OP_DELETE_USER, {"user_id": user_id})

    # -- accounts ------------------------------------------------------

    def add_account(self, user_id, username, domain, seed, charset, length):
        account = self.inner.add_account(
            user_id, username, domain, seed, charset, length
        )
        self.journal.append(OP_PUT_ACCOUNT, account_payload(account))
        return account

    def _journal_account(self, account_id: int) -> None:
        self.journal.append(
            OP_PUT_ACCOUNT, account_payload(self.inner.account_by_id(account_id))
        )

    def update_seed(self, account_id, seed) -> None:
        self.inner.update_seed(account_id, seed)
        self._journal_account(account_id)

    def update_policy(self, account_id, charset, length) -> None:
        self.inner.update_policy(account_id, charset, length)
        self._journal_account(account_id)

    def put_account(self, record: AccountRecord) -> None:
        self.inner.put_account(record)
        self.journal.append(OP_PUT_ACCOUNT, account_payload(record))

    def delete_account(self, account_id) -> None:
        self.inner.delete_account(account_id)
        self.journal.append(OP_DELETE_ACCOUNT, {"account_id": account_id})

    # -- vault ---------------------------------------------------------

    def store_vault_entry(self, account_id, ciphertext) -> None:
        self.inner.store_vault_entry(account_id, ciphertext)
        self.journal.append(
            OP_PUT_VAULT,
            {"account_id": account_id, "ciphertext": ciphertext.hex()},
        )

    def delete_vault_entry(self, account_id) -> None:
        self.inner.delete_vault_entry(account_id)
        self.journal.append(OP_DELETE_VAULT, {"account_id": account_id})

    # -- snapshots -----------------------------------------------------

    def apply_user_snapshot(self, doc: Dict[str, Any]) -> UserRecord:
        record = self.inner.apply_user_snapshot(doc)
        self.journal.append(OP_USER_SNAPSHOT, {"doc": doc})
        return record


class JournalingThrottle:
    """A :class:`LoginThrottle` proxy journaling per-login state changes.

    The throttle is part of the ISSUE's durable set: without it, a
    failover would reset an attacker's guessing budget — losing exactly
    the "resilient to throttled guessing" property Bonneau's framework
    scores.  Rather than replaying failure events (whose timing the
    standby cannot reproduce), each mutation journals the resulting
    per-login state, which restores deterministically.
    """

    def __init__(self, inner: LoginThrottle, journal: OpLog) -> None:
        self.inner = inner
        self.journal = journal

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def _journal_login(self, login: str) -> None:
        state = self.inner.export_state(login)
        self.journal.append(
            OP_THROTTLE_SET,
            {"login": login, "state": list(state) if state is not None else None},
        )

    def record_failure(self, login: str, now_ms: float) -> None:
        self.inner.record_failure(login, now_ms)
        self._journal_login(login)

    def record_success(self, login: str) -> None:
        self.inner.record_success(login)
        self._journal_login(login)


class JournalingSessions:
    """A :class:`SessionManager` proxy journaling create/revoke.

    Sessions live in memory on the paper's single server; in the
    cluster they must follow the user's shard, or a failover would
    bounce every logged-in browser back to the login page.  Creation
    and revocation are journaled; the idle-clock refresh performed by
    ``resolve`` is deliberately not (it is bookkeeping noise — the
    standby's copy keeps the creation timestamp, well within the idle
    window for any failover that matters).
    """

    def __init__(self, inner: SessionManager, journal: OpLog) -> None:
        self.inner = inner
        self.journal = journal

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def create(self, now_ms: float, **data: Any) -> Session:
        session = self.inner.create(now_ms, **data)
        self.journal.append(OP_SESSION_PUT, session_payload(session))
        return session

    def install(self, session: Session) -> None:
        self.inner.install(session)
        self.journal.append(OP_SESSION_PUT, session_payload(session))

    def revoke(self, token: str) -> None:
        self.inner.revoke(token)
        self.journal.append(OP_SESSION_REVOKE, {"token": token})

    def revoke_all(self, predicate=None) -> int:
        doomed = [
            session.token
            for session in self.inner.all_sessions()
            if predicate is None or predicate(session)
        ]
        for token in doomed:
            self.revoke(token)
        return len(doomed)


def session_payload(session: Session) -> Dict[str, Any]:
    return {
        "token": session.token,
        "created_at_ms": session.created_at_ms,
        "last_seen_ms": session.last_seen_ms,
        "data": dict(session.data),
    }


def session_from_payload(payload: Dict[str, Any]) -> Session:
    return Session(
        token=str(payload["token"]),
        created_at_ms=float(payload["created_at_ms"]),
        last_seen_ms=float(payload["last_seen_ms"]),
        data=dict(payload["data"]),
    )


# -- standby side -----------------------------------------------------------


class ReplicaApplier:
    """Applies journal batches onto a standby's database + throttle.

    Enforces contiguity: an op is applied only when its sequence number
    is exactly ``applied_seq + 1``; already-seen ops are skipped
    (idempotent re-delivery), and a gap answers ``need_snapshot`` so the
    primary falls back to full per-user snapshots.
    """

    def __init__(
        self,
        database: ServerDatabase,
        throttle: LoginThrottle,
        sessions: SessionManager | None = None,
        on_mutate: "Callable[[int | None], Any] | None" = None,
    ) -> None:
        self.database = database
        self.throttle = throttle
        self.sessions = sessions
        # Invalidation feed for the standby core's derivation cache:
        # called with an account id when one account's secrets changed,
        # or ``None`` for a whole-database mutation (user snapshot,
        # full snapshot catch-up). A standby's database mutates here —
        # *underneath* its AmnesiaCore — so without this hook a cached
        # R/P could outlive a replicated seed rotation.
        self.on_mutate = on_mutate
        self.applied_seq = 0
        self.ops_applied = 0
        self.snapshots_applied = 0

    def _mutated(self, account_id: int | None) -> None:
        if self.on_mutate is not None:
            self.on_mutate(account_id)

    # -- op dispatch ---------------------------------------------------

    def _apply_one(self, op: Op) -> None:
        kind, payload = op.kind, op.payload
        if kind == OP_PUT_USER:
            # A user mutation can change O_id-adjacent state; the cheap
            # safe answer is a full derivation-cache clear (rare op).
            self.database.put_user(user_from_payload(payload))
            self._mutated(None)
        elif kind == OP_DELETE_USER:
            self.database.delete_user(int(payload["user_id"]))
            self._mutated(None)
        elif kind == OP_PUT_ACCOUNT:
            self.database.put_account(account_from_payload(payload))
            self._mutated(int(payload["account_id"]))
        elif kind == OP_DELETE_ACCOUNT:
            try:
                self.database.delete_account(int(payload["account_id"]))
            except NotFoundError:
                pass  # already gone (e.g. snapshot superseded the op)
            self._mutated(int(payload["account_id"]))
        elif kind == OP_PUT_VAULT:
            self.database.store_vault_entry(
                int(payload["account_id"]), bytes.fromhex(payload["ciphertext"])
            )
        elif kind == OP_DELETE_VAULT:
            self.database.delete_vault_entry(int(payload["account_id"]))
        elif kind == OP_USER_SNAPSHOT:
            self.database.apply_user_snapshot(payload["doc"])
            self._mutated(None)
        elif kind == OP_THROTTLE_SET:
            state = payload["state"]
            self.throttle.restore_state(
                str(payload["login"]), tuple(state) if state is not None else None
            )
        elif kind == OP_SESSION_PUT:
            if self.sessions is not None:
                self.sessions.install(session_from_payload(payload))
        elif kind == OP_SESSION_REVOKE:
            if self.sessions is not None:
                self.sessions.revoke(str(payload["token"]))
        else:
            raise ValidationError(f"unknown replication op kind {kind!r}")

    def apply_ops(self, ops: List[Op]) -> Dict[str, Any]:
        need_snapshot = False
        for op in ops:
            if op.seq <= self.applied_seq:
                continue  # duplicate delivery: idempotent skip
            if op.seq != self.applied_seq + 1:
                need_snapshot = True  # gap: the journal trimmed past us
                break
            self._apply_one(op)
            self.applied_seq = op.seq
            self.ops_applied += 1
        return {"applied_seq": self.applied_seq, "need_snapshot": need_snapshot}

    def apply_snapshot(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        for user_doc in doc["users"]:
            self.database.apply_user_snapshot(user_doc)
        for login, failures, window_start, locked_until in doc.get("throttle", []):
            self.throttle.restore_state(
                str(login), (float(failures), float(window_start), float(locked_until))
            )
        if self.sessions is not None:
            for payload in doc.get("sessions", []):
                self.sessions.install(session_from_payload(payload))
        self.applied_seq = int(doc["seq"])
        self.snapshots_applied += 1
        # Snapshot catch-up rewrites whole users: every cached
        # derivation on this standby is suspect. Clear them all.
        self._mutated(None)
        return {"applied_seq": self.applied_seq, "need_snapshot": False}

    # -- HTTP surface --------------------------------------------------

    def install_routes(self, app: Application) -> None:
        """Register the replication endpoints on the standby's app."""

        def replicate_ops(request: HttpRequest):
            body = request.json()
            ops = [Op.from_wire(doc) for doc in body.get("ops", [])]
            return json_response(self.apply_ops(ops))

        def replicate_snapshot(request: HttpRequest):
            return json_response(self.apply_snapshot(request.json()))

        app.router.add("POST", "/replicate/ops", replicate_ops)
        app.router.add("POST", "/replicate/snapshot", replicate_snapshot)


# -- primary side: the wire -------------------------------------------------


class ReplicationLink:
    """Ships the journal tail from a primary to its standby.

    Event-driven: an append schedules a coalescing flush; each flush
    sends one batch and, on ack, schedules the next while a tail
    remains.  Sends are retried under a bounded policy (so a dead
    standby cannot wedge the kernel in an endless self-rescheduling
    loop); after a give-up the link goes *stalled* until the next
    append re-arms it.  A crashed primary stops flushing — its host is
    offline and the link checks before transmitting.
    """

    def __init__(
        self,
        kernel,
        journal: OpLog,
        client,
        host,
        shard_name: str,
        snapshot_fn: Callable[[], Dict[str, Any]],
        flush_delay_ms: float = DEFAULT_FLUSH_DELAY_MS,
        batch_size: int = DEFAULT_BATCH_SIZE,
        retry_policy: RetryPolicy = DEFAULT_REPLICATION_RETRY,
        rng=None,
        registry=None,
    ) -> None:
        self.kernel = kernel
        self.journal = journal
        self.client = client  # SimHttpClient from primary host → standby
        self.host = host  # the primary's Host (online check)
        self.shard_name = shard_name
        self.snapshot_fn = snapshot_fn
        self.flush_delay_ms = flush_delay_ms
        self.batch_size = batch_size
        self.retry_policy = retry_policy
        self._rng = rng
        self.registry = registry
        self.acked_seq = 0
        self.batches_sent = 0
        self.snapshots_sent = 0
        self.stalled = False
        self.stopped = False
        self._flush_scheduled = False
        self._in_flight = False
        journal.on_append(self._on_append)

    # -- state ---------------------------------------------------------

    @property
    def lag_ops(self) -> int:
        """How many journaled ops the standby has not acknowledged."""

        return max(0, self.journal.seq - self.acked_seq)

    def stop(self) -> None:
        """Permanently stop the link (failover: the standby is promoted)."""

        self.stopped = True

    # -- flush machinery ------------------------------------------------

    def _on_append(self) -> None:
        self.stalled = False  # new work re-arms a stalled link
        self._schedule_flush()

    def _schedule_flush(self) -> None:
        if (
            self._flush_scheduled
            or self._in_flight
            or self.stopped
            or self.stalled
            or self.lag_ops == 0
        ):
            return
        self._flush_scheduled = True
        self.kernel.schedule(self.flush_delay_ms, self._flush, label="repl-flush")

    def _flush(self) -> None:
        self._flush_scheduled = False
        if self.stopped or self.stalled or not self.host.online:
            return
        if self._in_flight or self.lag_ops == 0:
            return
        batch = self.journal.since(self.acked_seq, limit=self.batch_size)
        if batch is None:
            self._send_snapshot()
        else:
            self._send_ops(batch)

    def _send_ops(self, batch: List[Op]) -> None:
        # Explicit header from the first traced op in the batch: the
        # flush runs from a kernel timer, outside any bound call stack,
        # so ambient propagation cannot reach it. The standby's traced
        # app then records the apply as a span inside that trace.
        headers = None
        for op in batch:
            if op.trace_ctx is not None:
                headers = {tracing.TRACE_HEADER: op.trace_ctx}
                break
        request = HttpRequest.json_request(
            "POST",
            "/replicate/ops",
            {"shard": self.shard_name, "ops": [op.to_wire() for op in batch]},
            headers=headers,
        )
        self._transmit(request, expect_snapshot_hint=True)
        self.batches_sent += 1

    def _send_snapshot(self) -> None:
        doc = self.snapshot_fn()
        request = HttpRequest.json_request("POST", "/replicate/snapshot", doc)
        self._transmit(request, expect_snapshot_hint=False)
        self.snapshots_sent += 1

    def _transmit(self, request, expect_snapshot_hint: bool) -> None:
        if self._in_flight or self.stopped:
            return
        self._in_flight = True
        attempt = {"n": 0}
        started = self.kernel.now
        label = f"replication {self.shard_name}"

        def attempt_send() -> None:
            if self.stopped or not self.host.online:
                self._in_flight = False
                return
            attempt["n"] += 1
            count_retry_attempt(self.registry, label)
            self.client.send(request, on_response, on_error)

        def on_response(response) -> None:
            self._in_flight = False
            if self.stopped:
                return
            if response.status != 200:
                _log.warning(
                    "replication %s: standby answered %d",
                    self.shard_name, response.status,
                )
                self._give_up("bad-status")
                return
            body = response.json()
            self.acked_seq = int(body.get("applied_seq", self.acked_seq))
            if expect_snapshot_hint and body.get("need_snapshot"):
                # Gap on the standby: fall back to the full snapshot now.
                self.kernel.schedule(0.0, self._send_snapshot, label="repl-snap")
                return
            self._schedule_flush()  # more tail? keep draining

        def on_error(error: Exception) -> None:
            if self.stopped or not self.host.online:
                self._in_flight = False
                return
            if self.retry_policy.exhausted(attempt["n"], started, self.kernel.now):
                self._in_flight = False
                count_retry_giveup(self.registry, label, "exhausted")
                self._give_up(str(error))
                return
            # The link was the one caller that silently omitted its rng:
            # constructed without one, a jittered policy degraded to
            # deterministic lockstep retries across every shard. Now the
            # degradation is counted (amnesia_retry_unjittered_total).
            delay = jittered_delay_ms(
                self.retry_policy, attempt["n"], self._rng,
                registry=self.registry, label=label,
            )
            self.kernel.schedule(delay, attempt_send, label="repl-retry")

        attempt_send()

    def _give_up(self, reason: str) -> None:
        self.stalled = True
        _log.warning(
            "replication to standby of %s stalled (%s); lag=%d ops",
            self.shard_name, reason, self.lag_ops,
        )


def build_full_snapshot(
    database: ServerDatabase,
    throttle: LoginThrottle,
    seq: int,
    sessions: SessionManager | None = None,
) -> Dict[str, Any]:
    """The primary's full durable state for snapshot catch-up."""

    doc: Dict[str, Any] = {
        "seq": seq,
        "users": [
            database.export_user_snapshot(user.login)
            for user in database.all_users()
        ],
        "throttle": [list(entry) for entry in throttle.export_all()],
    }
    if sessions is not None:
        doc["sessions"] = [
            session_payload(session) for session in sessions.all_sessions()
        ]
    return doc
