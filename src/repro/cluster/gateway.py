"""The cluster gateway: consistent-hash routing, probing, failover.

A real :class:`~repro.web.app.Application` bound to its own secure
host, exposing the *same* client API as a single Amnesia server — the
browser and the phone talk to the gateway exactly as they talked to the
prototype's CherryPy server — plus the cluster's aggregated health
surface:

- ``GET /healthz`` / ``GET /statusz`` — one ``amnesia-health/1``
  document summarising every shard (degraded when any shard is down or
  any replica lag exceeds the threshold);
- ``GET /metricsz`` — the shared deployment registry with the
  ``amnesia_cluster_*`` families.

Routing: requests are keyed by user login and consistent-hash routed on
the :class:`~repro.cluster.ring.HashRing`.  The login is extracted per
endpoint — from the body for ``/signup``/``/login``/pairing, from the
learned ``pid → login`` map for ``/token`` (the phone's submission
never carries the login), and from the learned ``session → login`` map
for everything cookie-authenticated.  The gateway learns both maps from
traffic it forwards, so no shard state is duplicated.

Failover: ``start_probing()`` polls every shard's serving endpoint with
``GET /healthz``; ``probe_miss_threshold`` consecutive missed probes
flag the shard dead, at which point the gateway promotes the standby,
bumps ``amnesia_cluster_failovers_total``, fires the ``on_failover``
hooks (the testbed uses them to re-register affected phones through
``/phone/reregister``), and drains every in-flight exchange for the
dead shard by re-dispatching it to the promoted standby
(``amnesia_cluster_rerouted_requests_total``).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.cluster.ring import HashRing
from repro.cluster.shard import ClusterShard, make_internal_client
from repro.net.tls import SecureServer, SecureStack
from repro.obs import tracing
from repro.obs.health import install_health_routes, install_node_info
from repro.server.service import AMNESIA_SERVICE
from repro.util.errors import ValidationError
from repro.web.app import Application, Deferred, error_response
from repro.web.http import HttpRequest, HttpResponse
from repro.web.server import SimHttpServer
from repro.web.sessions import SESSION_COOKIE

_log = logging.getLogger("repro.cluster.gateway")

DEFAULT_PROBE_INTERVAL_MS = 500.0
DEFAULT_PROBE_TIMEOUT_MS = 400.0
DEFAULT_PROBE_MISS_THRESHOLD = 2
DEFAULT_LAG_DEGRADED_THRESHOLD = 128

#: Endpoints whose routing login lives in the request body.
_BODY_LOGIN_PATHS = frozenset(
    {"/signup", "/login", "/pair/complete", "/phone/reregister"}
)
#: Endpoints routed via the learned ``pid → login`` map.
_PID_ROUTED_PATHS = frozenset({"/token", "/recover/master/confirm"})


class ClusterDirectory:
    """The authoritative cluster membership: ring + shard records."""

    def __init__(self, shards: Dict[str, ClusterShard], virtual_nodes: int = 64):
        if not shards:
            raise ValidationError("a cluster needs at least one shard")
        self.shards = dict(shards)
        self.ring = HashRing(sorted(shards), virtual_nodes=virtual_nodes)

    @property
    def epoch(self) -> int:
        return self.ring.epoch

    def shard_for(self, login: str) -> ClusterShard:
        return self.shards[self.ring.node_for(login)]

    def remove_shard(self, name: str) -> ClusterShard:
        """Take a shard out of the ring (decommission); bumps the epoch."""

        self.ring.remove_node(name)
        return self.shards.pop(name)

    def install_shard(self, name: str, shard: ClusterShard) -> None:
        """Install (or replace) a shard record under *name* and bump the
        ring epoch — the cold-restore re-join.

        The virtual-node positions depend only on the name, so a
        replaced shard homes exactly the logins the dead one did; the
        epoch bump is what lets every in-flight dispatch against the
        dead node detect staleness and re-route to the restored one.
        """

        self.shards[name] = shard
        if name in self.ring:
            # Same positions, new epoch: remove+add is the bump.
            self.ring.remove_node(name)
        self.ring.add_node(name)


@dataclass
class _InFlight:
    """One forwarded exchange the gateway is still waiting on."""

    request: HttpRequest
    deferred: Deferred
    shard: str
    epoch: int
    login: str
    rerouted: int = 0
    # The gateway server span's context, captured at forward time so
    # re-dispatches (failover drain runs from probe callbacks, outside
    # any bound call stack) still stamp the shard-bound request.
    trace_ctx: Optional[Any] = None


@dataclass
class _ProbeState:
    misses: int = 0
    up: bool = True
    probes_sent: int = 0
    awaiting: Optional[int] = None  # probe id outstanding, if any


class ClusterGateway:
    """Consistent-hash router + failover controller for the shard fleet."""

    def __init__(
        self,
        kernel,
        network,
        host_name: str,
        rng,
        directory: ClusterDirectory,
        registry=None,
        thread_pool_size: int = 32,
        probe_interval_ms: float = DEFAULT_PROBE_INTERVAL_MS,
        probe_timeout_ms: float = DEFAULT_PROBE_TIMEOUT_MS,
        probe_miss_threshold: int = DEFAULT_PROBE_MISS_THRESHOLD,
        lag_degraded_threshold: int = DEFAULT_LAG_DEGRADED_THRESHOLD,
    ) -> None:
        self.kernel = kernel
        self.network = network
        self.host = network.host(host_name)
        self.directory = directory
        self.registry = registry
        self.probe_interval_ms = probe_interval_ms
        self.probe_timeout_ms = probe_timeout_ms
        self.probe_miss_threshold = probe_miss_threshold
        self.lag_degraded_threshold = lag_degraded_threshold
        self.started_ms: float = kernel.now

        # -- learned routing state ------------------------------------
        self._session_logins: Dict[str, str] = {}
        self._pid_logins: Dict[str, str] = {}

        # -- in-flight tracking ---------------------------------------
        self._in_flight: Dict[int, _InFlight] = {}
        self._next_entry_id = 0

        # -- probing / failover ---------------------------------------
        self._probe_states: Dict[str, _ProbeState] = {
            name: _ProbeState() for name in directory.shards
        }
        self._probe_task = None
        self._probe_seq = 0
        # Telemetry plane (attach_telemetry): folds SLO/alert state into
        # the gateway's /statusz aggregate when installed.
        self._telemetry = None
        # Durability plane (attach_durability): backup/escrow state on
        # the same aggregate.
        self._durability = None
        # Distributed tracing (bind_tracing): gateway spans root every
        # client-facing trace; failover drains stamp the affected trees.
        self.tracer = None
        self.on_failover: List[Callable[[str, List[str]], None]] = []
        self.failovers = 0
        self.restores = 0

        # -- the gateway's own web surface ----------------------------
        self.application = Application("gateway")
        install_health_routes(
            self.application,
            "gateway",
            kernel,
            self._status_detail,
            started_ms=self.started_ms,
        )
        if registry is not None:
            self.application.bind_observability(registry, kernel)
        self.application.before_request(self._forward_hook)

        self.secure_server = SecureServer(host_name, rng)
        self.stack = SecureStack(self.host, network, rng)
        self.stack.attach_server(self.secure_server)
        self.http_server = SimHttpServer(
            self.application,
            self.stack,
            self.secure_server,
            kernel,
            service=AMNESIA_SERVICE,
            thread_pool_size=thread_pool_size,
            registry=registry,
        )

        # -- per-backend forwarding clients ----------------------------
        self._clients: Dict[str, Any] = {}

        self._bind_metrics()
        install_node_info(
            registry, host_name, "gateway", kernel, lambda: self.started_ms
        )

    @property
    def certificate(self):
        return self.secure_server.certificate

    # -- metrics -----------------------------------------------------------

    def _bind_metrics(self) -> None:
        if self.registry is None:
            self._m_failovers = None
            self._m_rerouted = None
            self._m_requests = None
            self._m_stale = None
            self._m_probe_misses = None
            return
        self.registry.gauge(
            "amnesia_cluster_ring_size", "Shards currently on the hash ring"
        ).set_function(lambda: float(len(self.directory.ring)))
        self.registry.gauge(
            "amnesia_cluster_ring_epoch", "Ring membership epoch at the gateway"
        ).set_function(lambda: float(self.directory.epoch))
        self._m_failovers = self.registry.counter(
            "amnesia_cluster_failovers_total",
            "Shard primaries declared dead and replaced by their standby",
        )
        self._m_rerouted = self.registry.counter(
            "amnesia_cluster_rerouted_requests_total",
            "In-flight requests re-dispatched to a promoted standby",
        )
        self._m_requests = self.registry.counter(
            "amnesia_cluster_requests_total",
            "Requests forwarded by the gateway, by shard",
            label_names=("shard",),
        )
        self._m_stale = self.registry.counter(
            "amnesia_cluster_stale_ring_refreshes_total",
            "Dispatches retried after the ring changed under them",
        )
        self._m_probe_misses = self.registry.counter(
            "amnesia_cluster_probe_misses_total",
            "Health probes that timed out or errored, by shard",
            label_names=("shard",),
        )

    # -- routing -----------------------------------------------------------

    def _login_for(self, request: HttpRequest) -> str:
        """The routing key (login) for *request*; deterministic fallback
        when the gateway has not learned a mapping (the shard will then
        answer 401/404 exactly as a single server would)."""

        path = request.path
        if path in _BODY_LOGIN_PATHS:
            body = request.json()
            login = str(body.get("login", ""))
            pid_hex = str(body.get("pid", ""))
            if login and pid_hex:
                # Pairing/re-registration: learn pid → login for /token.
                self._pid_logins[pid_hex] = login
            if login:
                return login
            return "?unrouted"
        if path in _PID_ROUTED_PATHS:
            pid_hex = str(request.json().get("pid", ""))
            login = self._pid_logins.get(pid_hex)
            return login if login is not None else f"?pid:{pid_hex[:16]}"
        token = request.cookies.get(SESSION_COOKIE, "")
        login = self._session_logins.get(token)
        return login if login is not None else f"?session:{token[:16]}"

    def _client_for(self, server) -> Any:
        host_name = server.host.name
        client = self._clients.get(host_name)
        if client is None:
            client = make_internal_client(
                self.stack, self.kernel, host_name, server.certificate, self.registry
            )
            self._clients[host_name] = client
        return client

    def _learn_session(self, request: HttpRequest, response: HttpResponse, login: str):
        if request.path in ("/signup", "/login") and response.ok:
            token = response.set_cookies.get(SESSION_COOKIE)
            if token:
                self._session_logins[token] = login

    def register_session(self, token: str, login: str) -> None:
        """Pre-seed the session-token → login routing map.

        The gateway normally learns this mapping by watching /signup
        and /login responses; bulk provisioning (the population engine
        writes users straight into the shard databases) registers the
        sessions it minted here so cookie-routed requests reach the
        right shard without a wire login per user."""
        self._session_logins[token] = login

    def register_pid(self, pid_hex: str, login: str) -> None:
        """Pre-seed the pid → login routing map (same bulk-provisioning
        contract as :meth:`register_session`, for /token routing)."""
        self._pid_logins[pid_hex] = login

    # -- forwarding --------------------------------------------------------

    def _forward_hook(self, request: HttpRequest):
        """``before_request`` middleware: local routes fall through to
        the gateway's own router; everything else is proxied."""

        if self.application.router.resolve(request) is not None:
            return None  # /healthz, /statusz, /metricsz stay local
        return self._forward(request)

    def _forward(self, request: HttpRequest):
        login = self._login_for(request)
        shard_name = self.directory.ring.node_for(login)
        deferred = Deferred()
        self._next_entry_id += 1
        entry_id = self._next_entry_id
        span = tracing.current_span()
        entry = _InFlight(
            request=request,
            deferred=deferred,
            shard=shard_name,
            epoch=self.directory.epoch,
            login=login,
            trace_ctx=span.context if span is not None else None,
        )
        self._in_flight[entry_id] = entry
        self._dispatch(entry_id, entry)
        return deferred

    def _dispatch(self, entry_id: int, entry: _InFlight) -> None:
        shard = self.directory.shards.get(entry.shard)
        if shard is None:
            self._in_flight.pop(entry_id, None)
            entry.deferred.resolve(
                error_response(502, f"shard {entry.shard} left the cluster")
            )
            return
        server = shard.serving
        client = self._client_for(server)
        if entry.trace_ctx is not None:
            entry.request.headers[tracing.TRACE_HEADER] = (
                entry.trace_ctx.to_header()
            )
        if self._m_requests is not None:
            self._m_requests.labels(shard=entry.shard).inc()

        def on_response(response: HttpResponse) -> None:
            if self._in_flight.pop(entry_id, None) is None:
                return  # already answered (e.g. drained during failover)
            self._learn_session(entry.request, response, entry.login)
            entry.deferred.resolve(response)

        def on_error(error: Exception) -> None:
            if entry_id not in self._in_flight:
                return
            # A ring that moved under this dispatch (decommission,
            # failover) is refreshed and the request re-routed once per
            # epoch change; a plain transport error becomes a 502 that
            # the PR-2 client retry plane knows how to handle.
            if self.directory.epoch != entry.epoch:
                entry.epoch = self.directory.epoch
                new_shard = self.directory.ring.node_for(entry.login)
                _log.info(
                    "stale ring: re-routing %s %s from %s to %s",
                    entry.request.method, entry.request.path,
                    entry.shard, new_shard,
                )
                entry.shard = new_shard
                if self._m_stale is not None:
                    self._m_stale.inc()
                self._dispatch(entry_id, entry)
                return
            self._in_flight.pop(entry_id, None)
            entry.deferred.resolve(
                error_response(
                    502, f"shard {entry.shard} unreachable: {error}",
                    retry_after_ms=self.probe_interval_ms,
                )
            )

        client.send(entry.request, on_response, on_error)

    # -- probing -----------------------------------------------------------

    @property
    def probing(self) -> bool:
        return self._probe_task is not None and not self._probe_task.cancelled

    def start_probing(self) -> None:
        """Begin the recurring ``/healthz`` probe loop (idempotent).

        Probes keep the kernel busy, so drivers that rely on
        ``run_until_idle`` must :meth:`stop_probing` first.
        """

        if self.probing:
            return
        self._probe_task = self.kernel.schedule_every(
            self.probe_interval_ms, self._probe_tick, "cluster-probe"
        )

    def stop_probing(self) -> None:
        if self._probe_task is not None:
            self._probe_task.cancel()
            self._probe_task = None

    def _probe_tick(self) -> None:
        for name in list(self.directory.shards):
            self._probe_shard(name)

    def _probe_shard(self, name: str) -> None:
        shard = self.directory.shards.get(name)
        state = self._probe_states.setdefault(name, _ProbeState())
        if shard is None or state.awaiting is not None:
            return  # decommissioned, or previous probe still outstanding
        self._probe_seq += 1
        probe_id = self._probe_seq
        state.awaiting = probe_id
        state.probes_sent += 1
        client = self._client_for(shard.serving)
        request = HttpRequest(method="GET", path="/healthz")

        def miss(reason: str) -> None:
            if state.awaiting != probe_id:
                return  # a newer probe took over, or this one answered
            state.awaiting = None
            state.misses += 1
            if self._m_probe_misses is not None:
                self._m_probe_misses.labels(shard=name).inc()
            _log.debug("probe miss %d/%d for %s (%s)",
                       state.misses, self.probe_miss_threshold, name, reason)
            if state.misses >= self.probe_miss_threshold:
                state.up = False
                self._failover(name)

        def on_response(response: HttpResponse) -> None:
            if state.awaiting != probe_id:
                return  # answered after the timeout already counted a miss
            state.awaiting = None
            if response.status == 200:
                state.misses = 0
                state.up = True
            else:
                miss_now()

        def miss_now() -> None:
            state.awaiting = probe_id  # restore so miss() accepts it
            miss("unhealthy-status")

        def on_error(error: Exception) -> None:
            miss(str(error))

        def on_timeout() -> None:
            miss("probe-timeout")

        client.send(request, on_response, on_error)
        self.kernel.schedule(self.probe_timeout_ms, on_timeout, "cluster-probe-timeout")

    # -- failover ----------------------------------------------------------

    def _failover(self, name: str) -> None:
        shard = self.directory.shards.get(name)
        if shard is None or shard.failed_over:
            return
        affected = shard.logins()
        _log.warning(
            "failing over shard %s to standby %s (%d users, lag=%d ops)",
            name, shard.standby.host.name, len(affected), shard.link.lag_ops,
        )
        shard.promote()
        self.failovers += 1
        if self._m_failovers is not None:
            self._m_failovers.inc()
        # Forget the dead primary's client so future dispatches (and
        # probes) dial the promoted standby instead.
        self._clients.pop(shard.primary.host.name, None)
        state = self._probe_states.setdefault(name, _ProbeState())
        state.misses = 0
        state.up = True
        state.awaiting = None
        # Drain: every exchange still waiting on the dead primary is
        # re-dispatched to the promoted standby. Responses the primary
        # never sent are regenerated; Deferred.resolve is first-wins, so
        # a late duplicate from the wire stays harmless.
        for entry_id, entry in list(self._in_flight.items()):
            if entry.shard != name:
                continue
            entry.rerouted += 1
            if self._m_rerouted is not None:
                self._m_rerouted.inc()
            if self.tracer is not None and entry.trace_ctx is not None:
                # A point event in the trace: this exchange was drained
                # off the dead primary onto the promoted standby.
                self.tracer.record_span(
                    "gateway.failover_drain",
                    parent=entry.trace_ctx,
                    start_ms=self.kernel.now,
                    end_ms=self.kernel.now,
                    kind="internal",
                    attributes={
                        "shard": name,
                        "promoted": shard.serving.host.name,
                    },
                )
            self._dispatch(entry_id, entry)
        for hook in list(self.on_failover):
            hook(name, affected)

    # -- cold restore ------------------------------------------------------

    def note_restored(self, name: str) -> None:
        """A cold-restored shard just re-joined under *name*: reset its
        probe verdict and drop forwarding clients that dial dead hosts,
        so the next dispatch and the next probe both reach the new pair."""

        state = self._probe_states.setdefault(name, _ProbeState())
        state.misses = 0
        state.up = True
        state.awaiting = None
        for host_name in list(self._clients):
            if not self.network.host(host_name).online:
                self._clients.pop(host_name)
        self.restores += 1

    # -- aggregated health -------------------------------------------------

    def _status_detail(self) -> Dict[str, Any]:
        """One ``amnesia-health/1`` detail summarising every shard."""

        shards: Dict[str, Any] = {}
        any_down = False
        worst_lag = 0
        for name in sorted(self.directory.shards):
            shard = self.directory.shards[name]
            state = self._probe_states.setdefault(name, _ProbeState())
            lag = shard.lag_ops
            worst_lag = max(worst_lag, lag)
            if not state.up:
                any_down = True
            shards[name] = {
                "state": "failed-over" if shard.failed_over else "primary",
                "serving_host": shard.serving.host.name,
                "up": state.up,
                "lag_ops": lag,
                "probe_misses": state.misses,
                "users": len(shard.serving.database.all_users()),
            }
        degraded = any_down or worst_lag > self.lag_degraded_threshold
        detail = {
            "degraded": degraded,
            "ring": {
                "size": len(self.directory.ring),
                "epoch": self.directory.epoch,
                "nodes": self.directory.ring.nodes,
            },
            "shards": shards,
            "replication": {
                "worst_lag_ops": worst_lag,
                "lag_degraded_threshold": self.lag_degraded_threshold,
            },
            "failovers_total": self.failovers,
            "restores_total": self.restores,
            "in_flight": len(self._in_flight),
            "probing": self.probing,
        }
        if self._telemetry is not None:
            # The cluster's SLO/alert aggregate rides the same document,
            # so one /statusz answers "is the fleet burning its budget?"
            detail["slo"] = self._telemetry.slo_summary()
        if self._durability is not None:
            # Backup age / escrow shape on the same aggregate: one
            # /statusz also answers "could we restore this fleet?"
            detail["durability"] = self._durability.status()
        return detail

    # -- telemetry ---------------------------------------------------------

    def bind_tracing(self, tracer) -> None:
        """Attach a :class:`~repro.obs.tracing.Tracer`: the gateway's
        application roots a trace per forwarded exchange, downstream
        shard spans join via the ``amnesia-trace`` header, and failover
        drains are stamped onto the affected traces."""
        self.tracer = tracer
        self.application.bind_tracing(tracer)

    def attach_telemetry(self, telemetry) -> None:
        """Fold a :class:`~repro.obs.scrape.FleetTelemetry`'s SLO state
        into this gateway's ``/statusz`` aggregate."""
        self._telemetry = telemetry

    def attach_durability(self, plane) -> None:
        """Fold a :class:`~repro.durability.bundle.DurabilityPlane`'s
        backup/escrow state into this gateway's ``/statusz`` aggregate."""
        self._durability = plane
