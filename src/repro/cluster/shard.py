"""One cluster shard: a primary/standby pair of Amnesia servers.

The shard owns the replication machinery between the pair:

- the primary's ``database``/``throttle`` are wrapped in the journaling
  proxies (after construction, so the TLS identity each server writes
  via ``set_config`` stays per-process);
- the standby runs a full, passive :class:`AmnesiaServer` whose
  database is fed exclusively by the :class:`ReplicaApplier` routes;
- a :class:`ReplicationLink` ships the journal tail primary → standby
  over a secure channel on the shard's LAN link.

``promote()`` is the failover primitive: it stops replication and marks
the standby as the serving endpoint.  The promoted standby serves from
its replicated database — same user ids, same account ids, same seeds —
so a password generated through it is byte-identical to one the dead
primary would have produced.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.cluster.replication import (
    JournalingDatabase,
    JournalingSessions,
    JournalingThrottle,
    OpLog,
    ReplicaApplier,
    ReplicationLink,
    build_full_snapshot,
)
from repro.server.service import AMNESIA_SERVICE, AmnesiaServer
from repro.web.client import CookieJar, SimHttpClient


class _NullJar(CookieJar):
    """A cookie jar that never stores or attaches anything.

    Cluster-internal clients (replication, gateway forwarding, probes)
    must not accumulate cookies: a jar shared across forwarded requests
    would leak one user's session cookie into another user's request.
    """

    def update(self, origin: str, set_cookies: Dict[str, str]) -> None:
        return

    def cookies_for(self, origin: str) -> Dict[str, str]:
        return {}


def make_internal_client(
    stack, kernel, host_name: str, certificate, registry=None
) -> SimHttpClient:
    """A cluster-internal HTTP client with cookie handling disabled."""

    client = SimHttpClient(stack, kernel, host_name, certificate, AMNESIA_SERVICE)
    client.jar = _NullJar()
    client.registry = registry
    return client


class ClusterShard:
    """A named primary/standby pair with an op-log between them."""

    def __init__(
        self,
        name: str,
        primary: AmnesiaServer,
        standby: AmnesiaServer,
        kernel,
        registry=None,
        rng=None,
        max_ops: int | None = None,
    ) -> None:
        self.name = name
        self.primary = primary
        self.standby = standby
        self.kernel = kernel
        self.registry = registry
        self.failed_over = False

        # -- journal + primary-side proxies (installed post-construction,
        # so each server's TLS identity set_config stayed local) --------
        self.journal = OpLog() if max_ops is None else OpLog(max_ops=max_ops)
        primary.database = JournalingDatabase(primary.database, self.journal)
        primary.throttle = JournalingThrottle(primary.throttle, self.journal)
        primary.sessions = JournalingSessions(primary.sessions, self.journal)

        # -- standby-side applier + routes -------------------------------
        self.applier = ReplicaApplier(
            standby.database,
            standby.throttle,
            sessions=standby.sessions,
            # Replication mutates the standby's database underneath its
            # core; stale cached derivations (R, rendered P) must die
            # with the rows they were computed from.
            on_mutate=standby.invalidate_derivations,
        )
        self.applier.install_routes(standby.application)

        # -- the wire -----------------------------------------------------
        self._repl_client = make_internal_client(
            primary.stack, kernel, standby.host.name, standby.certificate, registry
        )
        self.link = ReplicationLink(
            kernel=kernel,
            journal=self.journal,
            client=self._repl_client,
            host=primary.host,
            shard_name=name,
            snapshot_fn=lambda: build_full_snapshot(
                self.primary.database,
                self.primary.throttle,
                self.journal.seq,
                sessions=self.primary.sessions,
            ),
            rng=rng,
            registry=registry,
        )

        if registry is not None:
            registry.gauge(
                "amnesia_cluster_replication_lag_ops",
                "Journaled ops not yet acknowledged by the shard standby",
                label_names=("shard",),
            ).labels(shard=name).set_function(lambda: float(self.lag_ops))

    # -- serving state -----------------------------------------------------

    @property
    def serving(self) -> AmnesiaServer:
        """The server currently answering this shard's traffic."""

        return self.standby if self.failed_over else self.primary

    @property
    def lag_ops(self) -> int:
        """Unacknowledged ops (0 once the shard has failed over)."""

        return 0 if self.failed_over else self.link.lag_ops

    def promote(self) -> AmnesiaServer:
        """Fail over to the standby; returns the newly serving server."""

        if not self.failed_over:
            self.failed_over = True
            self.link.stop()
        return self.standby

    # -- introspection -----------------------------------------------------

    def logins(self) -> list:
        """Logins stored on this shard (from the serving database)."""

        return [user.login for user in self.serving.database.all_users()]

    def status(self) -> Dict[str, Any]:
        return {
            "state": "failed-over" if self.failed_over else "primary",
            "serving_host": self.serving.host.name,
            "lag_ops": self.lag_ops,
            "journal_seq": self.journal.seq,
            "applied_seq": self.applier.applied_seq,
            "users": len(self.serving.database.all_users()),
        }
