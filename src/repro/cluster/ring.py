"""Consistent-hash ring with virtual nodes.

Routes a user key (the login) to a shard.  The classic construction:
each node contributes ``virtual_nodes`` points on a 64-bit circle
(derived from SHA-256, so placement is deterministic across processes,
seeds, and platforms — no dependence on Python's randomized ``hash``),
and a key is owned by the first node point clockwise from the key's
hash.  Removing one of N nodes therefore remaps only the keys that were
owned by that node — about K/N of K keys — instead of reshuffling
nearly everything the way ``hash(key) % N`` does.

``nodes_for(key, n)`` returns the first ``n`` *distinct* nodes
clockwise, which the cluster uses for replica placement: the replica is
the next distinct node, never the primary.

The ring carries an ``epoch`` counter, bumped on every membership
change.  The gateway embeds its epoch in routing decisions so a test
(or a chaos scenario) can detect "gateway routed with a stale ring" —
the cluster equivalent of a stale DNS entry.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.util.errors import ValidationError

DEFAULT_VIRTUAL_NODES = 64

_HASH_BITS = 64
_HASH_MASK = (1 << _HASH_BITS) - 1


def ring_hash(value: str) -> int:
    """Deterministic 64-bit point for a string (SHA-256 prefix)."""

    digest = hashlib.sha256(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & _HASH_MASK


class HashRing:
    """Consistent-hash ring mapping string keys to named nodes."""

    def __init__(
        self,
        nodes: Iterable[str] = (),
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ) -> None:
        if virtual_nodes < 1:
            raise ValidationError("virtual_nodes must be >= 1")
        self.virtual_nodes = virtual_nodes
        self.epoch = 0
        self._nodes: Dict[str, None] = {}
        self._points: List[Tuple[int, str]] = []
        self._keys: List[int] = []
        for node in nodes:
            self.add_node(node)

    # -- membership ------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        """Current members, sorted (deterministic regardless of join order)."""

        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ValidationError(f"node {node!r} already on the ring")
        self._nodes[node] = None
        self._rebuild()
        self.epoch += 1

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise ValidationError(f"node {node!r} not on the ring")
        del self._nodes[node]
        self._rebuild()
        self.epoch += 1

    def _rebuild(self) -> None:
        # The point set is a pure function of the membership SET: each
        # node's points depend only on its own name, so insertion order
        # cannot change routing and a rebuilt ring in another process
        # routes identically.
        points: List[Tuple[int, str]] = []
        for node in self._nodes:
            for index in range(self.virtual_nodes):
                points.append((ring_hash(f"{node}#{index}"), node))
        points.sort()
        self._points = points
        self._keys = [point for point, _ in points]

    # -- routing ---------------------------------------------------------

    def node_for(self, key: str) -> str:
        """The shard owning ``key`` (first node point clockwise)."""

        if not self._points:
            raise ValidationError("ring is empty")
        index = bisect.bisect_right(self._keys, ring_hash(key))
        if index == len(self._points):
            index = 0  # wrap around the circle
        return self._points[index][1]

    def nodes_for(self, key: str, count: int) -> List[str]:
        """First ``count`` distinct nodes clockwise from ``key``.

        Element 0 is the primary (== ``node_for``); element 1 is where
        the replica goes — by construction never the primary.
        """

        if not self._points:
            raise ValidationError("ring is empty")
        if count < 1:
            raise ValidationError("count must be >= 1")
        found: List[str] = []
        start = bisect.bisect_right(self._keys, ring_hash(key))
        total = len(self._points)
        for offset in range(total):
            node = self._points[(start + offset) % total][1]
            if node not in found:
                found.append(node)
                if len(found) == count or len(found) == len(self._nodes):
                    break
        return found

    # -- rebalance bookkeeping -------------------------------------------

    def assignment(self, keys: Sequence[str]) -> Dict[str, str]:
        """key -> node for a batch (handy for rebalance diffs)."""

        return {key: self.node_for(key) for key in keys}


def moved_keys(
    before: Dict[str, str], after: Dict[str, str]
) -> List[str]:
    """Keys whose owner changed between two assignments (sorted)."""

    return sorted(
        key for key, node in before.items() if after.get(key) != node
    )
