"""Sharded Amnesia cluster: consistent-hash gateway, replication, failover.

The paper's prototype is a single CherryPy server — both the scale
ceiling and the "massive central point of failure" that MFDPG (Nair &
Song) criticizes in centralized password managers.  PALPAS (Horsch et
al.) observes that the state which actually needs synchronising is the
small per-account salt/seed record — exactly Amnesia's ``σ_A``/``O_id``
rows (Table I).  This package scales the server plane horizontally
while keeping that state replicated:

- :mod:`repro.cluster.ring` — consistent-hash ring with virtual nodes;
  routes a user's login to a shard, deterministic rebalance on
  membership change.
- :mod:`repro.cluster.replication` — sequenced row-level op-log from
  each shard primary to its standby, with versioned per-user snapshot
  catch-up (``amnesia-user-snapshot/1``).
- :mod:`repro.cluster.shard` — a primary/standby pair of
  ``AmnesiaServer`` processes wired together by a replication link.
- :mod:`repro.cluster.gateway` — the client-facing application:
  consistent-hash routing, health probing, failover (standby promotion,
  phone re-registration, in-flight drain), aggregated
  ``/statusz``/``/metricsz``.
- :mod:`repro.cluster.testbed` — ``ClusterTestbed``: the full
  deployment inside the simulator.
- :mod:`repro.cluster.chaos` — cluster chaos scenarios (shard crash
  mid-exchange, stale ring at the gateway).
"""

from repro.cluster.gateway import ClusterDirectory, ClusterGateway
from repro.cluster.replication import OpLog, ReplicaApplier, ReplicationLink
from repro.cluster.ring import HashRing
from repro.cluster.shard import ClusterShard
from repro.cluster.testbed import ClusterTestbed

__all__ = [
    "ClusterDirectory",
    "ClusterGateway",
    "ClusterShard",
    "ClusterTestbed",
    "HashRing",
    "OpLog",
    "ReplicaApplier",
    "ReplicationLink",
]
