"""Bounded, invalidation-correct caching of the §III-B derivations.

The server recomputes two pure values on every hot request:

- ``R = H(µ_A || d_A || σ_A)`` — recomputed for every push to the
  phone, although it only changes when the account's username, domain
  or seed changes;
- ``P = template(H(T || O_id || σ_A))`` — recomputed for every token
  arrival and for every §VIII session-mechanism hit, although for a
  fixed ``(T, O_id, σ_A, policy)`` it is a constant.

Both derivations are deterministic functions of durable secrets, so
caching them is safe *iff* invalidation tracks every way those secrets
can change:

- **seed rotation** (``POST /accounts/{id}/rotate``) — per-account
  invalidation;
- **policy change / account delete** — per-account invalidation;
- **phone-compromise recovery** (``POST /recover/phone``) — full clear
  (the whole entry table, and with it every token, is being retired);
- **replication** — a standby's database mutates underneath its core
  via the op-log/snapshot applier, so
  :class:`repro.cluster.replication.ReplicaApplier` forwards every
  database mutation to the standby core's cache
  (:meth:`repro.server.service.AmnesiaCore.invalidate_derivations`).

Belt and braces: every key embeds a fingerprint of the inputs
(seed/oid bytes, charset, length), so even a missed invalidation can
only cost a stale *entry* (a miss), never a stale *value*. The
explicit invalidation exists to bound memory and drop dead entries
promptly, not to guarantee correctness.

Observability: hits and misses per family flow into the registry as
``amnesia_derivation_cache_hits_total{family=...}`` /
``amnesia_derivation_cache_misses_total{family=...}``, evictions into
``amnesia_derivation_cache_evictions_total{family=...}``, and
``/statusz`` carries the per-family entry counts + hit rates.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Tuple

from repro.util.errors import ValidationError

CACHE_HITS_COUNTER = "amnesia_derivation_cache_hits_total"
CACHE_MISSES_COUNTER = "amnesia_derivation_cache_misses_total"
CACHE_EVICTIONS_COUNTER = "amnesia_derivation_cache_evictions_total"

#: Cache families: ``request`` holds R values, ``render`` holds final
#: passwords P keyed by the full derivation fingerprint.
FAMILY_REQUEST = "request"
FAMILY_RENDER = "render"

DEFAULT_MAX_ENTRIES = 4_096


class LruCache:
    """A bounded least-recently-used map with hit/miss/eviction counts.

    Keys are ``(owner_id, *fingerprint)`` tuples; ``invalidate_owner``
    drops every entry belonging to one owner (an account), ``clear``
    drops everything. The scan in ``invalidate_owner`` is O(size), which
    is fine at the default bound; the bound itself is what keeps a
    million-user fleet from turning the cache into a second database.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValidationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple[Hashable, ...], Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple[Hashable, ...]) -> Any | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def peek(self, key: Tuple[Hashable, ...]) -> Any | None:
        """Look up *key* without touching hit/miss counters or LRU order.

        The batch flush path uses this to partition a drained batch
        into hits and misses *before* deciding what to render; the
        authoritative (counted) lookup still happens per entry via
        :meth:`get`, so cache statistics stay identical to the scalar
        path.
        """
        return self._entries.get(key)

    def put(self, key: Tuple[Hashable, ...], value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate_owner(self, owner_id: Hashable) -> int:
        doomed = [key for key in self._entries if key[0] == owner_id]
        for key in doomed:
            del self._entries[key]
        self.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> int:
        count = len(self._entries)
        self._entries.clear()
        self.invalidations += count
        return count

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DerivationCache:
    """The server's two derivation families behind one facade."""

    def __init__(
        self,
        registry=None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> None:
        self.registry = registry
        self._families: Dict[str, LruCache] = {
            FAMILY_REQUEST: LruCache(max_entries),
            FAMILY_RENDER: LruCache(max_entries),
        }
        if registry is not None:
            self._hits = registry.counter(
                CACHE_HITS_COUNTER,
                "Derivation cache hits, by family",
                label_names=("family",),
            )
            self._misses = registry.counter(
                CACHE_MISSES_COUNTER,
                "Derivation cache misses, by family",
                label_names=("family",),
            )
            self._evictions = registry.counter(
                CACHE_EVICTIONS_COUNTER,
                "Derivation cache LRU evictions, by family",
                label_names=("family",),
            )
        else:
            self._hits = self._misses = self._evictions = None

    # -- core operation ------------------------------------------------------

    def get_or_compute(
        self,
        family: str,
        owner_id: Hashable,
        fingerprint: Tuple[Hashable, ...],
        compute: Callable[[], Any],
    ) -> Any:
        """The cached value for ``(owner_id, *fingerprint)``, computing
        and storing it on a miss. The fingerprint must embed every input
        of *compute* so a stale entry can never alias a fresh value."""
        cache = self._family(family)
        key = (owner_id, *fingerprint)
        value = cache.get(key)
        if value is not None:
            if self._hits is not None:
                self._hits.labels(family=family).inc()
            return value
        if self._misses is not None:
            self._misses.labels(family=family).inc()
        value = compute()
        before = cache.evictions
        cache.put(key, value)
        if self._evictions is not None and cache.evictions > before:
            self._evictions.labels(family=family).inc(cache.evictions - before)
        return value

    def peek(
        self,
        family: str,
        owner_id: Hashable,
        fingerprint: Tuple[Hashable, ...],
    ) -> Any | None:
        """Uncounted, order-preserving lookup (see :meth:`LruCache.peek`)."""
        return self._family(family).peek((owner_id, *fingerprint))

    # -- invalidation --------------------------------------------------------

    def invalidate_account(self, account_id: Hashable) -> int:
        """Drop every cached derivation for one account (seed rotation,
        policy change, deletion, replicated account mutation)."""
        return sum(
            cache.invalidate_owner(account_id)
            for cache in self._families.values()
        )

    def clear(self) -> int:
        """Drop everything (recovery, snapshot apply, promotions)."""
        return sum(cache.clear() for cache in self._families.values())

    # -- introspection -------------------------------------------------------

    def _family(self, family: str) -> LruCache:
        try:
            return self._families[family]
        except KeyError:
            raise ValidationError(f"unknown cache family {family!r}") from None

    def stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-family counters for ``/statusz``."""
        return {
            name: {
                "entries": len(cache),
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "invalidations": cache.invalidations,
                "hit_rate": round(cache.hit_rate, 4),
            }
            for name, cache in self._families.items()
        }
