"""Vault encryption for user-chosen passwords (§VIII future work).

§VIII: "users can pick password properties ... However, they are unable
to store specific chosen passwords. We plan to address these two issues
in the future by including a vault and a session mechanism."

The vault keeps the bilateral property: the encryption key is derived
from the same intermediate value ``p = H(T || O_id || σ)`` that password
generation uses, so *opening* a vault entry requires the phone's token
exactly like generating a password does. A server breach yields only
AEAD ciphertext whose key needs the 256-bit ``T``.

Rotating an account's seed σ changes ``p`` and therefore the key;
stored entries become undecryptable by design (the server deletes them
on rotation and tells the user to re-store).
"""

from __future__ import annotations

from repro.crypto.aead import aead_decrypt, aead_encrypt
from repro.crypto.hkdf import hkdf
from repro.crypto.randomness import RandomSource
from repro.util.errors import CryptoError, RecoveryError

_INFO = b"amnesia-vault-v1"
_NONCE_SIZE = 12


def vault_key(intermediate_hex: str) -> bytes:
    """Derive the per-account vault key from the bilateral intermediate."""
    return hkdf(
        ikm=bytes.fromhex(intermediate_hex), salt=b"", info=_INFO, length=32
    )


def seal_entry(key: bytes, password: str, rng: RandomSource) -> bytes:
    """Encrypt a chosen password; returns ``nonce || ciphertext || tag``."""
    nonce = rng.token_bytes(_NONCE_SIZE)
    return nonce + aead_encrypt(key, nonce, password.encode("utf-8"), aad=_INFO)


def open_entry(key: bytes, blob: bytes) -> str:
    """Decrypt a vault entry; raises :class:`RecoveryError` if the key no
    longer matches (e.g. the seed was rotated underneath the entry)."""
    if len(blob) < _NONCE_SIZE:
        raise RecoveryError("vault entry corrupted (too short)")
    nonce, sealed = blob[:_NONCE_SIZE], blob[_NONCE_SIZE:]
    try:
        plaintext = aead_decrypt(key, nonce, sealed, aad=_INFO)
    except CryptoError as error:
        raise RecoveryError(
            "vault entry cannot be decrypted — the account seed changed "
            "since it was stored; re-store the password"
        ) from error
    return plaintext.decode("utf-8")
