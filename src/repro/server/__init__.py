"""The Amnesia web server (§III-A2, §V-A).

Owns the server-side secret ``Ks`` and functional variables ``Vf``,
serves the web API the browser talks to, pushes password requests to
the phone through the rendezvous service, and finishes password
generation when the token returns. Components mirror the prototype's
three parts: user interaction & sessions, cryptography, and the
database handler.
"""

from repro.server.service import AmnesiaCore, AmnesiaServer, AMNESIA_SERVICE
from repro.server.metrics import LatencySample
from repro.server.pending import PendingRegistry, PendingExchange
from repro.server.throttle import LoginThrottle

__all__ = [
    "AmnesiaCore",
    "AmnesiaServer",
    "AMNESIA_SERVICE",
    "LatencySample",
    "PendingRegistry",
    "PendingExchange",
    "LoginThrottle",
]
