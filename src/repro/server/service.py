"""The Amnesia web server: endpoints, secrets, and orchestration.

The server implements the six-step flow of Figure 1 plus registration
and both recovery protocols:

- browser endpoints (session-cookie authenticated): signup/login,
  account CRUD, password generation (a *blocking* request that resolves
  when the phone's token arrives), recovery initiation;
- phone endpoints: CAPTCHA pairing completion, token submission,
  master-change confirmation — all authenticated by presenting ``P_id``
  which the server verifies against its stored ``H(P_id + salt)``;
- the rendezvous publisher used to push password requests to the phone.

Fidelity note: the paper does not specify how the server authenticates
the phone's token message; we verify the hashed ``P_id`` exactly as the
paper's own master-password recovery step does (§III-C2), which
prevents token forgery by a rendezvous eavesdropper without adding any
new secret.
"""

from __future__ import annotations

import base64
import inspect
from typing import Any

from repro.core.batch import AccountDerivation, BatchDerivationEngine, RenderJob
from repro.core.params import DEFAULT_PARAMS, ProtocolParams
from repro.core.protocol import (
    generate_request,
    intermediate_value,
)
from repro.core.recovery import decode_backup
from repro.core.registration import CaptchaRegistrar
from repro.core.secrets import EntryTable, generate_oid, generate_seed
from repro.core.templates import MAX_PASSWORD_LENGTH, PasswordPolicy
from repro.crypto.hashing import salted_hash, verify_salted_hash
from repro.crypto.randomness import RandomSource
from repro.net.network import Network
from repro.net.tls import SecureServer, SecureStack
from repro.obs.health import (
    counter_total,
    install_health_routes,
    install_node_info,
)
from repro.obs import tracing
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanRecorder
from repro.rendezvous.service import RendezvousPublisher
from repro.server.cache import FAMILY_RENDER, FAMILY_REQUEST, DerivationCache
from repro.server.metrics import LatencySample, ServerMetrics
from repro.server.pending import (
    DEFAULT_MAX_PER_USER,
    KIND_MASTER_CHANGE,
    KIND_PASSWORD,
    PendingExchange,
    PendingRegistry,
)
from repro.server.throttle import LoginThrottle
from repro.server.vault import open_entry, seal_entry, vault_key
from repro.util.logs import (
    bind_corr_id,
    component_logger,
    reset_corr_id,
    set_corr_id,
)
from repro.sim.kernel import Simulator
from repro.sim.latency import LatencyModel
from repro.storage.server_db import AccountRecord, ServerDatabase, UserRecord
from repro.util.errors import (
    AuthenticationError,
    ConflictError,
    NotFoundError,
    RecoveryError,
    ValidationError,
)
from repro.web.app import Application, Deferred, json_response
from repro.web.http import HttpRequest, HttpResponse
from repro.web.server import DEFAULT_THREAD_POOL_SIZE, SimHttpServer
from repro.web.sessions import SESSION_COOKIE, SessionManager

AMNESIA_SERVICE = "https"

DEFAULT_GENERATION_TIMEOUT_MS = 30_000.0
_MIN_MASTER_PASSWORD_LENGTH = 8

# The retry-after hint attached to fail-fast 503s when the rendezvous
# push is NACKed or unacknowledged (the phone may be re-registering).
DEFAULT_PUSH_RETRY_AFTER_MS = 1_000.0

# /statusz reports ``degraded: true`` while the last fail-fast 503
# happened within this window; afterwards the flag clears on its own.
DEFAULT_DEGRADED_WINDOW_MS = 30_000.0

_log = component_logger("server")


def _push_accepts_feedback(push) -> bool:
    """Whether *push* takes an ``on_failure`` keyword (the simulated
    publisher does; minimal dispatchers may not)."""
    try:
        parameters = inspect.signature(push).parameters
    except (TypeError, ValueError):
        return False
    if "on_failure" in parameters:
        return True
    return any(
        p.kind == p.VAR_KEYWORD for p in parameters.values()
    )


class AmnesiaCore:
    """The transport-agnostic Amnesia service: endpoints + secrets.

    Binds to *any* clock (the simulator, or a wall clock for a real
    deployment) and *any* push channel to the phone (the simulated
    rendezvous publisher, or an in-process agent dispatcher). The two
    concrete deployments are :class:`AmnesiaServer` (simulation) and
    :class:`repro.deploy.real.RealAmnesiaDeployment` (real sockets).
    """

    def __init__(
        self,
        clock,
        rng: RandomSource,
        push,
        db_path: str = ":memory:",
        params: ProtocolParams = DEFAULT_PARAMS,
        generation_timeout_ms: float = DEFAULT_GENERATION_TIMEOUT_MS,
        token_session_ttl_ms: float = 0.0,
        registry: MetricsRegistry | None = None,
        pending_cap_per_user: int = DEFAULT_MAX_PER_USER,
    ) -> None:
        # ``kernel`` is the historical attribute name; any object with
        # ``.now`` and ``.schedule(delay_ms, action, label)`` works.
        self.kernel = clock
        self.params = params
        # One metrics registry per deployment: ServerMetrics, the span
        # recorder, and the HTTP layer all write into it, and the
        # /metricsz route serves it.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.spans = SpanRecorder(self.registry)
        self._rng = rng
        self._push = push
        self._push_feedback = _push_accepts_feedback(push)
        self.generation_timeout_ms = generation_timeout_ms
        # §VIII session mechanism: cache the phone's token per account for
        # this long (0 = paper behaviour: a phone round trip per request).
        self.token_session_ttl_ms = token_session_ttl_ms
        self._token_sessions: dict[tuple[int, int], tuple[str, float]] = {}

        # PR 5 fast path: bounded LRU over the pure §III-B derivations
        # (R per account, rendered P per token/policy). Invalidated on
        # seed rotation, policy change, account deletion, recovery, and
        # replicated mutations on a standby; every key additionally
        # fingerprints its inputs so staleness can only cost a miss.
        self.derivations = DerivationCache(self.registry)
        # PR 10 hot path: the vectorized derivation engine. Every render
        # miss goes through it (scalar or batched); enable_batched_render
        # additionally coalesces same-timestamp generate requests into
        # one render_batch call via a zero-delay flush event.
        self.batch = BatchDerivationEngine(self.params, registry=self.registry)
        self._batched_render = False
        self._render_queue: list = []
        self._render_flush_armed = False
        self.database = ServerDatabase(db_path)
        self.sessions = SessionManager(rng)
        self.captcha = CaptchaRegistrar(rng)
        self.pending = PendingRegistry(rng, max_per_user=pending_cap_per_user)
        self.throttle = LoginThrottle()
        self.metrics = ServerMetrics(self.registry)
        # Fleet health state: when did this instance start, and when did
        # it last answer degraded (fail-fast 503)? /statusz reports
        # degraded while a fail-fast happened within the grace window.
        self.started_ms: float = self.kernel.now
        self.last_degraded_ms: float | None = None
        self.degraded_window_ms: float = DEFAULT_DEGRADED_WINDOW_MS
        self.application = self._build_application()
        self.application.bind_observability(self.registry, self.kernel)

    # -- session helpers -------------------------------------------------------

    def _session_user(self, request: HttpRequest) -> tuple[Any, UserRecord]:
        token = request.cookies.get(SESSION_COOKIE)
        session = self.sessions.resolve(token, self.kernel.now)
        if session is None:
            raise AuthenticationError("not logged in")
        return session, self.database.user_by_id(session.data["user_id"])

    def _user_account(self, user: UserRecord, account_id: str) -> AccountRecord:
        try:
            numeric_id = int(account_id)
        except ValueError:
            raise ValidationError(f"bad account id {account_id!r}") from None
        account = self.database.account_by_id(numeric_id)
        if account.user_id != user.user_id:
            raise NotFoundError(f"no account id {numeric_id}")  # don't leak existence
        return account

    def _verify_pid(self, user: UserRecord, pid_hex: str) -> bytes:
        if user.pid_hash is None or user.pid_salt is None:
            raise AuthenticationError("no phone registered for this account")
        try:
            pid = bytes.fromhex(pid_hex)
        except ValueError:
            raise ValidationError("pid must be hex") from None
        if not verify_salted_hash(pid, user.pid_salt, user.pid_hash):
            raise AuthenticationError("phone id verification failed")
        return pid

    @staticmethod
    def _policy_of(account: AccountRecord) -> PasswordPolicy:
        return PasswordPolicy(charset=account.charset, length=account.length)

    # -- derivation fast path (PR 5) ------------------------------------------

    def _request_hex(self, account: AccountRecord) -> str:
        """``R`` for *account*, cached per ``(account, µ, d, σ)``."""
        return self.derivations.get_or_compute(
            FAMILY_REQUEST,
            account.account_id,
            (account.username, account.domain, bytes(account.seed)),
            lambda: generate_request(
                account.username, account.domain, account.seed
            ),
        )

    def _render_cached(
        self, user: UserRecord, account: AccountRecord, token_hex: str
    ) -> str:
        """``P`` for ``(T, O_id, σ, policy)``, cached per account.

        The fingerprint embeds every input of the derivation — token,
        O_id, seed, charset, length — so a rotated seed or changed
        policy can never alias a cached value.
        """
        policy = self._policy_of(account)
        return self.derivations.get_or_compute(
            FAMILY_RENDER,
            account.account_id,
            (
                token_hex,
                bytes(user.oid),
                bytes(account.seed),
                policy.charset,
                policy.length,
            ),
            lambda: self.batch.derive(
                token_hex,
                user.oid,
                account.seed,
                policy.charset,
                policy.length,
            ),
        )

    # -- batched render (PR 10) ------------------------------------------------

    def enable_batched_render(self) -> None:
        """Coalesce same-timestamp generate renders into one vectorized
        :meth:`~repro.core.batch.BatchDerivationEngine.render_batch`.

        Opt-in: the flush event fires at a zero sim-time delay, *after*
        every request that arrived at the current timestamp has been
        decoded (kernel events at one timestamp run in insertion
        order), so a whole drained dispatch batch renders as one call —
        values, latencies, and cache counters stay bit-identical to the
        scalar path.
        """
        self._batched_render = True

    def _queue_render(self, user, account, token_hex: str, finish) -> None:
        """Enqueue one render for the next flush; *finish(password)*
        runs at the same sim timestamp. Input validation happens here,
        in the calling handler, exactly where the scalar path raised."""
        self.batch.validate(token_hex, user.oid, account.seed)
        policy = self._policy_of(account)
        fingerprint = (
            token_hex,
            bytes(user.oid),
            bytes(account.seed),
            policy.charset,
            policy.length,
        )
        job = RenderJob(
            token_hex, bytes(user.oid), bytes(account.seed),
            policy.charset, policy.length,
        )
        self._render_queue.append(
            (account.account_id, fingerprint, job, finish)
        )
        if not self._render_flush_armed:
            self._render_flush_armed = True
            self.kernel.schedule(0.0, self._flush_renders, label="render-flush")

    def _flush_renders(self) -> None:
        """Render every queued job in one vectorized call, then finish
        each request.

        Cache-counter fidelity: the partition into hits and misses uses
        the *uncounted* peek, and the authoritative per-request lookup
        still goes through ``get_or_compute`` — whose compute lambda is
        now a dict lookup into the batch results — so hit/miss/eviction
        counts match the scalar path exactly, duplicates included.
        """
        self._render_flush_armed = False
        queue, self._render_queue = self._render_queue, []
        if not queue:
            return
        missing: dict = {}
        for owner, fingerprint, job, __ in queue:
            key = (owner, *fingerprint)
            if key in missing:
                continue
            if self.derivations.peek(FAMILY_RENDER, owner, fingerprint) is None:
                missing[key] = job
        computed = (
            dict(zip(missing, self.batch.render_batch(list(missing.values()))))
            if missing
            else {}
        )
        for owner, fingerprint, job, finish in queue:
            key = (owner, *fingerprint)
            password = self.derivations.get_or_compute(
                FAMILY_RENDER,
                owner,
                fingerprint,
                lambda key=key, job=job: (
                    computed[key]
                    if key in computed
                    else self.batch.derive_job(job)
                ),
            )
            finish(password)

    def invalidate_derivations(self, account_id: int | None = None) -> int:
        """Drop cached derivations — one account's, or all of them.

        The cluster's :class:`~repro.cluster.replication.ReplicaApplier`
        calls this on a standby whenever a replicated op or snapshot
        mutates the database underneath this core.
        """
        if account_id is None:
            return self.derivations.clear()
        return self.derivations.invalidate_account(account_id)

    def reset_volatile_state(self) -> None:
        """Cold-restore hygiene (the durability plane's satellite rule):
        a server whose database was just rebuilt from a backup bundle
        must forget every cached derivation — both the R and rendered-P
        families — and every cached token session *before* it serves
        its first request.  The rows under those caches are now the
        bundle's rows; anything computed pre-disaster is suspect.
        """
        self._token_sessions.clear()
        self.derivations.clear()

    # -- §VIII session mechanism ---------------------------------------------

    def _cached_token(self, user_id: int, account_id: int) -> str | None:
        """A still-fresh phone token for this account, if any."""
        if self.token_session_ttl_ms <= 0:
            return None
        entry = self._token_sessions.get((user_id, account_id))
        if entry is None:
            return None
        token_hex, expires_ms = entry
        if self.kernel.now >= expires_ms:
            del self._token_sessions[(user_id, account_id)]
            return None
        return token_hex

    def _remember_token(self, user_id: int, account_id: int, token_hex: str) -> None:
        if self.token_session_ttl_ms > 0:
            self._token_sessions[(user_id, account_id)] = (
                token_hex,
                self.kernel.now + self.token_session_ttl_ms,
            )

    def _invalidate_token_session(self, account_id: int) -> None:
        doomed = [key for key in self._token_sessions if key[1] == account_id]
        for key in doomed:
            del self._token_sessions[key]

    def _start_phone_round_trip(
        self,
        user: UserRecord,
        account: AccountRecord,
        action: str,
        origin: str,
        **extra,
    ):
        """Push a password request and return the pending exchange.

        All phone round trips look identical to the phone (it computes T
        from R); *action* decides what the server does with the token.
        """
        exchange = self.pending.create(
            KIND_PASSWORD,
            user.user_id,
            self.kernel.now,
            account_id=account.account_id,
            action=action,
            **extra,
        )
        request_hex = self._request_hex(account)
        exchange.tstart_ms = self.kernel.now
        # The exchange id doubles as the correlation id: it already
        # travels server → rendezvous → phone → server, so spans and log
        # lines from every hop join the same trace.
        with bind_corr_id(exchange.pending_id):
            _log.debug(
                "push %s exchange=%s account=%d origin=%s",
                action, exchange.pending_id[:8], account.account_id, origin,
            )
            push_data = {
                "kind": KIND_PASSWORD,
                "pending_id": exchange.pending_id,
                "corr_id": exchange.pending_id,
                "request": request_hex,
                "origin": origin,
                "tstart_ms": exchange.tstart_ms,
            }
            # Distributed tracing: the handler's server span (when the
            # application is bound to a tracer) becomes the parent of
            # everything downstream — its context rides in the push
            # payload so rendezvous/phone spans join the same tree.
            span = tracing.current_span()
            if span is not None:
                span.set_corr_id(exchange.pending_id)
                exchange.extra["trace_ctx"] = span.context
                push_data["trace_ctx"] = span.context.to_header()
            self._dispatch_push(exchange, user.reg_id, push_data)
        self._arm_timeout(exchange)
        return exchange

    def _dispatch_push(
        self, exchange: PendingExchange, reg_id: str, data: dict
    ) -> None:
        """Send the rendezvous push; when the channel supports delivery
        feedback, a NACK/no-ack degrades the exchange *immediately* to a
        structured 503 with a retry-after hint instead of silently
        burning the full generation timeout."""
        if not self._push_feedback:
            self._push(reg_id, data)
            return

        def push_failed(reason: str) -> None:
            cancelled = self.pending.cancel(exchange.pending_id)
            if cancelled is None:
                return  # completed or timed out meanwhile
            self.metrics.record_degraded(reason)
            self.last_degraded_ms = self.kernel.now
            # Resolve inside the binding: the degraded 503 then records
            # its route latency with this exchange's corr-id exemplar.
            with bind_corr_id(exchange.pending_id):
                _log.info(
                    "push for exchange %s failed fast (%s); degrading",
                    exchange.pending_id[:8], reason,
                )
                cancelled.deferred.resolve(
                    json_response(
                        {
                            "error": f"phone unreachable: {reason}",
                            "retry_after_ms": DEFAULT_PUSH_RETRY_AFTER_MS,
                        },
                        status=503,
                    )
                )

        self._push(reg_id, data, on_failure=push_failed)

    def _record_generation_spans(
        self,
        exchange: PendingExchange,
        trace: Any,
        arrival_ms: float,
        tend_ms: float,
    ) -> None:
        """Attribute one generation's latency to its pipeline stages.

        The phone reports when it *received* the push and when its
        Algorithm 1 computation *finished* (same clock domain in the
        simulation; real agents stamp the deployment's wall clock). The
        four spans partition exactly ``[t_start, t_end]``, so their
        durations sum to Figure 3's latency. When the phone's stamps are
        missing or inconsistent, the whole round trip is recorded as one
        span instead — attribution degrades, totals never lie.
        """
        corr_id = exchange.pending_id
        tstart = exchange.tstart_ms
        received = trace.get("received_ms") if isinstance(trace, dict) else None
        computed = trace.get("computed_ms") if isinstance(trace, dict) else None
        consistent = (
            isinstance(received, (int, float))
            and isinstance(computed, (int, float))
            and tstart <= received <= computed <= arrival_ms
        )
        if consistent:
            stages = [
                ("push_wait", tstart, received),
                ("phone_compute", received, computed),
                ("return_hop", computed, arrival_ms),
            ]
        else:
            stages = [("phone_round_trip", tstart, arrival_ms)]
        stages.append(("server_render", arrival_ms, tend_ms))
        for name, start, end in stages:
            self.spans.record(corr_id, name, start, end)
        # Mirror the stage breakdown into the distributed trace: the
        # stages partition the generate server span exactly, so the
        # trace's critical path reproduces the PR 1 attribution table.
        tracer = self.application.tracer
        parent = exchange.extra.get("trace_ctx")
        if tracer is not None and parent is not None:
            for name, start, end in stages:
                tracer.record_span(
                    name,
                    parent=parent,
                    start_ms=start,
                    end_ms=end,
                    corr_id=corr_id,
                    kind="internal",
                )

    # -- fleet health ----------------------------------------------------------

    def _status_detail(self) -> dict[str, Any]:
        """The server's ``/statusz`` detail document.

        ``degraded`` follows the fail-fast 503 path: true while the most
        recent push failure happened inside the degraded window, false
        once the window passes without another one.
        """
        degraded = (
            self.last_degraded_ms is not None
            and (self.kernel.now - self.last_degraded_ms)
            <= self.degraded_window_ms
        )
        return {
            "degraded": degraded,
            "pending_exchanges": self.pending.outstanding(),
            "generations": {
                "started": self.metrics.generations_started,
                "completed": self.metrics.generations_completed,
                "timed_out": self.metrics.generations_timed_out,
                "from_session": self.metrics.generations_from_session,
            },
            "degraded_responses_total": self.metrics.degraded_responses,
            "retry_attempts_total": int(
                counter_total(self.registry, "amnesia_retry_attempts_total")
            ),
            "retry_giveups_total": int(
                counter_total(self.registry, "amnesia_retry_giveups_total")
            ),
            "faults_injected_total": int(
                counter_total(self.registry, "amnesia_faults_injected_total")
            ),
            "spans_recorded": self.spans.recorded_spans,
            "derivation_cache": self.derivations.stats(),
        }

    # -- application -----------------------------------------------------------

    def _build_application(self) -> Application:
        app = Application("amnesia")
        router = app.router

        # ---- health ----
        install_health_routes(
            app,
            "server",
            self.kernel,
            self._status_detail,
            started_ms=self.started_ms,
        )

        # ---- signup / login ----
        @router.post("/signup")
        def signup(request: HttpRequest):
            body = request.json()
            login = str(body.get("login", ""))
            master_password = str(body.get("master_password", ""))
            if not login:
                raise ValidationError("login required")
            if len(master_password) < _MIN_MASTER_PASSWORD_LENGTH:
                raise ValidationError(
                    f"master password must be >= {_MIN_MASTER_PASSWORD_LENGTH} chars"
                )
            salt = self._rng.token_bytes(self.params.salt_bytes)
            user = self.database.create_user(
                login=login,
                oid=generate_oid(self._rng, self.params),
                mp_hash=salted_hash(master_password.encode("utf-8"), salt),
                mp_salt=salt,
            )
            session = self.sessions.create(self.kernel.now, user_id=user.user_id)
            response = json_response({"login": login}, status=201)
            response.set_cookies[SESSION_COOKIE] = session.token
            return response

        @router.post("/login")
        def login(request: HttpRequest):
            body = request.json()
            login_name = str(body.get("login", ""))
            master_password = str(body.get("master_password", ""))
            now = self.kernel.now
            if not self.throttle.allowed(login_name, now):
                raise AuthenticationError("too many failures; try again later")
            try:
                user = self.database.user_by_login(login_name)
            except NotFoundError:
                self.throttle.record_failure(login_name, now)
                self.metrics.record_login(ok=False)
                # Same error as a wrong password: do not leak which logins exist.
                raise AuthenticationError("bad login or master password") from None
            if not verify_salted_hash(
                master_password.encode("utf-8"), user.mp_salt, user.mp_hash
            ):
                self.throttle.record_failure(login_name, now)
                self.metrics.record_login(ok=False)
                raise AuthenticationError("bad login or master password")
            self.throttle.record_success(login_name)
            self.metrics.record_login(ok=True)
            session = self.sessions.create(now, user_id=user.user_id)
            response = json_response({"login": login_name})
            response.set_cookies[SESSION_COOKIE] = session.token
            return response

        @router.post("/logout")
        def logout(request: HttpRequest):
            token = request.cookies.get(SESSION_COOKIE)
            if token:
                self.sessions.revoke(token)
            return json_response({"ok": True})

        @router.get("/me")
        def me(request: HttpRequest):
            __, user = self._session_user(request)
            return json_response(
                {
                    "login": user.login,
                    "phone_registered": user.reg_id is not None,
                }
            )

        # ---- account management ----
        @router.get("/accounts")
        def list_accounts(request: HttpRequest):
            __, user = self._session_user(request)
            accounts = self.database.accounts_for_user(user.user_id)
            return json_response(
                {
                    "accounts": [
                        {
                            "account_id": a.account_id,
                            "username": a.username,
                            "domain": a.domain,
                            "length": a.length,
                            "charset_size": len(a.charset),
                        }
                        for a in accounts
                    ]
                }
            )

        @router.post("/accounts")
        def add_account(request: HttpRequest):
            __, user = self._session_user(request)
            body = request.json()
            username = str(body.get("username", ""))
            domain = str(body.get("domain", ""))
            if not username or not domain:
                raise ValidationError("username and domain required")
            policy = _policy_from_body(body)
            account = self.database.add_account(
                user_id=user.user_id,
                username=username,
                domain=domain,
                seed=generate_seed(self._rng, self.params),
                charset=policy.charset,
                length=policy.length,
            )
            return json_response({"account_id": account.account_id}, status=201)

        @router.post("/accounts/{account_id}/rotate")
        def rotate_seed(request: HttpRequest, account_id: str):
            __, user = self._session_user(request)
            account = self._user_account(user, account_id)
            self.database.update_seed(
                account.account_id, generate_seed(self._rng, self.params)
            )
            # σ changed: cached tokens, derivations and vault keys are
            # stale by design.
            self._invalidate_token_session(account.account_id)
            self.derivations.invalidate_account(account.account_id)
            had_vault = self.database.vault_entry(account.account_id) is not None
            self.database.delete_vault_entry(account.account_id)
            return json_response(
                {"rotated": account.account_id, "vault_invalidated": had_vault}
            )

        @router.put("/accounts/{account_id}/policy")
        def update_policy(request: HttpRequest, account_id: str):
            __, user = self._session_user(request)
            account = self._user_account(user, account_id)
            policy = _policy_from_body(request.json())
            self.database.update_policy(
                account.account_id, policy.charset, policy.length
            )
            self.derivations.invalidate_account(account.account_id)
            return json_response({"updated": account.account_id})

        @router.delete("/accounts/{account_id}")
        def delete_account(request: HttpRequest, account_id: str):
            __, user = self._session_user(request)
            account = self._user_account(user, account_id)
            self.database.delete_account(account.account_id)
            self.derivations.invalidate_account(account.account_id)
            return json_response({"deleted": account.account_id})

        # ---- phone pairing (§III-B1) ----
        @router.post("/pair/start")
        def pair_start(request: HttpRequest):
            __, user = self._session_user(request)
            challenge = self.captcha.issue(user.login, self.kernel.now)
            # The code is *displayed on the webpage*; the user types it
            # into the phone app.
            return json_response({"code": challenge.code})

        @router.post("/pair/complete")
        def pair_complete(request: HttpRequest):
            body = request.json()
            login_name = str(body.get("login", ""))
            code = str(body.get("code", ""))
            pid_hex = str(body.get("pid", ""))
            reg_id = str(body.get("reg_id", ""))
            if not (login_name and code and pid_hex and reg_id):
                raise ValidationError("login, code, pid and reg_id required")
            user = self.database.user_by_login(login_name)
            self.captcha.verify(login_name, code, self.kernel.now)
            try:
                pid = bytes.fromhex(pid_hex)
            except ValueError:
                raise ValidationError("pid must be hex") from None
            if len(pid) != self.params.pid_bytes:
                raise ValidationError(
                    f"pid must be {self.params.pid_bytes} bytes"
                )
            salt = self._rng.token_bytes(self.params.salt_bytes)
            # Registration id in plaintext; P_id only hashed+salted (Table I).
            self.database.set_phone_registration(
                user.user_id, reg_id, salted_hash(pid, salt), salt
            )
            return json_response({"paired": True}, status=201)

        @router.post("/phone/reregister")
        def phone_reregister(request: HttpRequest):
            """Refresh the rendezvous registration id (GCM rotates tokens;
            phones re-register after reboots). Authenticated by P_id —
            the same possession proof as §III-C2."""
            body = request.json()
            login_name = str(body.get("login", ""))
            pid_hex = str(body.get("pid", ""))
            reg_id = str(body.get("reg_id", ""))
            if not (login_name and pid_hex and reg_id):
                raise ValidationError("login, pid and reg_id required")
            user = self.database.user_by_login(login_name)
            self._verify_pid(user, pid_hex)
            if user.pid_salt is None or user.pid_hash is None:
                raise AuthenticationError("no phone registered")
            self.database.set_phone_registration(
                user.user_id, reg_id, user.pid_hash, user.pid_salt
            )
            return json_response({"reregistered": True})

        # ---- password generation (Figure 1, steps 2-6) ----
        @router.post("/accounts/{account_id}/generate")
        def generate(request: HttpRequest, account_id: str):
            __, user = self._session_user(request)
            account = self._user_account(user, account_id)
            if user.reg_id is None:
                raise ConflictError("no phone paired; register the app first")
            # §VIII session mechanism: reuse a fresh cached token, skipping
            # the phone round trip entirely.
            cached = self._cached_token(user.user_id, account.account_id)
            if cached is not None:
                self.metrics.record_generation_from_session()

                def session_response(password: str) -> HttpResponse:
                    return json_response(
                        {
                            "password": password,
                            "latency_ms": 0.0,
                            "from_session": True,
                            "username": account.username,
                            "domain": account.domain,
                        }
                    )

                if self._batched_render:
                    deferred = Deferred()
                    self._queue_render(
                        user,
                        account,
                        cached,
                        lambda password: deferred.resolve(
                            session_response(password)
                        ),
                    )
                    return deferred
                return session_response(self._render_cached(user, account, cached))
            self.metrics.record_generation_started()
            # t_start: the moment R leaves for the rendezvous server —
            # the paper's instrumentation point.
            exchange = self._start_phone_round_trip(
                user,
                account,
                action="generate",
                origin=request.headers.get("x-peer-host", "unknown"),
            )
            return exchange.deferred

        @router.post("/token")
        def submit_token(request: HttpRequest):
            arrival_ms = self.kernel.now  # the token reaches the server
            body = request.json()
            pending_id = str(body.get("pending_id", ""))
            token_hex = str(body.get("token", ""))
            pid_hex = str(body.get("pid", ""))
            # Idempotency: the phone retries /token when an ack is lost
            # on the return hop. A duplicate for an exchange that already
            # completed must succeed (200), not 404 — the 404 would make
            # the phone believe the exchange vanished.
            if self.pending.was_completed(pending_id):
                return json_response({"ok": True, "duplicate": True})
            # Verify the sender before consuming the exchange: a forged
            # token must not destroy the legitimate pending request.
            peeked = self.pending.peek(pending_id, KIND_PASSWORD)
            user = self.database.user_by_id(peeked.user_id)
            self._verify_pid(user, pid_hex)
            exchange = self.pending.take(pending_id, KIND_PASSWORD)
            account = self.database.account_by_id(exchange.account_id)
            # The /token server span roots from the phone's header; name
            # the exchange it completes so trace → corr-id lookups work.
            token_span = tracing.current_span()
            if token_span is not None:
                token_span.set_corr_id(exchange.pending_id)
            corr_token = set_corr_id(exchange.pending_id)
            try:
                return _consume_token(
                    exchange, user, account, token_hex, body, arrival_ms
                )
            finally:
                reset_corr_id(corr_token)

        def _consume_token(exchange, user, account, token_hex, body, arrival_ms):
            self._remember_token(user.user_id, account.account_id, token_hex)
            action = exchange.extra.get("action", "generate")
            if action == "generate":

                def finish_generate(password: str) -> None:
                    # Runs either inline (scalar) or from the batch
                    # flush at the *same* sim timestamp, so tend — and
                    # with it every latency sample — is bit-identical.
                    tend = self.kernel.now
                    self.metrics.record_generation(
                        LatencySample(
                            account_id=account.account_id,
                            tstart_ms=exchange.tstart_ms,
                            tend_ms=tend,
                        )
                    )
                    self._record_generation_spans(
                        exchange, body.get("trace"), arrival_ms, tend
                    )
                    with bind_corr_id(exchange.pending_id):
                        _log.debug(
                            "generation complete exchange=%s latency=%.1fms",
                            exchange.pending_id[:8], tend - exchange.tstart_ms,
                        )
                    exchange.deferred.resolve(
                        json_response(
                            {
                                "password": password,
                                "latency_ms": tend - exchange.tstart_ms,
                                "username": account.username,
                                "domain": account.domain,
                            }
                        )
                    )

                if self._batched_render:
                    self._queue_render(user, account, token_hex, finish_generate)
                else:
                    finish_generate(
                        self._render_cached(user, account, token_hex)
                    )
            elif action == "vault_store":
                # Vault keys are key material, deliberately never cached.
                intermediate = intermediate_value(token_hex, user.oid, account.seed)
                key = vault_key(intermediate)
                ciphertext = seal_entry(
                    key, exchange.extra["chosen_password"], self._rng
                )
                self.database.store_vault_entry(account.account_id, ciphertext)
                exchange.deferred.resolve(
                    json_response({"stored": True, "domain": account.domain})
                )
            elif action == "vault_retrieve":
                intermediate = intermediate_value(token_hex, user.oid, account.seed)
                ciphertext = self.database.vault_entry(account.account_id)
                if ciphertext is None:
                    exchange.deferred.resolve(
                        json_response(
                            {"error": "no vault entry for this account"},
                            status=404,
                        )
                    )
                else:
                    try:
                        password = open_entry(vault_key(intermediate), ciphertext)
                    except RecoveryError as error:
                        exchange.deferred.resolve(
                            json_response({"error": str(error)}, status=410)
                        )
                    else:
                        exchange.deferred.resolve(
                            json_response(
                                {"password": password, "domain": account.domain}
                            )
                        )
            else:  # unknown action: fail closed
                exchange.deferred.resolve(
                    json_response({"error": "unknown exchange action"}, status=500)
                )
            return json_response({"ok": True})

        # ---- vault (§VIII extension): chosen passwords, bilateral at rest ----
        @router.put("/accounts/{account_id}/vault")
        def vault_store(request: HttpRequest, account_id: str):
            __, user = self._session_user(request)
            account = self._user_account(user, account_id)
            if user.reg_id is None:
                raise ConflictError("no phone paired; register the app first")
            chosen = str(request.json().get("password", ""))
            if not chosen:
                raise ValidationError("password required")
            exchange = self._start_phone_round_trip(
                user,
                account,
                action="vault_store",
                origin=request.headers.get("x-peer-host", "unknown"),
                chosen_password=chosen,
            )
            return exchange.deferred

        @router.post("/accounts/{account_id}/vault/retrieve")
        def vault_retrieve(request: HttpRequest, account_id: str):
            __, user = self._session_user(request)
            account = self._user_account(user, account_id)
            if user.reg_id is None:
                raise ConflictError("no phone paired; register the app first")
            exchange = self._start_phone_round_trip(
                user,
                account,
                action="vault_retrieve",
                origin=request.headers.get("x-peer-host", "unknown"),
            )
            return exchange.deferred

        @router.delete("/accounts/{account_id}/vault")
        def vault_delete(request: HttpRequest, account_id: str):
            __, user = self._session_user(request)
            account = self._user_account(user, account_id)
            self.database.delete_vault_entry(account.account_id)
            return json_response({"deleted": account.account_id})

        # ---- master-password change (§III-C2) ----
        @router.post("/recover/master/start")
        def master_start(request: HttpRequest):
            session, user = self._session_user(request)
            if user.reg_id is None:
                raise ConflictError("no phone paired; cannot verify possession")
            exchange = self.pending.create(
                KIND_MASTER_CHANGE, user.user_id, self.kernel.now,
                session_token=session.token,
            )
            self._dispatch_push(
                exchange,
                user.reg_id,
                {
                    "kind": KIND_MASTER_CHANGE,
                    "pending_id": exchange.pending_id,
                    "origin": request.headers.get("x-peer-host", "unknown"),
                },
            )
            self._arm_timeout(exchange)
            return exchange.deferred

        @router.post("/recover/master/confirm")
        def master_confirm(request: HttpRequest):
            body = request.json()
            pending_id = str(body.get("pending_id", ""))
            pid_hex = str(body.get("pid", ""))
            peeked = self.pending.peek(pending_id, KIND_MASTER_CHANGE)
            user = self.database.user_by_id(peeked.user_id)
            self._verify_pid(user, pid_hex)
            exchange = self.pending.take(pending_id, KIND_MASTER_CHANGE)
            token = exchange.extra.get("session_token")
            session = self.sessions.resolve(token, self.kernel.now)
            if session is not None:
                session.data["master_change_authorized"] = True
            exchange.deferred.resolve(json_response({"authorized": True}))
            return json_response({"ok": True})

        @router.post("/recover/master/complete")
        def master_complete(request: HttpRequest):
            session, user = self._session_user(request)
            if not session.data.get("master_change_authorized"):
                raise AuthenticationError(
                    "master change not authorized by the phone"
                )
            body = request.json()
            new_password = str(body.get("new_master_password", ""))
            if len(new_password) < _MIN_MASTER_PASSWORD_LENGTH:
                raise ValidationError(
                    f"master password must be >= {_MIN_MASTER_PASSWORD_LENGTH} chars"
                )
            salt = self._rng.token_bytes(self.params.salt_bytes)
            self.database.set_master_password(
                user.user_id,
                salted_hash(new_password.encode("utf-8"), salt),
                salt,
            )
            session.data["master_change_authorized"] = False
            # Changing the anchor invalidates every other session.
            self.sessions.revoke_all(
                lambda s: s.data.get("user_id") == user.user_id
                and s.token != session.token
            )
            return json_response({"changed": True})

        # ---- phone-compromise recovery (§III-C1) ----
        @router.post("/recover/phone")
        def phone_recover(request: HttpRequest):
            __, user = self._session_user(request)
            body = request.json()
            blob_b64 = str(body.get("backup", ""))
            if not blob_b64:
                raise ValidationError("backup payload required")
            try:
                blob = base64.b64decode(blob_b64, validate=True)
            except Exception:
                raise ValidationError("backup must be base64") from None
            payload = decode_backup(blob)
            if user.pid_hash is None or user.pid_salt is None:
                raise RecoveryError("no phone registered; nothing to recover")
            if not verify_salted_hash(payload.pid, user.pid_salt, user.pid_hash):
                raise RecoveryError("backup P_id does not match the registered phone")
            table = EntryTable(payload.entries, self.params)
            # The old phone's cached tokens and derivations die with it.
            self._token_sessions.clear()
            self.derivations.clear()
            # Recovery touches every account of the user against one
            # entry table: precompute each account's segment indices
            # once, derive all tokens, then render the whole set as a
            # single vectorized batch.
            pending_renders = []
            for account in self.database.accounts_for_user(user.user_id):
                request_hex = self._request_hex(account)
                token_hex = AccountDerivation.from_request(
                    request_hex, account.seed, user.oid, self.params
                ).token_hex(table)
                policy = self._policy_of(account)
                pending_renders.append((account, token_hex, policy))
            passwords = self.batch.render_batch(
                [
                    RenderJob(
                        token_hex,
                        bytes(user.oid),
                        bytes(account.seed),
                        policy.charset,
                        policy.length,
                    )
                    for account, token_hex, policy in pending_renders
                ]
            )
            regenerated = []
            for (account, token_hex, policy), password in zip(
                pending_renders, passwords
            ):
                # Install in the (just-cleared) render cache with the
                # same key and counter effects as the scalar path.
                self.derivations.get_or_compute(
                    FAMILY_RENDER,
                    account.account_id,
                    (
                        token_hex,
                        bytes(user.oid),
                        bytes(account.seed),
                        policy.charset,
                        policy.length,
                    ),
                    lambda password=password: password,
                )
                regenerated.append(
                    {
                        "username": account.username,
                        "domain": account.domain,
                        "password": password,
                    }
                )
            # Purge everything related to the old phone.
            self.database.clear_phone_registration(user.user_id)
            return json_response({"passwords": regenerated, "purged": True})

        return app

    def _arm_timeout(self, exchange: PendingExchange) -> None:
        def expire() -> None:
            expired = self.pending.expire(exchange.pending_id)
            if expired is None:
                return  # already completed
            self.metrics.record_generation_timeout()
            with bind_corr_id(expired.pending_id):
                _log.info(
                    "exchange %s timed out after %.0fms waiting for the phone",
                    expired.pending_id[:8], self.generation_timeout_ms,
                )
                expired.deferred.resolve(
                    _timeout_response(expired.kind)
                )

        exchange.timeout_event = self.kernel.schedule(
            self.generation_timeout_ms, expire, label="pending-timeout"
        )


class AmnesiaServer(AmnesiaCore):
    """The simulated deployment: the core bound to the simnet transports.

    Attaches a secure-channel server (the prototype's HTTPS), a
    CherryPy-style thread-pooled HTTP server, and the rendezvous
    publisher for pushes to the phone.
    """

    def __init__(
        self,
        kernel: Simulator,
        network: Network,
        host_name: str,
        rng: RandomSource,
        rendezvous_host: str,
        db_path: str = ":memory:",
        params: ProtocolParams = DEFAULT_PARAMS,
        compute_latency: LatencyModel | None = None,
        thread_pool_size: int = DEFAULT_THREAD_POOL_SIZE,
        generation_timeout_ms: float = DEFAULT_GENERATION_TIMEOUT_MS,
        identity: str | None = None,
        token_session_ttl_ms: float = 0.0,
        registry: MetricsRegistry | None = None,
        pending_cap_per_user: int = DEFAULT_MAX_PER_USER,
    ) -> None:
        self.network = network
        self.host = network.host(host_name)
        self.publisher = RendezvousPublisher(self.host, network, rendezvous_host)
        super().__init__(
            clock=kernel,
            rng=rng,
            push=self.publisher.push,
            db_path=db_path,
            params=params,
            generation_timeout_ms=generation_timeout_ms,
            token_session_ttl_ms=token_session_ttl_ms,
            registry=registry,
            pending_cap_per_user=pending_cap_per_user,
        )
        # Persist the TLS identity key so the self-signed certificate (and
        # therefore every client's pin) survives server restarts.
        static_private = self.database.get_config("identity_key")
        if static_private is None:
            static_private = rng.token_bytes(32)
            self.database.set_config("identity_key", static_private)
        self.secure_server = SecureServer(
            identity if identity is not None else host_name,
            rng,
            static_private=static_private,
        )
        self.stack = SecureStack(self.host, network, rng)
        self.stack.attach_server(self.secure_server)
        self.http_server = SimHttpServer(
            self.application,
            self.stack,
            self.secure_server,
            kernel,
            service=AMNESIA_SERVICE,
            compute_latency=compute_latency,
            thread_pool_size=thread_pool_size,
            registry=self.registry,
        )
        install_node_info(
            self.registry, host_name, "server", kernel, lambda: self.started_ms
        )

    @property
    def certificate(self):
        """The server's self-signed certificate, for client pinning."""
        return self.secure_server.certificate


def _timeout_response(kind: str) -> HttpResponse:
    return json_response(
        {"error": f"{kind} timed out waiting for the phone"}, status=503
    )


def _policy_from_body(body: dict) -> PasswordPolicy:
    """Build a policy from a request body's optional fields."""
    length = int(body.get("length", MAX_PASSWORD_LENGTH))
    if "charset" in body:
        return PasswordPolicy(charset=str(body["charset"]), length=length)
    classes = body.get("classes")
    if isinstance(classes, dict):
        return PasswordPolicy.from_classes(
            length=length,
            lowercase=bool(classes.get("lowercase", True)),
            uppercase=bool(classes.get("uppercase", True)),
            digits=bool(classes.get("digits", True)),
            special=bool(classes.get("special", True)),
        )
    return PasswordPolicy(length=length)
