"""Server-side measurements, including Figure 3's latency samples.

The paper instruments the pipeline with ``t_start`` (R handed to GCM)
and ``t_end`` (P computed) and reports ``latency = t_end - t_start``.
The server records exactly that pair per completed generation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class LatencySample:
    """One completed password generation."""

    account_id: int
    tstart_ms: float
    tend_ms: float

    @property
    def latency_ms(self) -> float:
        return self.tend_ms - self.tstart_ms


@dataclass
class ServerMetrics:
    """Counters and samples accumulated by one server instance."""

    latency_samples: list[LatencySample] = field(default_factory=list)
    generations_started: int = 0
    generations_completed: int = 0
    generations_timed_out: int = 0
    generations_from_session: int = 0  # §VIII session mechanism hits
    logins_ok: int = 0
    logins_failed: int = 0

    def record_generation(self, sample: LatencySample) -> None:
        self.latency_samples.append(sample)
        self.generations_completed += 1

    def latency_mean_ms(self) -> float:
        if not self.latency_samples:
            return math.nan
        return sum(s.latency_ms for s in self.latency_samples) / len(
            self.latency_samples
        )

    def latency_std_ms(self) -> float:
        n = len(self.latency_samples)
        if n < 2:
            return math.nan
        mean = self.latency_mean_ms()
        return math.sqrt(
            sum((s.latency_ms - mean) ** 2 for s in self.latency_samples) / (n - 1)
        )
