"""Server-side measurements, including Figure 3's latency samples.

The paper instruments the pipeline with ``t_start`` (R handed to GCM)
and ``t_end`` (P computed) and reports ``latency = t_end - t_start``.
The server records exactly that pair per completed generation.

Since the observability PR, :class:`ServerMetrics` is a *view* over the
process metrics registry (:mod:`repro.obs.registry`): every counter
bump and latency sample also lands in registry metrics
(``amnesia_generations_total{result=...}``,
``amnesia_logins_total{result=...}``,
``amnesia_generation_latency_ms``), so Figure 3's statistics and the
``/metricsz`` exporter read the same underlying data. The raw sample
list is retained because the paper's mean/std (and the new exact
percentiles) need sample-exact math, not bucketed estimates.

Edge-case contract (documented, uniformly): with **no** samples,
``latency_mean_ms``, ``latency_std_ms`` and ``latency_percentile_ms``
all return ``nan``; with **one** sample, mean and percentiles return
that sample and ``latency_std_ms`` returns ``nan`` (a sample standard
deviation needs n ≥ 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs.registry import MetricsRegistry
from repro.util.errors import ValidationError

GENERATION_LATENCY_HISTOGRAM = "amnesia_generation_latency_ms"


@dataclass(frozen=True)
class LatencySample:
    """One completed password generation."""

    account_id: int
    tstart_ms: float
    tend_ms: float

    @property
    def latency_ms(self) -> float:
        return self.tend_ms - self.tstart_ms


class ServerMetrics:
    """Counters and samples accumulated by one server instance.

    Counter state lives in the metrics registry; the public integer
    attributes are read-only views so existing call sites (tests,
    reports) keep working unchanged.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.latency_samples: list[LatencySample] = []
        self._generations = self.registry.counter(
            "amnesia_generations_total",
            "Password generations, by outcome "
            "(started/completed/timeout/session)",
            label_names=("result",),
        )
        self._logins = self.registry.counter(
            "amnesia_logins_total",
            "Login attempts, by result",
            label_names=("result",),
        )
        self._latency = self.registry.histogram(
            GENERATION_LATENCY_HISTOGRAM,
            "End-to-end generation latency (t_end - t_start), Figure 3",
        )
        self._degraded = self.registry.counter(
            "amnesia_degraded_responses_total",
            "Requests answered with a structured retry-after error "
            "instead of the full result (fail-fast degradation)",
            label_names=("reason",),
        )

    # -- recording -------------------------------------------------------------

    def record_generation(self, sample: LatencySample) -> None:
        from repro.util.logs import current_corr_id

        self.latency_samples.append(sample)
        self._generations.labels(result="completed").inc()
        # Exemplar: the generation's correlation id, so a latency alert
        # links to the exact exchange in the Chrome trace.
        corr = current_corr_id()
        self._latency.observe(
            sample.latency_ms, exemplar=corr if corr != "-" else None
        )

    def record_generation_started(self) -> None:
        self._generations.labels(result="started").inc()

    def record_generation_timeout(self) -> None:
        self._generations.labels(result="timeout").inc()

    def record_generation_from_session(self) -> None:
        """§VIII session mechanism hit: no phone round trip."""
        self._generations.labels(result="session").inc()

    def record_login(self, ok: bool) -> None:
        self._logins.labels(result="ok" if ok else "failed").inc()

    def record_degraded(self, reason: str) -> None:
        """A fail-fast 503 with a retry-after hint (push failed, etc.)."""
        self._degraded.labels(reason=reason).inc()

    # -- counter views ---------------------------------------------------------

    def _count(self, family, **labels) -> int:
        return int(family.labels(**labels).value)

    @property
    def generations_started(self) -> int:
        return self._count(self._generations, result="started")

    @property
    def generations_completed(self) -> int:
        return self._count(self._generations, result="completed")

    @property
    def generations_timed_out(self) -> int:
        return self._count(self._generations, result="timeout")

    @property
    def generations_from_session(self) -> int:
        return self._count(self._generations, result="session")

    @property
    def logins_ok(self) -> int:
        return self._count(self._logins, result="ok")

    @property
    def logins_failed(self) -> int:
        return self._count(self._logins, result="failed")

    @property
    def degraded_responses(self) -> int:
        return int(
            sum(child.value for __, child in self._degraded.samples())
        )

    # -- latency statistics (sample-exact) ------------------------------------

    def latency_mean_ms(self) -> float:
        """Mean latency; ``nan`` when no samples exist."""
        if not self.latency_samples:
            return math.nan
        return sum(s.latency_ms for s in self.latency_samples) / len(
            self.latency_samples
        )

    def latency_std_ms(self) -> float:
        """Sample standard deviation; ``nan`` when n < 2."""
        n = len(self.latency_samples)
        if n < 2:
            return math.nan
        mean = self.latency_mean_ms()
        return math.sqrt(
            sum((s.latency_ms - mean) ** 2 for s in self.latency_samples) / (n - 1)
        )

    def latency_percentile_ms(self, q: float) -> float:
        """Exact linear-interpolated percentile of the recorded samples.

        *q* in [0, 100]. ``nan`` when no samples exist; with a single
        sample every percentile is that sample.
        """
        if not (0.0 <= q <= 100.0):
            raise ValidationError(f"percentile q must be in [0, 100], got {q}")
        if not self.latency_samples:
            return math.nan
        ordered = sorted(s.latency_ms for s in self.latency_samples)
        if len(ordered) == 1:
            return ordered[0]
        position = (q / 100.0) * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1 - fraction) + ordered[high] * fraction
