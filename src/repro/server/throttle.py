"""Online-guessing throttle for master-password logins.

Bonneau's framework scores Amnesia "resilient to throttled guessing";
the property only holds if the server actually throttles, so the
reproduction ships one: a per-login failure counter with a lockout
window. (Table III's rating is evaluated against this behaviour in the
attack experiments.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.util.errors import ValidationError


@dataclass
class _LoginState:
    failures: int = 0
    window_start_ms: float = 0.0
    locked_until_ms: float = 0.0


@dataclass
class LoginThrottle:
    """Locks a login out after repeated failures inside a window."""

    max_failures: int = 5
    window_ms: float = 60_000.0
    lockout_ms: float = 300_000.0
    _states: Dict[str, _LoginState] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_failures < 1:
            raise ValidationError("max_failures must be >= 1")
        if self.window_ms <= 0 or self.lockout_ms <= 0:
            raise ValidationError("window and lockout must be positive")

    def allowed(self, login: str, now_ms: float) -> bool:
        state = self._states.get(login)
        return state is None or now_ms >= state.locked_until_ms

    def record_failure(self, login: str, now_ms: float) -> None:
        state = self._states.setdefault(login, _LoginState(window_start_ms=now_ms))
        if now_ms - state.window_start_ms > self.window_ms:
            state.failures = 0
            state.window_start_ms = now_ms
        state.failures += 1
        if state.failures >= self.max_failures:
            state.locked_until_ms = now_ms + self.lockout_ms
            state.failures = 0
            state.window_start_ms = now_ms

    def record_success(self, login: str) -> None:
        self._states.pop(login, None)

    def locked_until(self, login: str) -> float:
        state = self._states.get(login)
        return state.locked_until_ms if state else 0.0
