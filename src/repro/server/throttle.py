"""Online-guessing throttle for master-password logins.

Bonneau's framework scores Amnesia "resilient to throttled guessing";
the property only holds if the server actually throttles, so the
reproduction ships one: a per-login failure counter with a lockout
window. (Table III's rating is evaluated against this behaviour in the
attack experiments.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.util.errors import ValidationError

# How many `record_failure` calls may elapse between opportunistic
# eviction sweeps.  Sweeps are O(len(_states)), so amortising them over
# a fixed stride keeps the steady-state cost per login O(1) while still
# bounding the table: between sweeps at most `_SWEEP_STRIDE` new logins
# can be inserted.
_SWEEP_STRIDE = 1024


@dataclass
class _LoginState:
    failures: int = 0
    window_start_ms: float = 0.0
    locked_until_ms: float = 0.0


@dataclass
class LoginThrottle:
    """Locks a login out after repeated failures inside a window."""

    max_failures: int = 5
    window_ms: float = 60_000.0
    lockout_ms: float = 300_000.0
    _states: Dict[str, _LoginState] = field(default_factory=dict)
    _failures_since_sweep: int = 0

    def __post_init__(self) -> None:
        if self.max_failures < 1:
            raise ValidationError("max_failures must be >= 1")
        if self.window_ms <= 0 or self.lockout_ms <= 0:
            raise ValidationError("window and lockout must be positive")

    def allowed(self, login: str, now_ms: float) -> bool:
        state = self._states.get(login)
        return state is None or now_ms >= state.locked_until_ms

    def record_failure(self, login: str, now_ms: float) -> None:
        state = self._states.setdefault(login, _LoginState(window_start_ms=now_ms))
        if now_ms - state.window_start_ms > self.window_ms:
            state.failures = 0
            state.window_start_ms = now_ms
        state.failures += 1
        if state.failures >= self.max_failures:
            state.locked_until_ms = now_ms + self.lockout_ms
            state.failures = 0
            state.window_start_ms = now_ms
        self._failures_since_sweep += 1
        if self._failures_since_sweep >= _SWEEP_STRIDE:
            self.evict_expired(now_ms)

    def record_success(self, login: str) -> None:
        self._states.pop(login, None)

    def locked_until(self, login: str) -> float:
        state = self._states.get(login)
        return state.locked_until_ms if state else 0.0

    # -- bounded memory -------------------------------------------------

    def _expired(self, state: _LoginState, now_ms: float) -> bool:
        window_done = now_ms - state.window_start_ms > self.window_ms
        lockout_done = now_ms >= state.locked_until_ms
        return window_done and lockout_done

    def evict_expired(self, now_ms: float) -> int:
        """Drop entries whose failure window AND lockout have both lapsed.

        Such entries are behaviourally identical to an absent entry:
        `allowed` returns True and the next `record_failure` resets the
        window anyway.  Without eviction the dict grows monotonically
        with the number of distinct logins that ever failed — unbounded
        under millions of logins.  Returns the number of entries evicted.
        """

        dead = [login for login, state in self._states.items() if self._expired(state, now_ms)]
        for login in dead:
            del self._states[login]
        self._failures_since_sweep = 0
        return len(dead)

    def tracked_logins(self) -> int:
        """Number of logins currently holding throttle state."""

        return len(self._states)

    # -- replication support --------------------------------------------

    def export_state(self, login: str) -> Tuple[float, float, float] | None:
        """Snapshot one login's state as (failures, window_start, locked_until)."""

        state = self._states.get(login)
        if state is None:
            return None
        return (float(state.failures), state.window_start_ms, state.locked_until_ms)

    def restore_state(self, login: str, state: Tuple[float, float, float] | None) -> None:
        if state is None:
            self._states.pop(login, None)
            return
        failures, window_start_ms, locked_until_ms = state
        self._states[login] = _LoginState(
            failures=int(failures),
            window_start_ms=float(window_start_ms),
            locked_until_ms=float(locked_until_ms),
        )

    def export_all(self) -> List[Tuple[str, float, float, float]]:
        """Deterministic full export, sorted by login (for snapshots)."""

        return [
            (login, float(state.failures), state.window_start_ms, state.locked_until_ms)
            for login, state in sorted(self._states.items())
        ]
