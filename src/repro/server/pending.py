"""Pending exchanges: requests waiting on the phone.

Two web flows block on the phone: password generation (waiting for the
token ``T``) and master-password change (waiting for the phone to
present ``P_id``). Each gets a pending record keyed by an unguessable
id that travels in the rendezvous push; the phone echoes it back so the
server can correlate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict

from repro.crypto.randomness import RandomSource
from repro.util.errors import NotFoundError, RateLimitedError
from repro.web.app import Deferred

KIND_PASSWORD = "password_request"
KIND_MASTER_CHANGE = "master_change_request"

# Admission control: one user may only have this many phone round trips
# in flight at once. A browser retrying into a dead rendezvous service
# would otherwise pile up exchanges (each pinning a pool thread until
# the generation timeout).
DEFAULT_MAX_PER_USER = 4

# How many *completed* exchange ids to remember, for idempotent /token:
# a phone retransmitting a token whose 200 was lost must get another
# 200, not a 404 that makes it think the exchange vanished.
_COMPLETED_MEMORY = 256


@dataclass
class PendingExchange:
    """One outstanding phone round-trip."""

    pending_id: str
    kind: str
    user_id: int
    deferred: Deferred
    created_at_ms: float
    tstart_ms: float
    account_id: int | None = None
    extra: Dict[str, Any] = field(default_factory=dict)
    timeout_event: Any = None


class PendingRegistry:
    """Creates, resolves and expires pending exchanges."""

    def __init__(
        self, rng: RandomSource, max_per_user: int = DEFAULT_MAX_PER_USER
    ) -> None:
        self._rng = rng
        self.max_per_user = max_per_user
        self._pending: Dict[str, PendingExchange] = {}
        self._completed_ids: Deque[str] = deque(maxlen=_COMPLETED_MEMORY)
        self._completed_set: set[str] = set()
        self.timeout_count = 0
        self.completed_count = 0
        self.cancelled_count = 0
        self.rejected_count = 0

    def create(
        self,
        kind: str,
        user_id: int,
        now_ms: float,
        account_id: int | None = None,
        **extra: Any,
    ) -> PendingExchange:
        if self.max_per_user > 0:
            in_flight = self.outstanding_for(user_id)
            if in_flight >= self.max_per_user:
                self.rejected_count += 1
                raise RateLimitedError(
                    f"{in_flight} phone exchanges already in flight for "
                    f"this user (cap {self.max_per_user})",
                    retry_after_ms=1_000.0,
                )
        pending_id = self._rng.token_hex(16)
        exchange = PendingExchange(
            pending_id=pending_id,
            kind=kind,
            user_id=user_id,
            deferred=Deferred(),
            created_at_ms=now_ms,
            tstart_ms=now_ms,
            account_id=account_id,
            extra=dict(extra),
        )
        self._pending[pending_id] = exchange
        return exchange

    def peek(self, pending_id: str, kind: str) -> PendingExchange:
        """Look up an exchange without consuming it.

        Callers verify the submitter's credentials against the peeked
        exchange *before* taking it, so a forged submission (wrong
        ``P_id``) does not destroy the legitimate pending request.
        """
        exchange = self._pending.get(pending_id)
        if exchange is None or exchange.kind != kind:
            raise NotFoundError("no such pending exchange")
        return exchange

    def take(self, pending_id: str, kind: str) -> PendingExchange:
        """Claim the exchange for completion (removes it)."""
        exchange = self._pending.get(pending_id)
        if exchange is None or exchange.kind != kind:
            raise NotFoundError("no such pending exchange")
        del self._pending[pending_id]
        if exchange.timeout_event is not None:
            exchange.timeout_event.cancel()
        self.completed_count += 1
        self._remember_completed(pending_id)
        return exchange

    def expire(self, pending_id: str) -> PendingExchange | None:
        """Remove an exchange on timeout (None if already completed)."""
        exchange = self._pending.pop(pending_id, None)
        if exchange is not None:
            self.timeout_count += 1
        return exchange

    def cancel(self, pending_id: str) -> PendingExchange | None:
        """Abandon an exchange early (push failed fast), cancelling its
        timeout. None if it already completed or expired."""
        exchange = self._pending.pop(pending_id, None)
        if exchange is None:
            return None
        if exchange.timeout_event is not None:
            exchange.timeout_event.cancel()
        self.cancelled_count += 1
        return exchange

    def was_completed(self, pending_id: str) -> bool:
        """Whether this exchange completed recently (bounded memory).

        The idempotent ``/token`` path: a retransmitted token for a
        completed exchange is acknowledged again instead of 404ing.
        """
        return pending_id in self._completed_set

    def _remember_completed(self, pending_id: str) -> None:
        if len(self._completed_ids) == self._completed_ids.maxlen:
            evicted = self._completed_ids[0]
            self._completed_set.discard(evicted)
        self._completed_ids.append(pending_id)
        self._completed_set.add(pending_id)

    def outstanding(self) -> int:
        return len(self._pending)

    def outstanding_for(self, user_id: int) -> int:
        return sum(
            1 for e in self._pending.values() if e.user_id == user_id
        )
