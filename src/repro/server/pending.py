"""Pending exchanges: requests waiting on the phone.

Two web flows block on the phone: password generation (waiting for the
token ``T``) and master-password change (waiting for the phone to
present ``P_id``). Each gets a pending record keyed by an unguessable
id that travels in the rendezvous push; the phone echoes it back so the
server can correlate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.crypto.randomness import RandomSource
from repro.util.errors import NotFoundError
from repro.web.app import Deferred

KIND_PASSWORD = "password_request"
KIND_MASTER_CHANGE = "master_change_request"


@dataclass
class PendingExchange:
    """One outstanding phone round-trip."""

    pending_id: str
    kind: str
    user_id: int
    deferred: Deferred
    created_at_ms: float
    tstart_ms: float
    account_id: int | None = None
    extra: Dict[str, Any] = field(default_factory=dict)
    timeout_event: Any = None


class PendingRegistry:
    """Creates, resolves and expires pending exchanges."""

    def __init__(self, rng: RandomSource) -> None:
        self._rng = rng
        self._pending: Dict[str, PendingExchange] = {}
        self.timeout_count = 0
        self.completed_count = 0

    def create(
        self,
        kind: str,
        user_id: int,
        now_ms: float,
        account_id: int | None = None,
        **extra: Any,
    ) -> PendingExchange:
        pending_id = self._rng.token_hex(16)
        exchange = PendingExchange(
            pending_id=pending_id,
            kind=kind,
            user_id=user_id,
            deferred=Deferred(),
            created_at_ms=now_ms,
            tstart_ms=now_ms,
            account_id=account_id,
            extra=dict(extra),
        )
        self._pending[pending_id] = exchange
        return exchange

    def peek(self, pending_id: str, kind: str) -> PendingExchange:
        """Look up an exchange without consuming it.

        Callers verify the submitter's credentials against the peeked
        exchange *before* taking it, so a forged submission (wrong
        ``P_id``) does not destroy the legitimate pending request.
        """
        exchange = self._pending.get(pending_id)
        if exchange is None or exchange.kind != kind:
            raise NotFoundError("no such pending exchange")
        return exchange

    def take(self, pending_id: str, kind: str) -> PendingExchange:
        """Claim the exchange for completion (removes it)."""
        exchange = self._pending.get(pending_id)
        if exchange is None or exchange.kind != kind:
            raise NotFoundError("no such pending exchange")
        del self._pending[pending_id]
        if exchange.timeout_event is not None:
            exchange.timeout_event.cancel()
        self.completed_count += 1
        return exchange

    def expire(self, pending_id: str) -> PendingExchange | None:
        """Remove an exchange on timeout (None if already completed)."""
        exchange = self._pending.pop(pending_id, None)
        if exchange is not None:
            self.timeout_count += 1
        return exchange

    def outstanding(self) -> int:
        return len(self._pending)
