"""Serving an application over the simulated secure channel.

Reproduces the prototype's concurrency shape: CherryPy with "a maximum
of 10 threads in our thread-pool" (§V-A). Requests that arrive while
all threads are busy queue FIFO; each request occupies a thread for a
sampled compute time before its response is sent. The §VIII remark that
server-side hashing "may be a bottleneck" is measurable by shrinking
the pool or raising the compute-time model (ablation A4).

For population-scale load (10⁴–10⁶ simulated users) the thread-per-
request shape alone is not enough: an unbounded FIFO in front of a
saturated pool just grows forever and every queued request eventually
times out. :class:`DispatchCore` adds a batched-dispatch admission
layer — a bounded queue with depth and age accounting, drained in
batches on a kernel tick, shedding overflow as HTTP 429 so the retry
plane (which treats 429 as retryable) back-pressures the offered load
instead of letting it pile up. It is strictly opt-in: servers built
without it keep the legacy acquire-on-arrival path bit-for-bit.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.net.tls import SecureServer, SecureSession, SecureStack
from repro.sim.kernel import RecurringEvent, Simulator
from repro.sim.latency import Constant, LatencyModel
from repro.sim.random import RngRegistry
from repro.util.errors import ProtocolError, ValidationError
from repro.web.app import Application, Deferred, error_response
from repro.web.http import decode_request, encode_response

DEFAULT_THREAD_POOL_SIZE = 10  # the paper's CherryPy allocation

DEFAULT_DISPATCH_BATCH = 32
DEFAULT_DISPATCH_TICK_MS = 1.0
DEFAULT_DISPATCH_MAX_DEPTH = 2048
DEFAULT_DISPATCH_MAX_AGE_MS = 2_000.0
DEFAULT_DISPATCH_RETRY_AFTER_MS = 250.0


class ThreadPoolModel:
    """A counted-resource model of a server thread pool."""

    def __init__(self, size: int = DEFAULT_THREAD_POOL_SIZE) -> None:
        if size < 1:
            raise ValidationError(f"thread pool needs >= 1 thread, got {size}")
        self.size = size
        self.busy = 0
        self.peak_busy = 0
        self.queued_peak = 0
        self._waiting: Deque[Tuple] = deque()

    @property
    def queue_depth(self) -> int:
        return len(self._waiting)

    def acquire(self, work) -> bool:
        """Run *work* now if a thread is free, else queue it. Returns
        True when the work started immediately."""
        if self.busy < self.size:
            self.busy += 1
            self.peak_busy = max(self.peak_busy, self.busy)
            work()
            return True
        self._waiting.append(work)
        self.queued_peak = max(self.queued_peak, len(self._waiting))
        return False

    def release(self) -> None:
        """Finish one unit of work and start the next queued one, if any."""
        if self.busy <= 0:
            raise ValidationError("release without matching acquire")
        self.busy -= 1
        if self._waiting:
            work = self._waiting.popleft()
            self.busy += 1
            self.peak_busy = max(self.peak_busy, self.busy)
            work()


class DispatchCore:
    """Batched-dispatch admission control in front of a thread pool.

    Arriving work is appended to a bounded admission queue instead of
    being handed straight to the pool. A recurring kernel tick drains
    the queue in batches, starting at most ``batch_size`` requests per
    tick and only while the pool has free threads, so the pool's FIFO
    never grows and all waiting happens where it is observable. Two
    shed conditions back-pressure the client through ``on_shed`` (which
    the server maps to HTTP 429):

    - depth: an arrival that would exceed ``max_depth`` is refused
      immediately, and
    - age: at each tick, requests older than ``max_age_ms`` are dropped
      from the head — their client would time out anyway, so serving
      them only steals capacity from fresher work.

    The drain tick is armed lazily on first enqueue and disarmed when
    the queue empties, so an idle server contributes zero events to the
    kernel heap — essential when one simulation hosts many servers.
    """

    def __init__(
        self,
        kernel: Simulator,
        pool: ThreadPoolModel,
        batch_size: int = DEFAULT_DISPATCH_BATCH,
        tick_ms: float = DEFAULT_DISPATCH_TICK_MS,
        max_depth: int = DEFAULT_DISPATCH_MAX_DEPTH,
        max_age_ms: float = DEFAULT_DISPATCH_MAX_AGE_MS,
        retry_after_ms: float = DEFAULT_DISPATCH_RETRY_AFTER_MS,
    ) -> None:
        if batch_size < 1:
            raise ValidationError(f"dispatch batch needs >= 1, got {batch_size}")
        if tick_ms <= 0:
            raise ValidationError(f"dispatch tick must be > 0 ms, got {tick_ms}")
        if max_depth < 1:
            raise ValidationError(f"dispatch depth needs >= 1, got {max_depth}")
        if max_age_ms <= 0:
            raise ValidationError(f"dispatch max age must be > 0 ms, got {max_age_ms}")
        self.kernel = kernel
        self.pool = pool
        self.batch_size = batch_size
        self.tick_ms = tick_ms
        self.max_depth = max_depth
        self.max_age_ms = max_age_ms
        self.retry_after_ms = retry_after_ms
        self.admitted_total = 0
        self.started_total = 0
        self.shed_total = 0
        self.peak_depth = 0
        self.drained_batches_total = 0
        self.last_batch_size = 0
        self._queue: Deque[Tuple[float, Callable[[], None], Callable[[], None]]] = deque()
        self._ticker: Optional[RecurringEvent] = None
        self._shed_observers: list = []
        self._drain_observers: list = []

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def busy(self) -> int:
        return self.pool.busy

    def oldest_age_ms(self) -> float:
        """Age of the head request, 0.0 when the queue is empty."""
        if not self._queue:
            return 0.0
        return self.kernel.now - self._queue[0][0]

    def add_shed_observer(self, observer: Callable[[], None]) -> None:
        """Call *observer* on every shed (depth or age) — the hook the
        metrics counter rides on."""
        self._shed_observers.append(observer)

    def add_drain_observer(self, observer: Callable[[int], None]) -> None:
        """Call ``observer(batch_size)`` after each tick that started at
        least one request — the hook batch-size metrics (and the
        server's vectorized-render flush accounting) ride on."""
        self._drain_observers.append(observer)

    def submit(
        self, start: Callable[[], None], shed: Callable[[], None]
    ) -> bool:
        """Admit *start* for a later drain tick, or invoke *shed* now if
        the queue is at depth. Returns True when admitted."""
        if len(self._queue) >= self.max_depth:
            self._shed(shed)
            return False
        self._queue.append((self.kernel.now, start, shed))
        self.admitted_total += 1
        self.peak_depth = max(self.peak_depth, len(self._queue))
        if self._ticker is None:
            self._ticker = self.kernel.schedule_every(
                self.tick_ms, self._drain, "dispatch drain"
            )
        return True

    def _shed(self, shed: Callable[[], None]) -> None:
        self.shed_total += 1
        for observer in self._shed_observers:
            observer()
        shed()

    def _drain(self) -> None:
        now = self.kernel.now
        while self._queue and now - self._queue[0][0] > self.max_age_ms:
            _, _, shed = self._queue.popleft()
            self._shed(shed)
        started = 0
        while (
            self._queue
            and started < self.batch_size
            and self.pool.busy < self.pool.size
        ):
            _, start, _ = self._queue.popleft()
            started += 1
            self.started_total += 1
            self.pool.acquire(start)
        if started:
            self.drained_batches_total += 1
            self.last_batch_size = started
            for observer in self._drain_observers:
                observer(started)
        if not self._queue and self._ticker is not None:
            self._ticker.cancel()
            self._ticker = None


class SimHttpServer:
    """Binds an :class:`~repro.web.app.Application` to a secure service."""

    def __init__(
        self,
        application: Application,
        stack: SecureStack,
        secure_server: SecureServer,
        kernel: Simulator,
        service: str = "https",
        compute_latency: LatencyModel | None = None,
        thread_pool_size: int = DEFAULT_THREAD_POOL_SIZE,
        registry=None,
    ) -> None:
        self.application = application
        self.stack = stack
        self.kernel = kernel
        self.service = service
        self.pool = ThreadPoolModel(thread_pool_size)
        self.dispatch: Optional[DispatchCore] = None
        self.compute_latency = (
            compute_latency if compute_latency is not None else Constant(1.0)
        )
        self._rng = RngRegistry(f"http-server:{service}").stream("compute")
        self._registry = registry
        if registry is not None:
            from repro.obs.instrument import attach_pool_stats

            attach_pool_stats(self.pool, registry, service=service)
        secure_server.register_service(service, self._on_record)

    def enable_batched_dispatch(
        self,
        batch_size: int = DEFAULT_DISPATCH_BATCH,
        tick_ms: float = DEFAULT_DISPATCH_TICK_MS,
        max_depth: int = DEFAULT_DISPATCH_MAX_DEPTH,
        max_age_ms: float = DEFAULT_DISPATCH_MAX_AGE_MS,
        retry_after_ms: float = DEFAULT_DISPATCH_RETRY_AFTER_MS,
        service: Optional[str] = None,
    ) -> DispatchCore:
        """Switch this server from acquire-on-arrival to the batched-
        dispatch admission path. Safe to call once, before traffic; the
        returned :class:`DispatchCore` exposes the saturation counters
        and (when the server was built with a registry) is published as
        the ``amnesia_dispatch_*`` metric families. *service* overrides
        the metric label — pass distinct names when several servers
        share one registry (the cluster testbed), else last-attach wins
        on the gauges."""
        if self.dispatch is not None:
            raise ValidationError("batched dispatch already enabled")
        self.dispatch = DispatchCore(
            self.kernel,
            self.pool,
            batch_size=batch_size,
            tick_ms=tick_ms,
            max_depth=max_depth,
            max_age_ms=max_age_ms,
            retry_after_ms=retry_after_ms,
        )
        if self._registry is not None:
            from repro.obs.instrument import attach_dispatch_stats

            attach_dispatch_stats(
                self.dispatch,
                self._registry,
                service=self.service if service is None else service,
            )
        return self.dispatch

    def _on_record(self, session: SecureSession, seq: int, plaintext: bytes) -> None:
        def work() -> None:
            delay = self.compute_latency.sample(self._rng)
            self.kernel.schedule(delay, lambda: self._finish(session, seq, plaintext))

        if self.dispatch is None:
            self.pool.acquire(work)
            return
        self.dispatch.submit(work, lambda: self._shed(session, seq))

    def _shed(self, session: SecureSession, seq: int) -> None:
        """Refuse an over-admission request with 429 + a retry hint, the
        shape the client retry plane understands."""
        response = error_response(
            429,
            "server overloaded; retry later",
            retry_after_ms=self.dispatch.retry_after_ms if self.dispatch else None,
        )
        self.stack.respond(session, seq, encode_response(response))

    def _finish(self, session: SecureSession, seq: int, plaintext: bytes) -> None:
        try:
            request = decode_request(plaintext)
        except ProtocolError as error:
            self.stack.respond(
                session, seq, encode_response(error_response(400, str(error)))
            )
            self.pool.release()
            return
        # Expose the authenticated peer (by secure-channel origin) the way
        # CherryPy exposes the remote address.
        request.headers["x-peer-host"] = session.peer
        result = self.application.handle(request)
        if isinstance(result, Deferred):
            # Blocking-handler semantics: the pool thread stays occupied
            # until the deferred resolves, exactly like a CherryPy thread
            # waiting on the phone's token (see ablation A4).
            def complete(response) -> None:
                self.stack.respond(session, seq, encode_response(response))
                self.pool.release()

            result.on_resolve(complete)
            return
        self.stack.respond(session, seq, encode_response(result))
        self.pool.release()
