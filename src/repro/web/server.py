"""Serving an application over the simulated secure channel.

Reproduces the prototype's concurrency shape: CherryPy with "a maximum
of 10 threads in our thread-pool" (§V-A). Requests that arrive while
all threads are busy queue FIFO; each request occupies a thread for a
sampled compute time before its response is sent. The §VIII remark that
server-side hashing "may be a bottleneck" is measurable by shrinking
the pool or raising the compute-time model (ablation A4).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.net.tls import SecureServer, SecureSession, SecureStack
from repro.sim.kernel import Simulator
from repro.sim.latency import Constant, LatencyModel
from repro.sim.random import RngRegistry
from repro.util.errors import ProtocolError, ValidationError
from repro.web.app import Application, Deferred, error_response
from repro.web.http import decode_request, encode_response

DEFAULT_THREAD_POOL_SIZE = 10  # the paper's CherryPy allocation


class ThreadPoolModel:
    """A counted-resource model of a server thread pool."""

    def __init__(self, size: int = DEFAULT_THREAD_POOL_SIZE) -> None:
        if size < 1:
            raise ValidationError(f"thread pool needs >= 1 thread, got {size}")
        self.size = size
        self.busy = 0
        self.peak_busy = 0
        self.queued_peak = 0
        self._waiting: Deque[Tuple] = deque()

    @property
    def queue_depth(self) -> int:
        return len(self._waiting)

    def acquire(self, work) -> bool:
        """Run *work* now if a thread is free, else queue it. Returns
        True when the work started immediately."""
        if self.busy < self.size:
            self.busy += 1
            self.peak_busy = max(self.peak_busy, self.busy)
            work()
            return True
        self._waiting.append(work)
        self.queued_peak = max(self.queued_peak, len(self._waiting))
        return False

    def release(self) -> None:
        """Finish one unit of work and start the next queued one, if any."""
        if self.busy <= 0:
            raise ValidationError("release without matching acquire")
        self.busy -= 1
        if self._waiting:
            work = self._waiting.popleft()
            self.busy += 1
            self.peak_busy = max(self.peak_busy, self.busy)
            work()


class SimHttpServer:
    """Binds an :class:`~repro.web.app.Application` to a secure service."""

    def __init__(
        self,
        application: Application,
        stack: SecureStack,
        secure_server: SecureServer,
        kernel: Simulator,
        service: str = "https",
        compute_latency: LatencyModel | None = None,
        thread_pool_size: int = DEFAULT_THREAD_POOL_SIZE,
        registry=None,
    ) -> None:
        self.application = application
        self.stack = stack
        self.kernel = kernel
        self.pool = ThreadPoolModel(thread_pool_size)
        self.compute_latency = (
            compute_latency if compute_latency is not None else Constant(1.0)
        )
        self._rng = RngRegistry(f"http-server:{service}").stream("compute")
        if registry is not None:
            from repro.obs.instrument import attach_pool_stats

            attach_pool_stats(self.pool, registry, service=service)
        secure_server.register_service(service, self._on_record)

    def _on_record(self, session: SecureSession, seq: int, plaintext: bytes) -> None:
        def work() -> None:
            delay = self.compute_latency.sample(self._rng)
            self.kernel.schedule(delay, lambda: self._finish(session, seq, plaintext))

        self.pool.acquire(work)

    def _finish(self, session: SecureSession, seq: int, plaintext: bytes) -> None:
        try:
            request = decode_request(plaintext)
        except ProtocolError as error:
            self.stack.respond(
                session, seq, encode_response(error_response(400, str(error)))
            )
            self.pool.release()
            return
        # Expose the authenticated peer (by secure-channel origin) the way
        # CherryPy exposes the remote address.
        request.headers["x-peer-host"] = session.peer
        result = self.application.handle(request)
        if isinstance(result, Deferred):
            # Blocking-handler semantics: the pool thread stays occupied
            # until the deferred resolves, exactly like a CherryPy thread
            # waiting on the phone's token (see ablation A4).
            def complete(response) -> None:
                self.stack.respond(session, seq, encode_response(response))
                self.pool.release()

            result.on_resolve(complete)
            return
        self.stack.respond(session, seq, encode_response(result))
        self.pool.release()
