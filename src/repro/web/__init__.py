"""A minimal thread-pooled web framework (the CherryPy substitute).

The paper's server is "a prototype of Amnesia server using CherryPy, a
lightweight python-based web framework" with a 10-thread pool and
HTTPS. This package provides the same shape:

- an HTTP/1.1-style message codec (:mod:`repro.web.http`),
- a router with path parameters (:mod:`repro.web.router`),
- cookie-backed server sessions (:mod:`repro.web.sessions`),
- an application container (:mod:`repro.web.app`), and
- bindings that serve an application over the simulated TLS channel
  with a thread-pool concurrency model (:mod:`repro.web.server`), plus
  a browser-grade client with a cookie jar (:mod:`repro.web.client`).
"""

from repro.web.http import HttpRequest, HttpResponse, encode_request, decode_request, \
    encode_response, decode_response
from repro.web.router import Router, RouteMatch
from repro.web.sessions import SessionManager, Session
from repro.web.app import Application, Deferred, json_response, error_response
from repro.web.server import SimHttpServer, ThreadPoolModel
from repro.web.client import SimHttpClient, CookieJar

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "Router",
    "RouteMatch",
    "SessionManager",
    "Session",
    "Application",
    "Deferred",
    "json_response",
    "error_response",
    "SimHttpServer",
    "ThreadPoolModel",
    "SimHttpClient",
    "CookieJar",
]
