"""The application container: router + error handling + helpers.

An :class:`Application` turns an :class:`~repro.web.http.HttpRequest`
into an :class:`~repro.web.http.HttpResponse`. Handlers receive the
request plus captured path parameters as keyword arguments. Library
errors map onto HTTP statuses in one place, so endpoint code raises
domain exceptions instead of building error responses by hand.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from repro.util.errors import (
    AuthenticationError,
    AuthorizationError,
    ConflictError,
    NotFoundError,
    ProtocolError,
    RateLimitedError,
    RecoveryError,
    ReproError,
    UnavailableError,
    ValidationError,
)
from repro.web.http import HttpRequest, HttpResponse
from repro.web.router import Router

#: Routes never traced: the observability surfaces themselves (scrapes
#: and probes would otherwise dominate every trace buffer).
TRACE_EXCLUDED_PATHS = frozenset(
    {"/metricsz", "/spansz", "/healthz", "/statusz"}
)

#: Route prefixes that *join* an incoming trace but never root one —
#: background machinery (replication flushes) whose un-parented calls
#: would mint a new trace per batch.
TRACE_JOIN_ONLY_PREFIXES = ("/replicate",)


def trace_route(path: str) -> str:
    """A bounded-cardinality span name for *path*: numeric segments
    (account ids) collapse to ``{id}`` so per-edge aggregation groups
    by endpoint, not by row."""
    return "/".join(
        "{id}" if segment.isdigit() else segment for segment in path.split("/")
    )

_STATUS_FOR_ERROR: list[tuple[type, int]] = [
    (AuthenticationError, 401),
    (AuthorizationError, 403),
    (NotFoundError, 404),
    (ConflictError, 409),
    (RateLimitedError, 429),
    (UnavailableError, 503),
    (ProtocolError, 400),
    (ValidationError, 400),
    (RecoveryError, 400),
]


class Deferred:
    """A response that will be produced later (e.g. after a phone reply).

    Handlers may return a ``Deferred`` instead of a response; the server
    binding keeps the exchange open (occupying a pool thread, exactly as
    a blocking CherryPy handler would) until :meth:`resolve` fires.
    """

    def __init__(self) -> None:
        self._response: HttpResponse | None = None
        self._callbacks: list[Callable[[HttpResponse], None]] = []

    @property
    def resolved(self) -> bool:
        return self._response is not None

    def resolve(self, response: HttpResponse) -> None:
        """Deliver the response; later calls are ignored (first wins)."""
        if self._response is not None:
            return
        self._response = response
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(response)

    def on_resolve(self, callback: Callable[[HttpResponse], None]) -> None:
        if self._response is not None:
            callback(self._response)
        else:
            self._callbacks.append(callback)


def wants_json(request: HttpRequest) -> bool:
    """Does *request* negotiate a JSON representation?

    ``?format=json`` is the explicit override; otherwise the ``Accept``
    header is honoured when ``application/json`` (or ``text/json``)
    outranks any plain-text alternative in its list. ``*/*`` and absent
    headers keep the endpoint's default representation.
    """
    explicit = request.query.get("format")
    if explicit is not None:
        return explicit == "json"
    accept = request.headers.get("accept", "")
    for clause in accept.split(","):
        media = clause.split(";")[0].strip().lower()
        if media in ("application/json", "text/json"):
            return True
        if media in ("text/plain", "text/*"):
            return False
    return False


def json_response(payload: Any, status: int = 200) -> HttpResponse:
    """A JSON-encoded response."""
    return HttpResponse(
        status=status,
        headers={"content-type": "application/json"},
        body=json.dumps(payload).encode("utf-8"),
    )


def error_response(
    status: int, message: str, retry_after_ms: float | None = None
) -> HttpResponse:
    """The uniform error body used across all endpoints.

    *retry_after_ms* (when given) is included in the body so clients can
    honour structured backoff hints on 429/503 responses.
    """
    body: dict[str, Any] = {"error": message}
    if retry_after_ms is not None:
        body["retry_after_ms"] = retry_after_ms
    return json_response(body, status=status)


class Application:
    """Routes requests and translates domain errors to HTTP statuses.

    :meth:`bind_observability` attaches a metrics registry and a clock;
    from then on every dispatch is counted per endpoint
    (``amnesia_http_requests_total{route,method,status}``), timed into a
    per-route latency histogram (``amnesia_http_request_ms`` — deferred
    responses are timed to their resolution, i.e. the full blocking
    wait), and a ``GET /metricsz`` route serves the registry in
    Prometheus text exposition format (``?format=json`` for JSON).
    """

    UNMATCHED_ROUTE = "unmatched"

    def __init__(self, name: str = "app") -> None:
        self.name = name
        self.router = Router()
        self._before: list[Callable[[HttpRequest], HttpResponse | None]] = []
        self.handled_count = 0
        self.error_count = 0
        self.obs_registry = None
        self._obs_clock = None
        self._m_requests = None
        self._m_latency = None
        # Distributed tracing (bind_tracing): None = untraced, and the
        # wire format stays byte-identical to a pre-tracing deployment.
        self.tracer = None

    def before_request(
        self, hook: Callable[[HttpRequest], HttpResponse | None]
    ) -> None:
        """Register middleware: returning a response short-circuits."""
        self._before.append(hook)

    # -- observability ---------------------------------------------------------

    def bind_observability(self, registry, clock) -> None:
        """Attach per-endpoint metrics and the ``/metricsz`` exporter."""
        from repro.obs.export import (
            PROMETHEUS_CONTENT_TYPE,
            render_json,
            render_prometheus,
        )

        first_bind = self.obs_registry is None
        self.obs_registry = registry
        self._obs_clock = clock
        self._m_requests = registry.counter(
            "amnesia_http_requests_total",
            "HTTP requests handled, by route pattern, method and status",
            label_names=("route", "method", "status"),
        )
        self._m_latency = registry.histogram(
            "amnesia_http_request_ms",
            "HTTP request latency in ms (deferreds timed to resolution)",
            label_names=("route",),
        )
        if first_bind:

            def metricsz(request: HttpRequest) -> HttpResponse:
                # Content negotiation: explicit ?format=json wins, then
                # the Accept header; the default is Prometheus text
                # exposition with its versioned media type.
                if wants_json(request):
                    return HttpResponse(
                        status=200,
                        headers={"content-type": "application/json"},
                        body=render_json(self.obs_registry).encode("utf-8"),
                    )
                return HttpResponse(
                    status=200,
                    headers={"content-type": PROMETHEUS_CONTENT_TYPE},
                    body=render_prometheus(self.obs_registry).encode("utf-8"),
                )

            self.router.add("GET", "/metricsz", metricsz)

    # -- tracing ---------------------------------------------------------------

    def bind_tracing(self, tracer) -> None:
        """Attach a :class:`~repro.obs.tracing.Tracer`: every non-ops
        dispatch runs inside a server span (joined to the request's
        ``amnesia-trace`` header, or rooting a new trace), and a
        ``GET /spansz`` route serves the node's ended-span buffer with
        incremental ``?since=N`` support for the fleet scraper."""
        first_bind = self.tracer is None
        self.tracer = tracer
        if not first_bind:
            return

        def spansz(request: HttpRequest) -> HttpResponse:
            try:
                since = int(request.query.get("since", "0") or "0")
            except ValueError:
                since = 0
            return json_response(
                {
                    "node": self.tracer.node,
                    "spans": self.tracer.export_since(since),
                }
            )

        self.router.add("GET", "/spansz", spansz)

    def _traced(self, request: HttpRequest) -> "HttpResponse | Deferred":
        """Dispatch inside a server span: extract-or-root, bind, end at
        the response (deferreds end at resolution — a node that dies
        first simply never exports the span, which the trace store
        surfaces as an ``incomplete`` tree)."""
        from repro.obs import tracing

        parent = tracing.extract(request.headers)
        if parent is None and request.path.startswith(TRACE_JOIN_ONLY_PREFIXES):
            return self._dispatch(request)
        span = self.tracer.start_span(
            f"{self.name} {request.method} {trace_route(request.path)}",
            parent=parent,
            kind="server",
        )
        with tracing.bind_span(span):
            result = self._dispatch(request)

        def finish(response: HttpResponse) -> None:
            span.set_attribute("http.status", response.status)
            span.end(status="error" if response.status >= 500 else "ok")

        if isinstance(result, Deferred):
            result.on_resolve(finish)
        else:
            finish(result)
        return result

    def _observe(
        self,
        route: str,
        method: str,
        result: "HttpResponse | Deferred",
        started_ms: float,
    ) -> "HttpResponse | Deferred":
        if self._m_requests is None:
            return result
        if isinstance(result, Deferred):
            def finished(response: HttpResponse) -> None:
                self._record(route, method, response.status, started_ms)

            result.on_resolve(finished)
            return result
        self._record(route, method, result.status, started_ms)
        return result

    def _record(
        self, route: str, method: str, status: int, started_ms: float
    ) -> None:
        from repro.util.logs import current_corr_id

        self._m_requests.labels(
            route=route, method=method, status=str(status)
        ).inc()
        # The bound correlation id rides along as the bucket's exemplar,
        # so a latency alert on this histogram names a traceable exchange.
        corr = current_corr_id()
        self._m_latency.labels(route=route).observe(
            max(0.0, self._obs_clock.now - started_ms),
            exemplar=corr if corr != "-" else None,
        )

    # -- dispatch --------------------------------------------------------------

    def handle(self, request: HttpRequest) -> "HttpResponse | Deferred":
        """Dispatch one request; never raises. May return a
        :class:`Deferred` when the handler needs to wait for an external
        event before responding."""
        if self.tracer is not None and request.path not in TRACE_EXCLUDED_PATHS:
            return self._traced(request)
        return self._dispatch(request)

    def _dispatch(self, request: HttpRequest) -> "HttpResponse | Deferred":
        self.handled_count += 1
        started_ms = self._obs_clock.now if self._obs_clock is not None else 0.0
        route_label = self.UNMATCHED_ROUTE
        try:
            for hook in self._before:
                early = hook(request)
                if early is not None:
                    return self._observe(
                        route_label, request.method, early, started_ms
                    )
            match = self.router.resolve(request)
            if match is None:
                allowed = self.router.allowed_methods(request)
                if allowed:
                    response = error_response(405, "method not allowed")
                    response.headers["allow"] = ", ".join(allowed)
                    return self._observe(
                        route_label, request.method, response, started_ms
                    )
                return self._observe(
                    route_label,
                    request.method,
                    error_response(404, f"no route for {request.path}"),
                    started_ms,
                )
            route_label = match.pattern or request.path
            if self.tracer is not None:
                from repro.obs.tracing import current_span

                span = current_span()
                if span is not None:
                    span.set_name(f"{self.name} {request.method} {route_label}")
            result = match.handler(request, **match.params)
            return self._observe(route_label, request.method, result, started_ms)
        except ReproError as error:
            self.error_count += 1
            retry_after = getattr(error, "retry_after_ms", None)
            for error_type, status in _STATUS_FOR_ERROR:
                if isinstance(error, error_type):
                    return self._observe(
                        route_label,
                        request.method,
                        error_response(status, str(error), retry_after),
                        started_ms,
                    )
            return self._observe(
                route_label,
                request.method,
                error_response(500, str(error)),
                started_ms,
            )
        except Exception as error:  # noqa: BLE001 - the container is the last resort
            self.error_count += 1
            return self._observe(
                route_label,
                request.method,
                error_response(500, f"internal error: {type(error).__name__}"),
                started_ms,
            )
