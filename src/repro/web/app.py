"""The application container: router + error handling + helpers.

An :class:`Application` turns an :class:`~repro.web.http.HttpRequest`
into an :class:`~repro.web.http.HttpResponse`. Handlers receive the
request plus captured path parameters as keyword arguments. Library
errors map onto HTTP statuses in one place, so endpoint code raises
domain exceptions instead of building error responses by hand.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from repro.util.errors import (
    AuthenticationError,
    AuthorizationError,
    ConflictError,
    NotFoundError,
    ProtocolError,
    RecoveryError,
    ReproError,
    ValidationError,
)
from repro.web.http import HttpRequest, HttpResponse
from repro.web.router import Router

_STATUS_FOR_ERROR: list[tuple[type, int]] = [
    (AuthenticationError, 401),
    (AuthorizationError, 403),
    (NotFoundError, 404),
    (ConflictError, 409),
    (ProtocolError, 400),
    (ValidationError, 400),
    (RecoveryError, 400),
]


class Deferred:
    """A response that will be produced later (e.g. after a phone reply).

    Handlers may return a ``Deferred`` instead of a response; the server
    binding keeps the exchange open (occupying a pool thread, exactly as
    a blocking CherryPy handler would) until :meth:`resolve` fires.
    """

    def __init__(self) -> None:
        self._response: HttpResponse | None = None
        self._callbacks: list[Callable[[HttpResponse], None]] = []

    @property
    def resolved(self) -> bool:
        return self._response is not None

    def resolve(self, response: HttpResponse) -> None:
        """Deliver the response; later calls are ignored (first wins)."""
        if self._response is not None:
            return
        self._response = response
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(response)

    def on_resolve(self, callback: Callable[[HttpResponse], None]) -> None:
        if self._response is not None:
            callback(self._response)
        else:
            self._callbacks.append(callback)


def json_response(payload: Any, status: int = 200) -> HttpResponse:
    """A JSON-encoded response."""
    return HttpResponse(
        status=status,
        headers={"content-type": "application/json"},
        body=json.dumps(payload).encode("utf-8"),
    )


def error_response(status: int, message: str) -> HttpResponse:
    """The uniform error body used across all endpoints."""
    return json_response({"error": message}, status=status)


class Application:
    """Routes requests and translates domain errors to HTTP statuses."""

    def __init__(self, name: str = "app") -> None:
        self.name = name
        self.router = Router()
        self._before: list[Callable[[HttpRequest], HttpResponse | None]] = []
        self.handled_count = 0
        self.error_count = 0

    def before_request(
        self, hook: Callable[[HttpRequest], HttpResponse | None]
    ) -> None:
        """Register middleware: returning a response short-circuits."""
        self._before.append(hook)

    def handle(self, request: HttpRequest) -> "HttpResponse | Deferred":
        """Dispatch one request; never raises. May return a
        :class:`Deferred` when the handler needs to wait for an external
        event before responding."""
        self.handled_count += 1
        try:
            for hook in self._before:
                early = hook(request)
                if early is not None:
                    return early
            match = self.router.resolve(request)
            if match is None:
                allowed = self.router.allowed_methods(request)
                if allowed:
                    response = error_response(405, "method not allowed")
                    response.headers["allow"] = ", ".join(allowed)
                    return response
                return error_response(404, f"no route for {request.path}")
            return match.handler(request, **match.params)
        except ReproError as error:
            self.error_count += 1
            for error_type, status in _STATUS_FOR_ERROR:
                if isinstance(error, error_type):
                    return error_response(status, str(error))
            return error_response(500, str(error))
        except Exception as error:  # noqa: BLE001 - the container is the last resort
            self.error_count += 1
            return error_response(500, f"internal error: {type(error).__name__}")
