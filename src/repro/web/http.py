"""HTTP/1.1-style message model and wire codec.

Requests and responses are serialised to a textual head plus binary
body (exactly the HTTP framing browsers speak) so they can travel as
TLS record payloads on the simulated network, and so the codec itself
is a tested component rather than an implicit in-process call.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, quote, unquote, urlencode

from repro.util.errors import ProtocolError, ValidationError

_CRLF = b"\r\n"
_MAX_HEAD_SIZE = 64 * 1024

STATUS_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    302: "Found",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    410: "Gone",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_METHODS = frozenset({"GET", "POST", "PUT", "DELETE", "PATCH", "HEAD", "OPTIONS"})


def _parse_cookies(header: str) -> dict[str, str]:
    cookies: dict[str, str] = {}
    for piece in header.split(";"):
        if "=" not in piece:
            continue
        name, __, value = piece.strip().partition("=")
        cookies[unquote(name)] = unquote(value)
    return cookies


@dataclass
class HttpRequest:
    """One HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    cookies: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.method = self.method.upper()
        if self.method not in _METHODS:
            raise ValidationError(f"unsupported HTTP method {self.method!r}")
        if not self.path.startswith("/"):
            raise ValidationError(f"path must start with '/', got {self.path!r}")

    def json(self) -> Any:
        """Parse the body as JSON; raises :class:`ProtocolError` if invalid."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ProtocolError(f"invalid JSON body: {error}") from error

    def form(self) -> dict[str, str]:
        """Parse the body as a urlencoded form."""
        try:
            return dict(parse_qsl(self.body.decode("utf-8"), keep_blank_values=True))
        except UnicodeDecodeError as error:
            raise ProtocolError(f"invalid form body: {error}") from error

    @classmethod
    def json_request(
        cls,
        method: str,
        path: str,
        payload: Any,
        query: dict[str, str] | None = None,
        headers: dict[str, str] | None = None,
    ) -> "HttpRequest":
        body = json.dumps(payload).encode("utf-8")
        all_headers = {"content-type": "application/json"}
        if headers:
            all_headers.update({k.lower(): v for k, v in headers.items()})
        return cls(
            method=method,
            path=path,
            query=dict(query or {}),
            headers=all_headers,
            body=body,
        )


@dataclass
class HttpResponse:
    """One HTTP response."""

    status: int = 200
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    set_cookies: dict[str, str] = field(default_factory=dict)

    def json(self) -> Any:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ProtocolError(f"invalid JSON body: {error}") from error

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def reason(self) -> str:
        return STATUS_REASONS.get(self.status, "Unknown")


# -- wire codec -----------------------------------------------------------------


def encode_request(request: HttpRequest) -> bytes:
    """Serialise a request to HTTP/1.1 bytes."""
    target = quote(request.path, safe="/%~.-_")
    if request.query:
        target += "?" + urlencode(request.query)
    lines = [f"{request.method} {target} HTTP/1.1"]
    headers = {k.lower(): v for k, v in request.headers.items()}
    headers["content-length"] = str(len(request.body))
    if request.cookies:
        headers["cookie"] = "; ".join(
            f"{quote(k)}={quote(v)}" for k, v in sorted(request.cookies.items())
        )
    for name, value in sorted(headers.items()):
        _check_header(name, value)
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines).encode("utf-8") + _CRLF + _CRLF
    return head + request.body


def decode_request(raw: bytes) -> HttpRequest:
    """Parse HTTP/1.1 request bytes."""
    head, body = _split_head(raw)
    lines = head.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or parts[2] != "HTTP/1.1":
        raise ProtocolError(f"malformed request line {lines[0]!r}")
    method, target = parts[0], parts[1]
    path, __, query_string = target.partition("?")
    headers = _parse_headers(lines[1:])
    _check_length(headers, body)
    cookies = _parse_cookies(headers.pop("cookie", ""))
    try:
        return HttpRequest(
            method=method,
            path=unquote(path),
            query=dict(parse_qsl(query_string, keep_blank_values=True)),
            headers=headers,
            body=body,
            cookies=cookies,
        )
    except ValidationError as error:
        raise ProtocolError(str(error)) from error


def encode_response(response: HttpResponse) -> bytes:
    """Serialise a response to HTTP/1.1 bytes."""
    lines = [f"HTTP/1.1 {response.status} {response.reason()}"]
    headers = {k.lower(): v for k, v in response.headers.items()}
    headers["content-length"] = str(len(response.body))
    for name, value in sorted(headers.items()):
        _check_header(name, value)
        lines.append(f"{name}: {value}")
    for name, value in sorted(response.set_cookies.items()):
        lines.append(f"set-cookie: {quote(name)}={quote(value)}; Path=/; HttpOnly")
    head = "\r\n".join(lines).encode("utf-8") + _CRLF + _CRLF
    return head + response.body


def decode_response(raw: bytes) -> HttpResponse:
    """Parse HTTP/1.1 response bytes."""
    head, body = _split_head(raw)
    lines = head.split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or parts[0] != "HTTP/1.1":
        raise ProtocolError(f"malformed status line {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError as error:
        raise ProtocolError(f"bad status code {parts[1]!r}") from error
    set_cookies: dict[str, str] = {}
    header_lines = []
    for line in lines[1:]:
        lowered = line.lower()
        if lowered.startswith("set-cookie:"):
            cookie_part = line.split(":", 1)[1].strip().split(";")[0]
            name, __, value = cookie_part.partition("=")
            set_cookies[unquote(name)] = unquote(value)
        else:
            header_lines.append(line)
    headers = _parse_headers(header_lines)
    _check_length(headers, body)
    return HttpResponse(
        status=status, headers=headers, body=body, set_cookies=set_cookies
    )


def _split_head(raw: bytes) -> tuple[str, bytes]:
    separator = raw.find(_CRLF + _CRLF)
    if separator < 0:
        raise ProtocolError("no header/body separator")
    if separator > _MAX_HEAD_SIZE:
        raise ProtocolError("header section too large")
    try:
        head = raw[:separator].decode("utf-8")
    except UnicodeDecodeError as error:
        raise ProtocolError(f"non-UTF-8 header section: {error}") from error
    return head, raw[separator + 4 :]


def _parse_headers(lines: list[str]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in lines:
        if not line:
            continue
        if ":" not in line:
            raise ProtocolError(f"malformed header line {line!r}")
        name, __, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return headers


def _check_length(headers: dict[str, str], body: bytes) -> None:
    declared = headers.pop("content-length", None)
    if declared is not None and int(declared) != len(body):
        raise ProtocolError(
            f"content-length {declared} does not match body size {len(body)}"
        )


def _check_header(name: str, value: str) -> None:
    if "\r" in name or "\n" in name or "\r" in value or "\n" in value:
        raise ProtocolError("header injection attempt (CR/LF in header)")
