"""Cookie-backed server-side sessions.

The Amnesia server component "manages and handles user interaction and
sessions" (§V-A). Sessions are opaque random tokens mapped to
server-side state with idle expiry; the token travels in an HttpOnly
cookie.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.crypto.randomness import RandomSource
from repro.util.errors import ValidationError

SESSION_COOKIE = "amnesia_session"
DEFAULT_IDLE_TIMEOUT_MS = 15 * 60 * 1000.0


@dataclass
class Session:
    """One authenticated session's server-side state."""

    token: str
    created_at_ms: float
    last_seen_ms: float
    data: Dict[str, Any] = field(default_factory=dict)


class SessionManager:
    """Issues, resolves and expires session tokens."""

    def __init__(
        self,
        rng: RandomSource,
        idle_timeout_ms: float = DEFAULT_IDLE_TIMEOUT_MS,
    ) -> None:
        if idle_timeout_ms <= 0:
            raise ValidationError(f"idle timeout must be > 0, got {idle_timeout_ms}")
        self._rng = rng
        self._idle_timeout_ms = idle_timeout_ms
        self._sessions: Dict[str, Session] = {}

    def create(self, now_ms: float, **data: Any) -> Session:
        token = self._rng.token_hex(32)
        session = Session(
            token=token, created_at_ms=now_ms, last_seen_ms=now_ms, data=dict(data)
        )
        self._sessions[token] = session
        return session

    def install(self, session: Session) -> None:
        """Adopt an externally created session (replication, migration)."""

        self._sessions[session.token] = session

    def all_sessions(self) -> list:
        """Every stored session, ordered by token (deterministic)."""

        return [self._sessions[token] for token in sorted(self._sessions)]

    def resolve(self, token: str | None, now_ms: float) -> Optional[Session]:
        """Return the live session for *token*, refreshing its idle clock."""
        if not token:
            return None
        session = self._sessions.get(token)
        if session is None:
            return None
        if now_ms - session.last_seen_ms > self._idle_timeout_ms:
            del self._sessions[token]
            return None
        session.last_seen_ms = now_ms
        return session

    def revoke(self, token: str) -> None:
        self._sessions.pop(token, None)

    def revoke_all(self, predicate=None) -> int:
        """Revoke all sessions (or those matching *predicate*); returns count."""
        if predicate is None:
            count = len(self._sessions)
            self._sessions.clear()
            return count
        doomed = [t for t, s in self._sessions.items() if predicate(s)]
        for token in doomed:
            del self._sessions[token]
        return len(doomed)

    def live_count(self, now_ms: float) -> int:
        return sum(
            1
            for s in self._sessions.values()
            if now_ms - s.last_seen_ms <= self._idle_timeout_ms
        )
