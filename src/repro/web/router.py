"""Path routing with typed path parameters.

Routes look like ``/accounts/{account_id}/generate``; a segment wrapped
in braces captures that path segment as a string parameter. Dispatch is
exact-match on segment count plus literal segments — no regex, so route
behaviour is easy to reason about and to test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.obs.profiler import profiled
from repro.util.errors import ConflictError, ValidationError
from repro.web.http import HttpRequest, HttpResponse

Handler = Callable[..., HttpResponse]


@dataclass(frozen=True)
class RouteMatch:
    """A successful dispatch: the handler plus captured path params.

    ``pattern`` is the registered route pattern (parameters unbound,
    e.g. ``/accounts/{account_id}/generate``) — the right label for
    per-endpoint metrics, since its cardinality is the route table's,
    not the request space's.
    """

    handler: Handler
    params: dict[str, str]
    pattern: str = ""


class _Route:
    def __init__(self, method: str, pattern: str, handler: Handler) -> None:
        if not pattern.startswith("/"):
            raise ValidationError(f"route pattern must start with '/': {pattern!r}")
        self.method = method.upper()
        self.pattern = pattern
        self.handler = handler
        self.segments = pattern.strip("/").split("/") if pattern != "/" else []
        names = [
            s[1:-1] for s in self.segments if s.startswith("{") and s.endswith("}")
        ]
        if len(names) != len(set(names)):
            raise ValidationError(f"duplicate path parameter in {pattern!r}")
        for name in names:
            if not name.isidentifier():
                raise ValidationError(f"bad path parameter name {name!r}")

    def match(self, path_segments: list[str]) -> Optional[dict[str, str]]:
        if len(path_segments) != len(self.segments):
            return None
        params: dict[str, str] = {}
        for expected, actual in zip(self.segments, path_segments):
            if expected.startswith("{") and expected.endswith("}"):
                if not actual:
                    return None
                params[expected[1:-1]] = actual
            elif expected != actual:
                return None
        return params


class Router:
    """Method+pattern route table."""

    def __init__(self) -> None:
        self._routes: list[_Route] = []

    @staticmethod
    def _shape(segments: list[str]) -> tuple[str, ...]:
        """Normalise parameters so /a/{x} and /a/{y} compare equal."""
        return tuple("{}" if s.startswith("{") else s for s in segments)

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        route = _Route(method, pattern, handler)
        for existing in self._routes:
            if existing.method == route.method and self._shape(
                existing.segments
            ) == self._shape(route.segments):
                raise ConflictError(
                    f"route {method} {pattern!r} conflicts with "
                    f"{existing.pattern!r}"
                )
        self._routes.append(route)

    def get(self, pattern: str) -> Callable[[Handler], Handler]:
        return self._decorator("GET", pattern)

    def post(self, pattern: str) -> Callable[[Handler], Handler]:
        return self._decorator("POST", pattern)

    def put(self, pattern: str) -> Callable[[Handler], Handler]:
        return self._decorator("PUT", pattern)

    def delete(self, pattern: str) -> Callable[[Handler], Handler]:
        return self._decorator("DELETE", pattern)

    def _decorator(self, method: str, pattern: str) -> Callable[[Handler], Handler]:
        def register(handler: Handler) -> Handler:
            self.add(method, pattern, handler)
            return handler

        return register

    @profiled("web.route")
    def resolve(self, request: HttpRequest) -> Optional[RouteMatch]:
        """Find the route for *request*; literal matches beat parameter ones."""
        path = request.path.strip("/")
        segments = path.split("/") if path else []
        best: Optional[tuple[int, RouteMatch]] = None
        for route in self._routes:
            if route.method != request.method:
                continue
            params = route.match(segments)
            if params is None:
                continue
            literal_count = sum(
                1 for s in route.segments if not s.startswith("{")
            )
            if best is None or literal_count > best[0]:
                best = (
                    literal_count,
                    RouteMatch(route.handler, params, route.pattern),
                )
        return best[1] if best else None

    def patterns(self) -> list[tuple[str, str]]:
        """All registered ``(method, pattern)`` pairs (for diagnostics)."""
        return [(route.method, route.pattern) for route in self._routes]

    def allowed_methods(self, request: HttpRequest) -> list[str]:
        """Methods that would match this path (for 405 responses)."""
        path = request.path.strip("/")
        segments = path.split("/") if path else []
        methods = {
            route.method
            for route in self._routes
            if route.match(segments) is not None
        }
        return sorted(methods)
