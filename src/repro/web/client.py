"""A browser-grade HTTP client for the simulated network.

Keeps a cookie jar (so Amnesia's session cookie round-trips exactly as
in a real browser) and offers both asynchronous requests (callback) and
a synchronous facade that drives the simulation kernel until the
response arrives — which is what examples and tests want to write.

Resilience: a secure channel that fails (handshake timeout during a
partition, stack-level retry exhaustion) is *permanently* dead, exactly
like a torn-down TLS connection. The client transparently dials a fresh
channel on the next request — what every browser does — and
:meth:`SimHttpClient.request_with_retry` layers a jittered-backoff retry
policy on top for the generation flow.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.faults.retry import (
    RetryPolicy,
    count_retry_attempt,
    count_retry_giveup,
    jittered_delay_ms,
)
from repro.net.certificates import Certificate, CertificateStore
from repro.net.tls import SecureClientChannel, SecureStack
from repro.sim.kernel import Simulator
from repro.util.errors import NetworkError, ProtocolError
from repro.web.http import (
    HttpRequest,
    HttpResponse,
    decode_response,
    encode_request,
)

# Statuses worth retrying from the client side: the server (or a proxy)
# said "try again later", not "you are wrong". 429 is the dispatch
# core's backpressure signal; its retry_after_ms hint stretches the
# backoff the same way 503's does.
RETRYABLE_STATUSES = frozenset({429, 502, 503, 504})

DEFAULT_CLIENT_RETRY = RetryPolicy(
    max_attempts=3,
    base_delay_ms=500.0,
    multiplier=2.0,
    max_delay_ms=8_000.0,
    jitter=0.5,
)


class CookieJar:
    """Per-origin cookie storage (origin = server host name)."""

    def __init__(self) -> None:
        self._cookies: Dict[str, Dict[str, str]] = {}

    def update(self, origin: str, set_cookies: Dict[str, str]) -> None:
        if set_cookies:
            self._cookies.setdefault(origin, {}).update(set_cookies)

    def cookies_for(self, origin: str) -> Dict[str, str]:
        return dict(self._cookies.get(origin, {}))

    def clear(self, origin: str | None = None) -> None:
        if origin is None:
            self._cookies.clear()
        else:
            self._cookies.pop(origin, None)


class SimHttpClient:
    """HTTP over a secure channel, with cookies and a sync facade."""

    def __init__(
        self,
        stack: SecureStack,
        kernel: Simulator,
        server_host: str,
        certificate: Certificate,
        service: str = "https",
        pins: CertificateStore | None = None,
    ) -> None:
        self.stack = stack
        self.kernel = kernel
        self.server_host = server_host
        self.jar = CookieJar()
        self._certificate = certificate
        self._service = service
        self._pins = pins
        self.reconnect_count = 0
        self.retry_count = 0
        # Optional metrics registry: when set, request_with_retry counts
        # attempts/give-ups into the amnesia_retry_* families.
        self.registry = None
        self._channel: SecureClientChannel = stack.connect(
            server_host, certificate, service, pins=pins
        )

    def reconnect(self) -> None:
        """Tear down the current channel and dial a fresh one (new
        handshake, new keys). Cookies survive — they live in the jar,
        not the channel."""
        self.reconnect_count += 1
        self._channel = self.stack.connect(
            self.server_host, self._certificate, self._service, pins=self._pins
        )

    # -- async ---------------------------------------------------------------

    def send(
        self,
        request: HttpRequest,
        on_response: Callable[[HttpResponse], None],
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        """Send *request*, merging jar cookies; deliver the parsed response."""
        merged = self.jar.cookies_for(self.server_host)
        merged.update(request.cookies)
        request.cookies = merged
        # Trace propagation: a context bound to this (synchronous) call
        # stack rides along as the amnesia-trace header. Nothing is
        # added when tracing is not installed, so un-traced deployments
        # keep byte-identical wire traffic.
        from repro.obs.tracing import inject

        inject(request.headers)

        def handle(raw: bytes) -> None:
            try:
                response = decode_response(raw)
            except ProtocolError as error:
                if on_error is not None:
                    on_error(error)
                return
            self.jar.update(self.server_host, response.set_cookies)
            on_response(response)

        if self._channel.failed:
            # The old channel is gone for good (TLS teardown); dial a
            # fresh one rather than failing every future request.
            self.reconnect()
        self._channel.request(encode_request(request), handle, on_error)

    # -- sync facade ----------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        json_body: Any = None,
        query: Dict[str, str] | None = None,
        body: bytes | None = None,
        headers: Dict[str, str] | None = None,
        max_events: int = 500_000,
    ) -> HttpResponse:
        """Send and drive the kernel until the response arrives."""
        if json_body is not None and body is not None:
            raise ProtocolError("pass either json_body or body, not both")
        if json_body is not None:
            request = HttpRequest.json_request(
                method, path, json_body, query=query, headers=headers
            )
        else:
            request = HttpRequest(
                method=method,
                path=path,
                query=dict(query or {}),
                headers=dict(headers or {}),
                body=body if body is not None else b"",
            )
        outcome: Dict[str, Any] = {}

        def on_response(response: HttpResponse) -> None:
            outcome["response"] = response

        def on_error(error: Exception) -> None:
            outcome["error"] = error

        self.send(request, on_response, on_error)
        executed = 0
        while "response" not in outcome and "error" not in outcome:
            if not self.kernel.step():
                raise NetworkError(
                    "simulation queue drained with no response — "
                    "is the server host reachable and bound?"
                )
            executed += 1
            if executed > max_events:
                raise NetworkError("no response within event budget")
        if "error" in outcome:
            raise outcome["error"]
        return outcome["response"]

    def request_with_retry(
        self,
        method: str,
        path: str,
        policy: RetryPolicy = DEFAULT_CLIENT_RETRY,
        rng=None,
        on_retry: Callable[[int, Exception | HttpResponse], None] | None = None,
        **kwargs: Any,
    ) -> HttpResponse:
        """Like :meth:`request`, but retry transport errors and
        retryable statuses (502/503/504) under *policy*.

        Backoff waits are spent driving the kernel forward
        (``kernel.run(until=...)``) — only safe from top-level driver
        code, the same contract as the sync facade itself. Responses
        carrying a ``retry_after_ms`` hint stretch the wait to honour
        it. The last response (or error) is returned/raised when the
        policy is exhausted.
        """
        op_label = f"client {method} {path}"
        started = self.kernel.now
        attempt = 0
        while True:
            attempt += 1
            count_retry_attempt(self.registry, op_label)
            outcome: Exception | HttpResponse
            try:
                response = self.request(method, path, **kwargs)
            except NetworkError as error:
                outcome = error
            else:
                if response.status not in RETRYABLE_STATUSES:
                    return response
                outcome = response
            if policy.exhausted(attempt, started, self.kernel.now):
                count_retry_giveup(self.registry, op_label, "exhausted")
                if isinstance(outcome, HttpResponse):
                    return outcome
                raise outcome
            delay = jittered_delay_ms(
                policy, attempt, rng, registry=self.registry, label=op_label
            )
            if isinstance(outcome, HttpResponse):
                hint = _retry_after_hint(outcome)
                if hint is not None:
                    delay = max(delay, hint)
            self.retry_count += 1
            if on_retry is not None:
                on_retry(attempt, outcome)
            self.kernel.run(until=self.kernel.now + delay)

    def get(self, path: str, **kwargs: Any) -> HttpResponse:
        return self.request("GET", path, **kwargs)

    def post(self, path: str, json_body: Any = None, **kwargs: Any) -> HttpResponse:
        return self.request("POST", path, json_body=json_body, **kwargs)

    def put(self, path: str, json_body: Any = None, **kwargs: Any) -> HttpResponse:
        return self.request("PUT", path, json_body=json_body, **kwargs)

    def delete(self, path: str, **kwargs: Any) -> HttpResponse:
        return self.request("DELETE", path, **kwargs)


def _retry_after_hint(response: HttpResponse) -> float | None:
    """The ``retry_after_ms`` field of a structured error body, if any."""
    try:
        body = response.json()
    except Exception:  # noqa: BLE001 - malformed bodies carry no hint
        return None
    hint = body.get("retry_after_ms") if isinstance(body, dict) else None
    return float(hint) if isinstance(hint, (int, float)) else None
