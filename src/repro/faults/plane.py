"""The fault-injection plane: scheduled failure, deterministically.

A :class:`FaultSchedule` is a declarative list of faults over simulated
time; a :class:`FaultPlane` installs itself on the network fabric and
executes the schedule:

- **windowed link faults** are consulted on every ``Network.send``:
  bidirectional :class:`Partition` between host sets, :class:`LossBurst`
  (extra drop probability on a link), :class:`LatencySpike` (additive
  delay, optionally jittered), :class:`Duplication` (the fabric delivers
  extra copies) and :class:`Reorder` (a random extra delay that permutes
  delivery order);
- **host events**: :class:`CrashRestart` crashes a host at a point in
  time (offline + all volatile port bindings lost) and restarts it
  after ``down_ms``. Services that must survive restarts register a
  *process* (``crash()``/``restart()``) with the plane — e.g. the
  rendezvous service re-binds its port but loses its in-memory queues.

All randomness is drawn from the deployment's seeded RNG registry
(stream ``"faults"``), so a chaos scenario replays bit-identically.
Every injected effect increments
``amnesia_faults_injected_total{kind=...}`` when a metrics registry is
bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol

from repro.util.errors import ConflictError, ValidationError


class RestartableProcess(Protocol):
    """A service that knows how to crash and come back."""

    def crash(self) -> None: ...

    def restart(self) -> None: ...


def _check_window(start_ms: float, duration_ms: float) -> None:
    if start_ms < 0:
        raise ValidationError(f"start_ms must be >= 0, got {start_ms}")
    if duration_ms <= 0:
        raise ValidationError(f"duration_ms must be > 0, got {duration_ms}")


def _check_probability(p: float, name: str) -> None:
    if not (0.0 <= p <= 1.0):
        raise ValidationError(f"{name} must be in [0, 1], got {p}")


@dataclass(frozen=True)
class _Window:
    """Base for faults active during ``[start_ms, start_ms + duration_ms)``."""

    start_ms: float
    duration_ms: float

    def active(self, now_ms: float) -> bool:
        return self.start_ms <= now_ms < self.start_ms + self.duration_ms


@dataclass(frozen=True)
class Partition(_Window):
    """No datagram crosses between *group_a* and *group_b* (both ways)."""

    group_a: tuple[str, ...] = ()
    group_b: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _check_window(self.start_ms, self.duration_ms)
        if not self.group_a or not self.group_b:
            raise ValidationError("partition needs two non-empty host groups")
        if set(self.group_a) & set(self.group_b):
            raise ValidationError("partition groups must be disjoint")

    def severs(self, src: str, dst: str) -> bool:
        return (src in self.group_a and dst in self.group_b) or (
            src in self.group_b and dst in self.group_a
        )


@dataclass(frozen=True)
class LossBurst(_Window):
    """Extra drop probability on a directed link (mirrored by default)."""

    src: str = ""
    dst: str = ""
    loss_probability: float = 0.0
    bidirectional: bool = True

    def __post_init__(self) -> None:
        _check_window(self.start_ms, self.duration_ms)
        _check_probability(self.loss_probability, "loss_probability")

    def covers(self, src: str, dst: str) -> bool:
        if (self.src, self.dst) == (src, dst):
            return True
        return self.bidirectional and (self.dst, self.src) == (src, dst)


@dataclass(frozen=True)
class LatencySpike(_Window):
    """Additive delay on a directed link (mirrored by default)."""

    src: str = ""
    dst: str = ""
    extra_ms: float = 0.0
    jitter_ms: float = 0.0
    bidirectional: bool = True

    def __post_init__(self) -> None:
        _check_window(self.start_ms, self.duration_ms)
        if self.extra_ms < 0 or self.jitter_ms < 0:
            raise ValidationError("extra_ms and jitter_ms must be >= 0")

    def covers(self, src: str, dst: str) -> bool:
        if (self.src, self.dst) == (src, dst):
            return True
        return self.bidirectional and (self.dst, self.src) == (src, dst)


@dataclass(frozen=True)
class Duplication(_Window):
    """Each datagram is delivered twice with probability *probability*."""

    src: str = ""
    dst: str = ""
    probability: float = 0.0
    bidirectional: bool = True

    def __post_init__(self) -> None:
        _check_window(self.start_ms, self.duration_ms)
        _check_probability(self.probability, "probability")

    def covers(self, src: str, dst: str) -> bool:
        if (self.src, self.dst) == (src, dst):
            return True
        return self.bidirectional and (self.dst, self.src) == (src, dst)


@dataclass(frozen=True)
class Reorder(_Window):
    """Randomly delay datagrams so later sends can overtake them."""

    src: str = ""
    dst: str = ""
    probability: float = 0.0
    max_extra_delay_ms: float = 50.0
    bidirectional: bool = True

    def __post_init__(self) -> None:
        _check_window(self.start_ms, self.duration_ms)
        _check_probability(self.probability, "probability")
        if self.max_extra_delay_ms <= 0:
            raise ValidationError("max_extra_delay_ms must be > 0")

    def covers(self, src: str, dst: str) -> bool:
        if (self.src, self.dst) == (src, dst):
            return True
        return self.bidirectional and (self.dst, self.src) == (src, dst)


@dataclass(frozen=True)
class CrashRestart:
    """Crash *host* at *at_ms*; restart it ``down_ms`` later (0 = stay down)."""

    at_ms: float
    host: str
    down_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValidationError(f"at_ms must be >= 0, got {self.at_ms}")
        if self.down_ms < 0:
            raise ValidationError(f"down_ms must be >= 0, got {self.down_ms}")


@dataclass
class SendVerdict:
    """What the plane decided for one datagram."""

    drop_reason: str | None = None
    extra_delay_ms: float = 0.0
    duplicates: int = 0


class FaultSchedule:
    """A declarative, chainable list of faults over simulated time."""

    def __init__(self) -> None:
        self.faults: list = []

    # -- builders (all return self for chaining) -----------------------------

    def partition(
        self,
        start_ms: float,
        duration_ms: float,
        group_a: Iterable[str],
        group_b: Iterable[str],
    ) -> "FaultSchedule":
        self.faults.append(
            Partition(start_ms, duration_ms, tuple(group_a), tuple(group_b))
        )
        return self

    def loss_burst(
        self,
        start_ms: float,
        duration_ms: float,
        src: str,
        dst: str,
        loss_probability: float,
        bidirectional: bool = True,
    ) -> "FaultSchedule":
        self.faults.append(
            LossBurst(start_ms, duration_ms, src, dst, loss_probability, bidirectional)
        )
        return self

    def latency_spike(
        self,
        start_ms: float,
        duration_ms: float,
        src: str,
        dst: str,
        extra_ms: float,
        jitter_ms: float = 0.0,
        bidirectional: bool = True,
    ) -> "FaultSchedule":
        self.faults.append(
            LatencySpike(
                start_ms, duration_ms, src, dst, extra_ms, jitter_ms, bidirectional
            )
        )
        return self

    def duplicate(
        self,
        start_ms: float,
        duration_ms: float,
        src: str,
        dst: str,
        probability: float,
        bidirectional: bool = True,
    ) -> "FaultSchedule":
        self.faults.append(
            Duplication(start_ms, duration_ms, src, dst, probability, bidirectional)
        )
        return self

    def reorder(
        self,
        start_ms: float,
        duration_ms: float,
        src: str,
        dst: str,
        probability: float,
        max_extra_delay_ms: float = 50.0,
        bidirectional: bool = True,
    ) -> "FaultSchedule":
        self.faults.append(
            Reorder(
                start_ms, duration_ms, src, dst,
                probability, max_extra_delay_ms, bidirectional,
            )
        )
        return self

    def crash(self, at_ms: float, host: str, down_ms: float = 0.0) -> "FaultSchedule":
        self.faults.append(CrashRestart(at_ms, host, down_ms))
        return self

    # -- views ----------------------------------------------------------------

    @property
    def windows(self) -> list:
        return [f for f in self.faults if isinstance(f, _Window)]

    @property
    def crashes(self) -> list[CrashRestart]:
        return [f for f in self.faults if isinstance(f, CrashRestart)]

    def horizon_ms(self) -> float:
        """Virtual time by which every scheduled fault has fired/expired."""
        edge = 0.0
        for fault in self.faults:
            if isinstance(fault, _Window):
                edge = max(edge, fault.start_ms + fault.duration_ms)
            else:
                edge = max(edge, fault.at_ms + fault.down_ms)
        return edge


class FaultPlane:
    """Executes a :class:`FaultSchedule` against one network fabric.

    Construct with the deployment's network, register any restartable
    processes, then :meth:`apply` a schedule. The plane installs itself
    as the fabric's fault hook on construction.
    """

    def __init__(self, network, registry=None) -> None:
        self.network = network
        self.kernel = network.kernel
        self._rng = network.rng_stream("faults")
        self._windows: list = []
        self._processes: dict[str, RestartableProcess] = {}
        self._companions: dict[str, list[RestartableProcess]] = {}
        self.injected: dict[str, int] = {}
        self._m_injected = None
        if registry is not None:
            self.bind_registry(registry)
        network.install_faults(self)

    # -- wiring ----------------------------------------------------------------

    def bind_registry(self, registry) -> None:
        self._m_injected = registry.counter(
            "amnesia_faults_injected_total",
            "Fault effects injected by the fault plane, by kind",
            label_names=("kind",),
        )

    def register_process(self, host_name: str, process: RestartableProcess) -> None:
        """Crash/restart events for *host_name* go through *process*
        instead of the bare host (so the service can split volatile from
        durable state and re-bind its ports on restart)."""
        if host_name in self._processes:
            raise ConflictError(f"process already registered for {host_name!r}")
        self._processes[host_name] = process

    def register_companion(
        self, host_name: str, process: RestartableProcess
    ) -> None:
        """Additional crash/restart participants that share *host_name*
        with the primary process (or with the bare host). A host crash
        wipes *all* port bindings, so e.g. the telemetry ops endpoint
        co-located with the rendezvous must re-bind its own port on
        restart; companions run after the primary, in registration
        order. Unlike :meth:`register_process`, many may coexist."""
        self._companions.setdefault(host_name, []).append(process)

    def apply(self, schedule: FaultSchedule) -> None:
        """Arm *schedule*: windows become live, crashes get scheduled.

        Times are relative to the current virtual time, so a schedule
        applied mid-run plays out from "now".
        """
        base = self.kernel.now
        for window in schedule.windows:
            self._windows.append((base, window))
        for crash in schedule.crashes:
            self.kernel.schedule_at(
                base + crash.at_ms,
                lambda c=crash: self._crash(c.host),
                label=f"fault-crash {crash.host}",
            )
            if crash.down_ms > 0:
                self.kernel.schedule_at(
                    base + crash.at_ms + crash.down_ms,
                    lambda c=crash: self._restart(c.host),
                    label=f"fault-restart {crash.host}",
                )

    # -- bookkeeping ------------------------------------------------------------

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        if self._m_injected is not None:
            self._m_injected.labels(kind=kind).inc()

    # -- host events -------------------------------------------------------------

    def _crash(self, host_name: str) -> None:
        self._count("crash")
        process = self._processes.get(host_name)
        if process is not None:
            process.crash()
        else:
            self.network.host(host_name).crash()
        for companion in self._companions.get(host_name, ()):
            companion.crash()

    def _restart(self, host_name: str) -> None:
        self._count("restart")
        process = self._processes.get(host_name)
        if process is not None:
            process.restart()
        else:
            self.network.host(host_name).boot()
        for companion in self._companions.get(host_name, ()):
            companion.restart()

    # -- the fabric hook ----------------------------------------------------------

    def intercept(self, datagram, now_ms: float) -> SendVerdict:
        """Consulted by ``Network.send`` for every datagram."""
        verdict = SendVerdict()
        src, dst = datagram.src, datagram.dst
        for base, window in self._windows:
            if not window.active(now_ms - base):
                continue
            if isinstance(window, Partition):
                if window.severs(src, dst):
                    self._count("partition_drop")
                    verdict.drop_reason = "partition"
                    return verdict
            elif isinstance(window, LossBurst):
                if window.covers(src, dst) and (
                    self._rng.random() < window.loss_probability
                ):
                    self._count("loss_burst_drop")
                    verdict.drop_reason = "loss-burst"
                    return verdict
            elif isinstance(window, LatencySpike):
                if window.covers(src, dst):
                    self._count("latency_spike")
                    extra = window.extra_ms
                    if window.jitter_ms > 0:
                        extra += self._rng.random() * window.jitter_ms
                    verdict.extra_delay_ms += extra
            elif isinstance(window, Duplication):
                if window.covers(src, dst) and (
                    self._rng.random() < window.probability
                ):
                    self._count("duplicate")
                    verdict.duplicates += 1
            elif isinstance(window, Reorder):
                if window.covers(src, dst) and (
                    self._rng.random() < window.probability
                ):
                    self._count("reorder")
                    verdict.extra_delay_ms += (
                        self._rng.random() * window.max_extra_delay_ms
                    )
        return verdict
