"""Fault injection and resilience primitives.

Two halves, deliberately decoupled:

- :mod:`repro.faults.plane` *injects* failure: a :class:`FaultSchedule`
  of partitions, loss bursts, latency spikes, duplication/reorder
  windows and host crash/restart events, executed deterministically by
  a :class:`FaultPlane` installed on the network fabric;
- :mod:`repro.faults.retry` *absorbs* failure: a reusable
  :class:`RetryPolicy` (capped, jittered exponential backoff with an
  optional deadline) plus an asynchronous retry driver for the
  simulation kernel's callback style.

Everything draws from the deployment's seeded RNG registry, so a chaos
scenario replays bit-identically given its seed.
"""

from repro.faults.plane import (
    CrashRestart,
    Duplication,
    FaultPlane,
    FaultSchedule,
    LatencySpike,
    LossBurst,
    Partition,
    Reorder,
)
from repro.faults.retry import GiveUp, RetryPolicy, retry_async

__all__ = [
    "CrashRestart",
    "Duplication",
    "FaultPlane",
    "FaultSchedule",
    "GiveUp",
    "LatencySpike",
    "LossBurst",
    "Partition",
    "Reorder",
    "RetryPolicy",
    "retry_async",
]
