"""A reusable retry policy: cap, jittered exponential backoff, deadline.

The policy is pure data plus arithmetic — it never sleeps. Two drivers
apply it:

- :func:`retry_async` re-invokes a callback-style operation on the
  simulation kernel (used by the phone's ``/token`` return hop, the
  pairing flow, and re-registration);
- :meth:`repro.web.client.SimHttpClient.request_with_retry` drives the
  synchronous facade (used by the browser's generation request).

Backoff uses *decorrelated partial jitter*: attempt ``n`` waits
``base * multiplier**(n-1)`` capped at ``max_delay_ms``, with the top
``jitter`` fraction of that value randomised. All randomness comes from
a caller-supplied stream, so retries replay deterministically under the
simulation's seeded RNG registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.util.errors import ReproError, ValidationError
from repro.util.logs import component_logger

_retry_log = component_logger("retry")


class GiveUp(ReproError):
    """Wrap an error to mark it non-retryable.

    An operation that fails with ``GiveUp(cause)`` stops the retry loop
    immediately; the *cause* (``.__cause__``-style, stored as ``args[0]``
    when it is an exception) is reported to the failure callback.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, and how long to wait in between."""

    max_attempts: int = 4
    base_delay_ms: float = 250.0
    multiplier: float = 2.0
    max_delay_ms: float = 8_000.0
    jitter: float = 0.5
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise ValidationError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValidationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not (0.0 <= self.jitter <= 1.0):
            raise ValidationError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValidationError("deadline must be positive (or None)")

    def raw_delay_ms(self, attempt: int) -> float:
        """The deterministic (jitter-free) delay before attempt
        ``attempt + 1``: exponential growth capped at ``max_delay_ms``."""
        if attempt < 1:
            raise ValidationError(f"attempt must be >= 1, got {attempt}")
        return min(
            self.max_delay_ms,
            self.base_delay_ms * (self.multiplier ** (attempt - 1)),
        )

    def backoff_ms(self, attempt: int, rng=None) -> float:
        """Delay before attempt ``attempt + 1`` (``attempt`` starts at 1).

        Deterministic floor plus a randomised top slice: with
        ``jitter=0.5`` the wait lands uniformly in ``[raw/2, raw]``.

        A jittered policy **requires** an rng: the old behaviour of
        silently returning the raw delay when ``rng is None`` meant a
        fleet of clients configured for jitter would in fact retry in
        lockstep — the exact thundering herd the jitter exists to
        break. Callers that genuinely cannot thread an rng should go
        through :func:`jittered_delay_ms`, which logs and counts the
        degradation instead of hiding it.
        """
        raw = self.raw_delay_ms(attempt)
        if self.jitter <= 0.0:
            return raw
        if rng is None:
            raise ValidationError(
                f"policy has jitter={self.jitter} but no rng was supplied; "
                "pass an rng (or use jittered_delay_ms for the counted "
                "deterministic fallback)"
            )
        floor = raw * (1.0 - self.jitter)
        return floor + rng.random() * (raw - floor)

    def exhausted(self, attempt: int, started_ms: float, now_ms: float) -> bool:
        """True when no further attempt is allowed."""
        if attempt >= self.max_attempts:
            return True
        if self.deadline_ms is not None and now_ms - started_ms >= self.deadline_ms:
            return True
        return False


# An operation takes (on_success, on_failure) and calls exactly one of
# them (possibly asynchronously). Failing with GiveUp stops retrying.
Operation = Callable[[Callable[[Any], None], Callable[[Exception], None]], None]

# Registry families the retry driver feeds (labelled by the driver's
# *label*, so ``/metricsz`` can say which operation is retrying).
RETRY_ATTEMPTS_COUNTER = "amnesia_retry_attempts_total"
RETRY_GIVEUPS_COUNTER = "amnesia_retry_giveups_total"
RETRY_UNJITTERED_COUNTER = "amnesia_retry_unjittered_total"


def count_retry_attempt(registry, label: str) -> None:
    if registry is None:
        return
    registry.counter(
        RETRY_ATTEMPTS_COUNTER,
        "Operation attempts made under a retry policy (first tries included)",
        label_names=("op",),
    ).labels(op=label).inc()


def count_retry_giveup(registry, label: str, reason: str) -> None:
    if registry is None:
        return
    registry.counter(
        RETRY_GIVEUPS_COUNTER,
        "Retried operations that ultimately failed, by op and reason",
        label_names=("op", "reason"),
    ).labels(op=label, reason=reason).inc()


def count_retry_unjittered(registry, label: str) -> None:
    if registry is None:
        return
    registry.counter(
        RETRY_UNJITTERED_COUNTER,
        "Backoff waits computed without jitter despite a jittered policy "
        "(no rng available) — a thundering-herd hazard",
        label_names=("op",),
    ).labels(op=label).inc()


def jittered_delay_ms(
    policy: RetryPolicy, attempt: int, rng, registry=None, label: str = "retry"
) -> float:
    """The backoff delay, degrading *loudly* when jitter is impossible.

    With an rng this is exactly :meth:`RetryPolicy.backoff_ms`. Without
    one, a jittered policy falls back to the deterministic raw delay —
    but the degradation is logged and counted into
    ``amnesia_retry_unjittered_total{op=label}`` instead of silently
    pretending the jitter happened (the pre-PR-5 behaviour).
    """
    if rng is None and policy.jitter > 0.0:
        count_retry_unjittered(registry, label)
        _retry_log.warning(
            "op %s: jitter=%.2f configured but no rng available; "
            "using deterministic backoff (thundering-herd hazard)",
            label, policy.jitter,
        )
        return policy.raw_delay_ms(attempt)
    return policy.backoff_ms(attempt, rng)


def retry_async(
    kernel,
    policy: RetryPolicy,
    rng,
    operation: Operation,
    on_success: Callable[[Any], None],
    on_failure: Callable[[Exception], None],
    on_retry: Callable[[int, Exception], None] | None = None,
    label: str = "retry",
    registry=None,
) -> None:
    """Drive *operation* under *policy* on the simulation kernel.

    ``operation(succeed, fail)`` runs immediately; transient failures
    (anything except :class:`GiveUp`) are retried after a jittered
    backoff until the attempt cap or deadline is hit. *on_retry* fires
    before each rescheduled attempt with ``(attempt_number, error)`` —
    the hook the metrics layer uses for ``amnesia_retries_total``.

    With a *registry*, every attempt counts into
    ``amnesia_retry_attempts_total{op=label}`` and every terminal
    failure into ``amnesia_retry_giveups_total{op=label,reason=...}``
    (reason ``giveup`` for non-retryable errors, ``exhausted`` when the
    cap or deadline ran out) — previously retries were invisible in
    ``/metricsz``.
    """
    state = {"attempt": 0, "started": kernel.now, "done": False}

    def succeed(result: Any) -> None:
        if state["done"]:
            return
        state["done"] = True
        on_success(result)

    def fail(error: Exception) -> None:
        if state["done"]:
            return
        if isinstance(error, GiveUp):
            state["done"] = True
            count_retry_giveup(registry, label, "giveup")
            cause = error.cause
            on_failure(cause if isinstance(cause, Exception) else error)
            return
        if policy.exhausted(state["attempt"], state["started"], kernel.now):
            state["done"] = True
            count_retry_giveup(registry, label, "exhausted")
            on_failure(error)
            return
        delay = jittered_delay_ms(
            policy, state["attempt"], rng, registry=registry, label=label
        )
        if policy.deadline_ms is not None:
            remaining = policy.deadline_ms - (kernel.now - state["started"])
            delay = min(delay, max(0.0, remaining))
        if on_retry is not None:
            on_retry(state["attempt"] + 1, error)
        kernel.schedule(delay, attempt, label=label)

    def attempt() -> None:
        if state["done"]:
            return
        state["attempt"] += 1
        count_retry_attempt(registry, label)
        try:
            operation(succeed, fail)
        except ReproError as error:  # synchronous failure path
            fail(error)

    attempt()
