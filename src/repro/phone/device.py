"""The simulated smartphone hardware/OS envelope.

Carries what the experiments need from a device: its network identity,
an online/offline switch (phones sleep, lose signal, get powered off —
§VIII notes Amnesia is unavailable when the phone is), and a compute
latency model for hashing on the handset (the prototype measured on a
Samsung Galaxy Note 4).
"""

from __future__ import annotations

from repro.net.network import Host, Network
from repro.sim.latency import LatencyModel, TruncatedNormal

# Token generation is 16 table lookups + one SHA-256 over 512 bytes; on
# 2015-era hardware this lands in the low tens of milliseconds once JVM
# and scheduler overheads are included.
DEFAULT_COMPUTE_LATENCY = TruncatedNormal(mean_ms=24.0, std_ms=6.0)


class PhoneDevice:
    """A handset attached to the simulated network."""

    def __init__(
        self,
        network: Network,
        host_name: str,
        compute_latency: LatencyModel | None = None,
    ) -> None:
        self.network = network
        self.host: Host = network.host(host_name)
        self.compute_latency = (
            compute_latency if compute_latency is not None else DEFAULT_COMPUTE_LATENCY
        )

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def online(self) -> bool:
        return self.host.online

    def power_off(self) -> None:
        """Take the device off the network (push deliveries will queue)."""
        self.host.online = False

    def power_on(self) -> None:
        self.host.online = True
