"""The Amnesia mobile application.

Lifecycle: ``install()`` (fresh ``P_id`` + entry table, §III-B1) →
``register()`` (obtain a GCM registration id, then complete the CAPTCHA
pairing with the server) → steady state (answer password requests) —
with ``backup_to_cloud`` / master-change confirmation on the side.

All server communication goes over the secure channel with the pinned
certificate; the GCM listener is plain rendezvous traffic, exactly as
in the paper's architecture.
"""

from __future__ import annotations

import enum
import inspect
from typing import Any, Callable, Dict, Optional

from repro.cloud.provider import CLOUD_SERVICE, CloudClient
from repro.core.protocol import generate_token
from repro.core.recovery import encode_backup
from repro.core.params import DEFAULT_PARAMS, ProtocolParams
from repro.core.secrets import EntryTable, PhoneSecret
from repro.crypto.randomness import RandomSource
from repro.faults.retry import GiveUp, RetryPolicy, retry_async
from repro.net.certificates import Certificate, CertificateStore
from repro.net.tls import SecureStack
from repro.phone.device import PhoneDevice
from repro.phone.notification import Notification, NotificationCenter
from repro.rendezvous.service import RendezvousListener
from repro.server.pending import KIND_MASTER_CHANGE, KIND_PASSWORD
from repro.server.service import AMNESIA_SERVICE
from repro.sim.kernel import Simulator
from repro.sim.random import RngRegistry
from repro.storage.phone_db import PhoneDatabase
from repro.util.errors import NotFoundError, UnavailableError, ValidationError
from repro.util.logs import bind_corr_id, component_logger
from repro.web.client import SimHttpClient
from repro.web.http import HttpRequest, HttpResponse


_log = component_logger("phone")

# The /token return hop and the pairing/re-registration POSTs share one
# policy: a handful of quick, jittered attempts. The return hop is the
# paper's critical path — a lost datagram here used to strand the whole
# generation until the server's timeout.
DEFAULT_PHONE_RETRY = RetryPolicy(
    max_attempts=4,
    base_delay_ms=250.0,
    multiplier=2.0,
    max_delay_ms=4_000.0,
    jitter=0.5,
)


def _notify(
    callback: Callable[..., None] | None, ok: bool, reason: str | None
) -> None:
    """Invoke a completion callback, passing the failure *reason* when the
    callable accepts a second parameter (legacy 1-arg callbacks still get
    the plain bool, preserving ``is True`` / ``is False`` identity)."""
    if callback is None:
        return
    try:
        parameters = list(inspect.signature(callback).parameters.values())
    except (TypeError, ValueError):  # builtins / C callables
        callback(ok)
        return
    positional = [
        p
        for p in parameters
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    variadic = any(p.kind == p.VAR_POSITIONAL for p in parameters)
    if len(positional) >= 2 or variadic:
        callback(ok, reason)
    else:
        callback(ok)


class ApprovalPolicy(enum.Enum):
    """How the user responds to a password-request notification."""

    AUTO = "auto"  # the paper's latency rig: compute immediately
    MANUAL = "manual"  # wait for an explicit approve()/deny()


class AmnesiaApp:
    """One installed instance of the Amnesia application."""

    def __init__(
        self,
        kernel: Simulator,
        device: PhoneDevice,
        rng: RandomSource,
        rendezvous_host: str,
        server_host: str,
        server_certificate: Certificate,
        params: ProtocolParams = DEFAULT_PARAMS,
        db_path: str = ":memory:",
        approval: ApprovalPolicy = ApprovalPolicy.AUTO,
        retry_policy: RetryPolicy = DEFAULT_PHONE_RETRY,
    ) -> None:
        self.kernel = kernel
        self.device = device
        self.params = params
        self._rng = rng
        self.server_host = server_host
        self.approval = approval
        self.notifications = NotificationCenter()
        self.database = PhoneDatabase(db_path)
        self.pins = CertificateStore()
        self._compute_rng = RngRegistry(f"phone:{device.name}").stream("compute")
        self._pending_approvals: Dict[str, Dict[str, Any]] = {}
        self.answered_requests = 0
        self.denied_requests = 0
        # -- resilience state -------------------------------------------------
        self.retry_policy = retry_policy
        self._retry_rng = device.network.rng_stream(
            f"phone-retry:{device.name}"
        )
        self.token_submit_failures = 0
        self.token_submit_retries = 0
        self.last_failure_reason: str | None = None
        self.reregistrations = 0
        self._resilience_login: str | None = None
        self._m_retries = None
        self._m_token_failures = None
        # -- fleet health -----------------------------------------------------
        self.started_ms: float = kernel.now
        self._registry = None
        self._status_app = None
        # -- distributed tracing (opt-in via bind_tracing) --------------------
        self.tracer = None

        self.stack = SecureStack(device.host, device.network, rng)
        self.listener = RendezvousListener(
            device.host, device.network, rendezvous_host, self._on_push
        )
        # Pin the server's self-signed certificate (stored app-side, §V-B).
        self.pins.pin(server_certificate)
        self.database.set_server_certificate(
            server_certificate.identity, server_certificate.public_key
        )
        self._server_certificate = server_certificate
        self._http: Optional[SimHttpClient] = None
        self._installed = False

    # -- lifecycle -------------------------------------------------------------

    def install(self) -> None:
        """First-run initialisation: fresh ``P_id`` and entry table.

        "A new P_id is generated each time the application is
        installed" (§III-B1).
        """
        secret = PhoneSecret.generate(self._rng, self.params)
        self.database.set_pid(secret.pid)
        self.database.store_entry_table(secret.entry_table.entries())
        self._installed = True

    @property
    def installed(self) -> bool:
        return self._installed

    def resume(self) -> None:
        """Adopt existing on-disk state (app restart on the same device).

        Raises :class:`~repro.util.errors.StorageError`/`NotFoundError`
        if the database holds no installed state.
        """
        self.database.pid()  # raises if never installed
        self.database.entry_table()
        self._installed = True

    def refresh_registration(
        self, login: str, on_done: Callable[..., None] | None = None
    ) -> None:
        """Obtain a fresh rendezvous registration id and update the server
        (GCM token rotation / restart recovery). Requires installed state.

        *on_done* fires with ``True``/``False``; callbacks accepting a
        second parameter also receive the failure reason (HTTP status or
        error message) instead of a silent ``False``.
        """
        if not self._installed:
            raise ValidationError("install() or resume() first")

        def registered(reg_id: str) -> None:
            self.database.set_registration_id(reg_id)
            payload = {
                "login": login,
                "pid": self.database.pid().hex(),
                "reg_id": reg_id,
            }
            self._post_with_retry(
                "/phone/reregister",
                payload,
                ok_statuses=(200,),
                on_done=on_done,
                what="re-registration",
            )

        def registration_failed() -> None:
            self._report_failure(
                on_done, "rendezvous-unreachable", "re-registration"
            )

        self.listener.register(registered, registration_failed)

    def phone_secret(self) -> PhoneSecret:
        """``Kp`` as currently stored (what a phone-compromise attacker gets)."""
        return PhoneSecret(
            pid=self.database.pid(),
            entry_table=EntryTable(self.database.entry_table(), self.params),
        )

    def register(
        self,
        login: str,
        pairing_code: str,
        on_done: Callable[..., None] | None = None,
    ) -> None:
        """Obtain a registration id, then complete the CAPTCHA pairing.

        Asynchronous: *on_done* fires with ``True`` on success. Failure
        paths surface *why*: 2-arg callbacks receive ``(False, reason)``
        and the reason is logged and kept in ``last_failure_reason``.
        """
        if not self._installed:
            raise ValidationError("install() the application first")

        def registered(reg_id: str) -> None:
            self.database.set_registration_id(reg_id)
            payload = {
                "login": login,
                "code": pairing_code,
                "pid": self.database.pid().hex(),
                "reg_id": reg_id,
            }
            self._post_with_retry(
                "/pair/complete",
                payload,
                ok_statuses=(201,),
                on_done=on_done,
                what="pairing",
            )

        def registration_failed() -> None:
            self._report_failure(on_done, "rendezvous-unreachable", "pairing")

        self.listener.register(registered, registration_failed)

    # -- resilient POST plumbing -------------------------------------------------

    def _report_failure(
        self,
        on_done: Callable[..., None] | None,
        reason: str,
        what: str,
    ) -> None:
        self.last_failure_reason = reason
        _log.warning("%s failed: %s", what, reason)
        _notify(on_done, False, reason)

    def _post_with_retry(
        self,
        path: str,
        payload: Dict[str, Any],
        ok_statuses: tuple[int, ...],
        on_done: Callable[..., None] | None,
        what: str,
    ) -> None:
        """POST *payload* under the app's retry policy.

        Transport errors and 5xx responses retry with jittered backoff;
        definitive rejections (4xx) stop immediately and report their
        status as the failure reason.
        """

        def operation(succeed, fail) -> None:
            request = HttpRequest.json_request("POST", path, dict(payload))

            def on_response(response: HttpResponse) -> None:
                if response.status in ok_statuses:
                    succeed(response)
                elif response.status >= 500:
                    fail(UnavailableError(f"{path} -> {response.status}"))
                else:
                    fail(GiveUp(f"http-{response.status}"))

            self._http_client().send(request, on_response, fail)

        def on_success(response: HttpResponse) -> None:
            _notify(on_done, True, None)

        def on_failure(error: Exception) -> None:
            reason = (
                error.cause
                if isinstance(error, GiveUp) and isinstance(error.cause, str)
                else str(error) or type(error).__name__
            )
            self._report_failure(on_done, reason, what)

        def on_retry(attempt: int, error: Exception) -> None:
            _log.debug("%s attempt %d retrying: %s", what, attempt, error)
            if self._m_retries is not None:
                self._m_retries.labels(component=f"phone:{path}").inc()

        retry_async(
            self.kernel,
            self.retry_policy,
            self._retry_rng,
            operation,
            on_success,
            on_failure,
            on_retry=on_retry,
            label=f"phone-retry {path}",
            registry=self._registry,
        )

    def _http_client(self) -> SimHttpClient:
        if self._http is None:
            self._http = SimHttpClient(
                self.stack,
                self.kernel,
                self.server_host,
                self._server_certificate,
                service=AMNESIA_SERVICE,
                pins=self.pins,
            )
        return self._http

    # -- push handling (the GCM service listener) -------------------------------

    def _on_push(self, data: Dict[str, Any]) -> None:
        kind = data.get("kind")
        if kind == KIND_PASSWORD:
            self._on_password_request(data)
        elif kind == KIND_MASTER_CHANGE:
            self.notifications.post(KIND_MASTER_CHANGE, data, self.kernel.now)
            self._pending_approvals[str(data.get("pending_id"))] = data
        # unknown kinds are ignored, as a robust listener must

    def _on_password_request(self, data: Dict[str, Any]) -> None:
        pending_id = str(data.get("pending_id", ""))
        request_hex = str(data.get("request", ""))
        if not pending_id or not request_hex:
            return
        # Trace stamp: when the push reached the app (the end of the
        # server's ``push_wait`` stage). Stored on the push payload so a
        # manual approval still reports when the notification appeared.
        data.setdefault("received_ms", self.kernel.now)
        self.notifications.post(KIND_PASSWORD, data, self.kernel.now)
        with bind_corr_id(str(data.get("corr_id", pending_id))):
            _log.debug(
                "password request %s from origin=%s (%s)",
                pending_id[:8], data.get("origin", "?"), self.approval.value,
            )
            if self.approval is ApprovalPolicy.AUTO:
                self._answer_request(pending_id, request_hex, data)
            else:
                self._pending_approvals[pending_id] = data

    def pending_approvals(self) -> list[Dict[str, Any]]:
        """Requests awaiting the user's tap (manual approval mode)."""
        return list(self._pending_approvals.values())

    def approve(self, pending_id: str) -> None:
        """The user taps "accept" on a password-request notification."""
        data = self._pending_approvals.pop(pending_id, None)
        if data is None:
            raise NotFoundError(f"no pending request {pending_id!r}")
        if data.get("kind") != KIND_PASSWORD:
            raise ValidationError("approve() is only for password requests")
        self._answer_request(pending_id, str(data.get("request", "")), data)

    def deny(self, pending_id: str) -> None:
        """The user dismisses the request (e.g. one they never initiated —
        the rogue-push scenario of §IV-C)."""
        if self._pending_approvals.pop(pending_id, None) is None:
            raise NotFoundError(f"no pending request {pending_id!r}")
        self.denied_requests += 1

    def _answer_request(
        self, pending_id: str, request_hex: str, data: Dict[str, Any]
    ) -> None:
        """Run the cryptography service after the device compute delay."""
        delay = self.device.compute_latency.sample(self._compute_rng)

        def compute_and_send() -> None:
            table = EntryTable(self.database.entry_table(), self.params)
            token_hex = generate_token(request_hex, table, self.params)
            payload = {
                "pending_id": pending_id,
                "token": token_hex,
                "pid": self.database.pid().hex(),
            }
            if "tstart_ms" in data:
                payload["tstart_ms"] = data["tstart_ms"]
            # Trace stamps: push receipt and compute completion, on the
            # shared clock — the server splits its round-trip span into
            # push_wait / phone_compute / return_hop with these.
            if "received_ms" in data:
                payload["trace"] = {
                    "received_ms": data["received_ms"],
                    "computed_ms": self.kernel.now,
                }
            self.answered_requests += 1
            corr_id = str(data.get("corr_id", pending_id))
            # Distributed tracing: record the compute window as a span
            # under the delivery hop, and hand its context to the /token
            # POST so the server's return-hop span joins the same tree.
            # Explicit header (not ambient context): the POST runs from a
            # kernel callback, outside any bound call stack.
            trace_header = None
            ctx_header = data.get("trace_ctx")
            if self.tracer is not None and isinstance(ctx_header, str):
                from repro.obs.tracing import TraceContext

                parent = TraceContext.from_header(ctx_header)
                if parent is not None:
                    span = self.tracer.start_span(
                        "phone.compute",
                        parent=parent,
                        corr_id=corr_id,
                        kind="internal",
                        start_ms=float(
                            data.get("received_ms", self.kernel.now)
                        ),
                    )
                    span.end()
                    trace_header = span.context.to_header()
            with bind_corr_id(corr_id):
                _log.debug("token computed for request %s", pending_id[:8])
            self._submit_token(corr_id, pending_id, payload, trace_header)

        self.kernel.schedule(delay, compute_and_send, label="phone-compute")

    def _submit_token(
        self,
        corr_id: str,
        pending_id: str,
        payload: Dict[str, Any],
        trace_header: str | None = None,
    ) -> None:
        """POST the token over the return hop, retrying transient failures.

        This used to swallow every error (``lambda error: None``) — a
        lost return hop silently burned the server's whole generation
        timeout. Now transport errors and 5xx retry under the policy;
        a terminal failure is logged with the correlation id and counted
        (``token_submit_failures`` + the registry counter).
        """

        def operation(succeed, fail) -> None:
            request = HttpRequest.json_request("POST", "/token", dict(payload))
            if trace_header is not None:
                from repro.obs.tracing import TRACE_HEADER

                request.headers[TRACE_HEADER] = trace_header

            def on_response(response: HttpResponse) -> None:
                if response.ok:
                    succeed(response)
                elif response.status >= 500:
                    fail(UnavailableError(f"/token -> {response.status}"))
                else:
                    # 4xx is definitive: the exchange expired or was
                    # answered already — retrying cannot help.
                    fail(GiveUp(f"http-{response.status}"))

            self._http_client().send(request, on_response, fail)

        def on_success(response: HttpResponse) -> None:
            with bind_corr_id(corr_id):
                _log.debug("token for %s accepted", pending_id[:8])

        def on_failure(error: Exception) -> None:
            reason = (
                error.cause
                if isinstance(error, GiveUp) and isinstance(error.cause, str)
                else str(error) or type(error).__name__
            )
            self.token_submit_failures += 1
            self.last_failure_reason = reason
            if self._m_token_failures is not None:
                self._m_token_failures.inc()
            with bind_corr_id(corr_id):
                _log.warning(
                    "token submission for %s failed: %s", pending_id[:8], reason
                )

        def on_retry(attempt: int, error: Exception) -> None:
            self.token_submit_retries += 1
            if self._m_retries is not None:
                self._m_retries.labels(component="phone:/token").inc()
            with bind_corr_id(corr_id):
                _log.debug(
                    "token submission attempt %d retrying: %s", attempt, error
                )

        retry_async(
            self.kernel,
            self.retry_policy,
            self._retry_rng,
            operation,
            on_success,
            on_failure,
            on_retry=on_retry,
            label="phone-token-retry",
            registry=self._registry,
        )

    # -- fleet health -----------------------------------------------------------

    def status_application(self):
        """The phone's health surface: ``/healthz`` + ``/statusz`` (and
        ``/metricsz`` once :meth:`bind_registry` has run).

        The phone is a push client, not a web server, so this is an
        in-process :class:`~repro.web.app.Application` whose ``handle()``
        answers the fleet-uniform endpoints — what a real device would
        expose on a local debug port.
        """
        if self._status_app is None:
            from repro.obs.health import make_status_application

            self._status_app = make_status_application(
                "phone",
                self.kernel,
                self._status_detail,
                registry=self._registry,
                started_ms=self.started_ms,
            )
        return self._status_app

    def _status_detail(self) -> Dict[str, Any]:
        registered = self.listener.reg_id is not None
        return {
            # Degraded: installed but currently without a live rendezvous
            # registration — pushes cannot reach this device.
            "degraded": self._installed and not registered,
            "installed": self._installed,
            "registered": registered,
            "heartbeat_active": self.listener.heartbeat_active,
            "pending_approvals": len(self._pending_approvals),
            "answered_requests": self.answered_requests,
            "denied_requests": self.denied_requests,
            "token_submit_failures": self.token_submit_failures,
            "token_submit_retries": self.token_submit_retries,
            "reregistrations": self.reregistrations,
            "last_failure_reason": self.last_failure_reason,
        }

    # -- resilience (opt-in) ------------------------------------------------------

    def bind_tracing(self, tracer) -> None:
        """Attach a :class:`~repro.obs.tracing.Tracer`: token computes
        become ``phone.compute`` spans joined to the push's context, and
        the status application serves this tracer's ``/spansz``."""
        self.tracer = tracer
        self.status_application().bind_tracing(tracer)

    def bind_registry(self, registry) -> None:
        """Feed the app's retry/failure counters into *registry*."""
        from repro.obs.health import install_node_info

        self._registry = registry
        install_node_info(
            registry,
            self.device.name,
            "phone",
            self.kernel,
            lambda: self.started_ms,
        )
        self._m_retries = registry.counter(
            "amnesia_retries_total",
            "Retry attempts, per retrying component",
            label_names=("component",),
        )
        self._m_token_failures = registry.counter(
            "amnesia_token_submit_failures_total",
            "Token submissions that exhausted their retry budget",
        )

    def enable_resilience(
        self,
        login: str,
        heartbeat_interval_ms: float | None = None,
        miss_threshold: int | None = None,
    ) -> None:
        """Detect a dead rendezvous registration and recover automatically.

        Starts the listener heartbeat; a missed-pong threshold or an
        explicit NACK declares the registration lost, after which the app
        re-registers (the listener applies jittered exponential backoff)
        and refreshes the server via ``/phone/reregister``.

        Note: the heartbeat re-schedules itself forever, so drivers that
        drain the event queue should ``disable_resilience()`` first or
        run with an explicit horizon.
        """
        self._resilience_login = login
        self.listener.on_lost = self._on_registration_lost
        kwargs: Dict[str, Any] = {}
        if heartbeat_interval_ms is not None:
            kwargs["interval_ms"] = heartbeat_interval_ms
        if miss_threshold is not None:
            kwargs["miss_threshold"] = miss_threshold
        self.listener.start_heartbeat(**kwargs)

    def disable_resilience(self) -> None:
        self.listener.stop_heartbeat()
        self.listener.on_lost = None
        self._resilience_login = None

    def _on_registration_lost(self, reason: str) -> None:
        login = self._resilience_login
        if login is None:
            return
        _log.info("registration lost (%s); re-registering as %s", reason, login)
        self.reregistrations += 1
        if self._m_retries is not None:
            self._m_retries.labels(component="phone:reregister").inc()

        def done(ok: bool, why: str | None = None) -> None:
            if ok:
                _log.info("re-registration complete")
                # Flush anything the service queued while we were dark.
                try:
                    self.listener.connect()
                except ValidationError:  # pragma: no cover - defensive
                    pass
            else:
                _log.warning("re-registration failed: %s", why)

        self.refresh_registration(login, done)

    # -- master-password change confirmation ------------------------------------

    def confirm_master_change(self, pending_id: str) -> None:
        """The user confirms a master-password change on the phone; the app
        presents ``P_id`` to the server for verification (§III-C2)."""
        data = self._pending_approvals.pop(pending_id, None)
        if data is None or data.get("kind") != KIND_MASTER_CHANGE:
            raise NotFoundError(f"no pending master change {pending_id!r}")
        payload = {"pending_id": pending_id, "pid": self.database.pid().hex()}
        self._http_client().send(
            HttpRequest.json_request("POST", "/recover/master/confirm", payload),
            lambda response: None,
            lambda error: None,
        )

    # -- backup (§III-C1) ---------------------------------------------------------

    def backup_blob(self, passphrase: str | None = None) -> bytes:
        """Serialise ``Kp`` for the one-time cloud backup."""
        return encode_backup(self.phone_secret(), passphrase=passphrase, rng=self._rng)

    def backup_to_cloud(
        self,
        cloud: CloudClient,
        name: str = "amnesia-backup",
        passphrase: str | None = None,
    ) -> None:
        """Store the backup payload with the third-party provider."""
        cloud.put(name, self.backup_blob(passphrase))

    def cloud_client(
        self, cloud_host: str, cloud_certificate: Certificate, token: str
    ) -> CloudClient:
        """Build a client for the third-party cloud provider."""
        http = SimHttpClient(
            self.stack,
            self.kernel,
            cloud_host,
            cloud_certificate,
            service=CLOUD_SERVICE,
        )
        return CloudClient(http, token)

    # -- connectivity -------------------------------------------------------------

    def reconnect(self) -> None:
        """Announce presence to the rendezvous service after coming back
        online, flushing any queued pushes."""
        self.listener.connect()
