"""The Amnesia mobile application.

Lifecycle: ``install()`` (fresh ``P_id`` + entry table, §III-B1) →
``register()`` (obtain a GCM registration id, then complete the CAPTCHA
pairing with the server) → steady state (answer password requests) —
with ``backup_to_cloud`` / master-change confirmation on the side.

All server communication goes over the secure channel with the pinned
certificate; the GCM listener is plain rendezvous traffic, exactly as
in the paper's architecture.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Optional

from repro.cloud.provider import CLOUD_SERVICE, CloudClient
from repro.core.protocol import generate_token
from repro.core.recovery import encode_backup
from repro.core.params import DEFAULT_PARAMS, ProtocolParams
from repro.core.secrets import EntryTable, PhoneSecret
from repro.crypto.randomness import RandomSource
from repro.net.certificates import Certificate, CertificateStore
from repro.net.tls import SecureStack
from repro.phone.device import PhoneDevice
from repro.phone.notification import Notification, NotificationCenter
from repro.rendezvous.service import RendezvousListener
from repro.server.pending import KIND_MASTER_CHANGE, KIND_PASSWORD
from repro.server.service import AMNESIA_SERVICE
from repro.sim.kernel import Simulator
from repro.sim.random import RngRegistry
from repro.storage.phone_db import PhoneDatabase
from repro.util.errors import NotFoundError, ValidationError
from repro.util.logs import bind_corr_id, component_logger
from repro.web.client import SimHttpClient
from repro.web.http import HttpRequest, HttpResponse


_log = component_logger("phone")


class ApprovalPolicy(enum.Enum):
    """How the user responds to a password-request notification."""

    AUTO = "auto"  # the paper's latency rig: compute immediately
    MANUAL = "manual"  # wait for an explicit approve()/deny()


class AmnesiaApp:
    """One installed instance of the Amnesia application."""

    def __init__(
        self,
        kernel: Simulator,
        device: PhoneDevice,
        rng: RandomSource,
        rendezvous_host: str,
        server_host: str,
        server_certificate: Certificate,
        params: ProtocolParams = DEFAULT_PARAMS,
        db_path: str = ":memory:",
        approval: ApprovalPolicy = ApprovalPolicy.AUTO,
    ) -> None:
        self.kernel = kernel
        self.device = device
        self.params = params
        self._rng = rng
        self.server_host = server_host
        self.approval = approval
        self.notifications = NotificationCenter()
        self.database = PhoneDatabase(db_path)
        self.pins = CertificateStore()
        self._compute_rng = RngRegistry(f"phone:{device.name}").stream("compute")
        self._pending_approvals: Dict[str, Dict[str, Any]] = {}
        self.answered_requests = 0
        self.denied_requests = 0

        self.stack = SecureStack(device.host, device.network, rng)
        self.listener = RendezvousListener(
            device.host, device.network, rendezvous_host, self._on_push
        )
        # Pin the server's self-signed certificate (stored app-side, §V-B).
        self.pins.pin(server_certificate)
        self.database.set_server_certificate(
            server_certificate.identity, server_certificate.public_key
        )
        self._server_certificate = server_certificate
        self._http: Optional[SimHttpClient] = None
        self._installed = False

    # -- lifecycle -------------------------------------------------------------

    def install(self) -> None:
        """First-run initialisation: fresh ``P_id`` and entry table.

        "A new P_id is generated each time the application is
        installed" (§III-B1).
        """
        secret = PhoneSecret.generate(self._rng, self.params)
        self.database.set_pid(secret.pid)
        self.database.store_entry_table(secret.entry_table.entries())
        self._installed = True

    @property
    def installed(self) -> bool:
        return self._installed

    def resume(self) -> None:
        """Adopt existing on-disk state (app restart on the same device).

        Raises :class:`~repro.util.errors.StorageError`/`NotFoundError`
        if the database holds no installed state.
        """
        self.database.pid()  # raises if never installed
        self.database.entry_table()
        self._installed = True

    def refresh_registration(
        self, login: str, on_done: Callable[[bool], None] | None = None
    ) -> None:
        """Obtain a fresh rendezvous registration id and update the server
        (GCM token rotation / restart recovery). Requires installed state."""
        if not self._installed:
            raise ValidationError("install() or resume() first")

        def registered(reg_id: str) -> None:
            self.database.set_registration_id(reg_id)
            payload = {
                "login": login,
                "pid": self.database.pid().hex(),
                "reg_id": reg_id,
            }

            def on_response(response: HttpResponse) -> None:
                if on_done is not None:
                    on_done(response.ok)

            self._http_client().send(
                HttpRequest.json_request("POST", "/phone/reregister", payload),
                on_response,
                lambda error: on_done(False) if on_done is not None else None,
            )

        self.listener.register(registered)

    def phone_secret(self) -> PhoneSecret:
        """``Kp`` as currently stored (what a phone-compromise attacker gets)."""
        return PhoneSecret(
            pid=self.database.pid(),
            entry_table=EntryTable(self.database.entry_table(), self.params),
        )

    def register(
        self,
        login: str,
        pairing_code: str,
        on_done: Callable[[bool], None] | None = None,
    ) -> None:
        """Obtain a registration id, then complete the CAPTCHA pairing.

        Asynchronous: *on_done* fires with True on success.
        """
        if not self._installed:
            raise ValidationError("install() the application first")

        def registered(reg_id: str) -> None:
            self.database.set_registration_id(reg_id)
            payload = {
                "login": login,
                "code": pairing_code,
                "pid": self.database.pid().hex(),
                "reg_id": reg_id,
            }

            def on_response(response: HttpResponse) -> None:
                if on_done is not None:
                    on_done(response.status == 201)

            def on_error(error: Exception) -> None:
                if on_done is not None:
                    on_done(False)

            self._http_client().send(
                HttpRequest.json_request("POST", "/pair/complete", payload),
                on_response,
                on_error,
            )

        self.listener.register(registered)

    def _http_client(self) -> SimHttpClient:
        if self._http is None:
            self._http = SimHttpClient(
                self.stack,
                self.kernel,
                self.server_host,
                self._server_certificate,
                service=AMNESIA_SERVICE,
                pins=self.pins,
            )
        return self._http

    # -- push handling (the GCM service listener) -------------------------------

    def _on_push(self, data: Dict[str, Any]) -> None:
        kind = data.get("kind")
        if kind == KIND_PASSWORD:
            self._on_password_request(data)
        elif kind == KIND_MASTER_CHANGE:
            self.notifications.post(KIND_MASTER_CHANGE, data, self.kernel.now)
            self._pending_approvals[str(data.get("pending_id"))] = data
        # unknown kinds are ignored, as a robust listener must

    def _on_password_request(self, data: Dict[str, Any]) -> None:
        pending_id = str(data.get("pending_id", ""))
        request_hex = str(data.get("request", ""))
        if not pending_id or not request_hex:
            return
        # Trace stamp: when the push reached the app (the end of the
        # server's ``push_wait`` stage). Stored on the push payload so a
        # manual approval still reports when the notification appeared.
        data.setdefault("received_ms", self.kernel.now)
        self.notifications.post(KIND_PASSWORD, data, self.kernel.now)
        with bind_corr_id(str(data.get("corr_id", pending_id))):
            _log.debug(
                "password request %s from origin=%s (%s)",
                pending_id[:8], data.get("origin", "?"), self.approval.value,
            )
            if self.approval is ApprovalPolicy.AUTO:
                self._answer_request(pending_id, request_hex, data)
            else:
                self._pending_approvals[pending_id] = data

    def pending_approvals(self) -> list[Dict[str, Any]]:
        """Requests awaiting the user's tap (manual approval mode)."""
        return list(self._pending_approvals.values())

    def approve(self, pending_id: str) -> None:
        """The user taps "accept" on a password-request notification."""
        data = self._pending_approvals.pop(pending_id, None)
        if data is None:
            raise NotFoundError(f"no pending request {pending_id!r}")
        if data.get("kind") != KIND_PASSWORD:
            raise ValidationError("approve() is only for password requests")
        self._answer_request(pending_id, str(data.get("request", "")), data)

    def deny(self, pending_id: str) -> None:
        """The user dismisses the request (e.g. one they never initiated —
        the rogue-push scenario of §IV-C)."""
        if self._pending_approvals.pop(pending_id, None) is None:
            raise NotFoundError(f"no pending request {pending_id!r}")
        self.denied_requests += 1

    def _answer_request(
        self, pending_id: str, request_hex: str, data: Dict[str, Any]
    ) -> None:
        """Run the cryptography service after the device compute delay."""
        delay = self.device.compute_latency.sample(self._compute_rng)

        def compute_and_send() -> None:
            table = EntryTable(self.database.entry_table(), self.params)
            token_hex = generate_token(request_hex, table, self.params)
            payload = {
                "pending_id": pending_id,
                "token": token_hex,
                "pid": self.database.pid().hex(),
            }
            if "tstart_ms" in data:
                payload["tstart_ms"] = data["tstart_ms"]
            # Trace stamps: push receipt and compute completion, on the
            # shared clock — the server splits its round-trip span into
            # push_wait / phone_compute / return_hop with these.
            if "received_ms" in data:
                payload["trace"] = {
                    "received_ms": data["received_ms"],
                    "computed_ms": self.kernel.now,
                }
            self.answered_requests += 1
            with bind_corr_id(str(data.get("corr_id", pending_id))):
                _log.debug("token computed for request %s", pending_id[:8])
                self._http_client().send(
                    HttpRequest.json_request("POST", "/token", payload),
                    lambda response: None,
                    lambda error: None,
                )

        self.kernel.schedule(delay, compute_and_send, label="phone-compute")

    # -- master-password change confirmation ------------------------------------

    def confirm_master_change(self, pending_id: str) -> None:
        """The user confirms a master-password change on the phone; the app
        presents ``P_id`` to the server for verification (§III-C2)."""
        data = self._pending_approvals.pop(pending_id, None)
        if data is None or data.get("kind") != KIND_MASTER_CHANGE:
            raise NotFoundError(f"no pending master change {pending_id!r}")
        payload = {"pending_id": pending_id, "pid": self.database.pid().hex()}
        self._http_client().send(
            HttpRequest.json_request("POST", "/recover/master/confirm", payload),
            lambda response: None,
            lambda error: None,
        )

    # -- backup (§III-C1) ---------------------------------------------------------

    def backup_blob(self, passphrase: str | None = None) -> bytes:
        """Serialise ``Kp`` for the one-time cloud backup."""
        return encode_backup(self.phone_secret(), passphrase=passphrase, rng=self._rng)

    def backup_to_cloud(
        self,
        cloud: CloudClient,
        name: str = "amnesia-backup",
        passphrase: str | None = None,
    ) -> None:
        """Store the backup payload with the third-party provider."""
        cloud.put(name, self.backup_blob(passphrase))

    def cloud_client(
        self, cloud_host: str, cloud_certificate: Certificate, token: str
    ) -> CloudClient:
        """Build a client for the third-party cloud provider."""
        http = SimHttpClient(
            self.stack,
            self.kernel,
            cloud_host,
            cloud_certificate,
            service=CLOUD_SERVICE,
        )
        return CloudClient(http, token)

    # -- connectivity -------------------------------------------------------------

    def reconnect(self) -> None:
        """Announce presence to the rendezvous service after coming back
        online, flushing any queued pushes."""
        self.listener.connect()
