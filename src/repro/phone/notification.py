"""Android-style notifications surfaced to the (simulated) user.

The GCM listener "will notify the user via Android's notification
action" including the IP address of the originating request (§V-B).
Experiments and the user-study simulation inspect this stream; the
§IV-C discussion of a breached server pushing rogue requests is
observable here as a notification whose origin the user never asked
for.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

_notification_ids = itertools.count(1)


@dataclass
class Notification:
    """One entry in the device's notification shade."""

    kind: str
    body: Dict[str, Any]
    posted_at_ms: float
    id: int = field(default_factory=lambda: next(_notification_ids))
    acted_on: bool = False


class NotificationCenter:
    """The device's notification shade."""

    def __init__(self) -> None:
        self._notifications: list[Notification] = []

    def post(self, kind: str, body: Dict[str, Any], now_ms: float) -> Notification:
        notification = Notification(kind=kind, body=dict(body), posted_at_ms=now_ms)
        self._notifications.append(notification)
        return notification

    def pending(self) -> list[Notification]:
        return [n for n in self._notifications if not n.acted_on]

    def all(self) -> list[Notification]:
        return list(self._notifications)

    def mark_acted(self, notification_id: int) -> None:
        for notification in self._notifications:
            if notification.id == notification_id:
                notification.acted_on = True
                return
