"""The Amnesia mobile application, simulated (§III-A3, §V-B).

The Android prototype has three components — a GCM service listener, a
cryptography service, and a database handler — plus the pinned server
certificate. :class:`~repro.phone.app.AmnesiaApp` reproduces all three
on a simulated device:

- the listener is a :class:`~repro.rendezvous.service.RendezvousListener`
  that surfaces pushes as notifications;
- the cryptography service runs Algorithm 1 (token generation) after a
  device compute-latency delay;
- ``Kp`` persists in a :class:`~repro.storage.phone_db.PhoneDatabase`.

User interaction (the notification tap that authorizes a request) is a
pluggable approval policy: automatic (as in the paper's latency rig,
which "removed the user verification notification"), manual (queue +
explicit approve), or a custom callback.
"""

from repro.phone.device import PhoneDevice
from repro.phone.notification import Notification, NotificationCenter
from repro.phone.app import AmnesiaApp, ApprovalPolicy

__all__ = [
    "PhoneDevice",
    "Notification",
    "NotificationCenter",
    "AmnesiaApp",
    "ApprovalPolicy",
]
