"""SHA-256 and SHA-512, implemented from FIPS 180-4.

The paper's entire derivation chain is hashing (R, T, p are SHA-256/512
outputs), so the reproduction carries its own implementation of the
primitive: validated against the NIST example vectors and cross-checked
against :mod:`hashlib` property-style in the tests. The production code
paths (:mod:`repro.crypto.hashing`) use :mod:`hashlib` for speed; this
module exists so that nothing in the protocol rests on an unexamined
black box — and as the reference for anyone porting Amnesia to an
environment without a crypto library.

Two surfaces are exported:

- :func:`sha256_pure` / :func:`sha512_pure` — one-shot digests, kept
  for the existing callers and the NIST-vector tests;
- :class:`Sha256` / :class:`Sha512` — *incremental*, ``copy()``-able
  states mirroring the :mod:`hashlib` object API (``update`` /
  ``copy`` / ``digest`` / ``hexdigest``). The clone operation is what
  makes RFC 2104 HMAC midstate caching possible: hash a key pad block
  once, then fork the compression state for every message
  (:mod:`repro.crypto.pbkdf2` does exactly this on the hashlib-backed
  fast path; the classes here prove the same trick on the pure
  implementation).

Hot-loop engineering (PR 5): the per-round constant tables were already
module-level; this revision also hoists the message-schedule list into
a single preallocated buffer per compression call, slices blocks
through :class:`memoryview` instead of copying, and inlines the rotate
primitives inside the round loop (a Python-level function call per
rotation dominated the old profile).
"""

from __future__ import annotations

from repro.obs.profiler import profiled
from repro.util.errors import ValidationError

# -- SHA-256 ---------------------------------------------------------------------

_K256 = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

_H256 = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)

_MASK32 = 0xFFFFFFFF


def _rotr32(value: int, count: int) -> int:
    return ((value >> count) | (value << (32 - count))) & _MASK32


def _compress256(
    state: tuple[int, ...], block: "memoryview | bytes", w: list[int]
) -> tuple[int, ...]:
    """One FIPS 180-4 compression round over a 64-byte *block*.

    *w* is a caller-owned 64-slot scratch list (the message schedule);
    reusing it across blocks avoids one list allocation + 48 appends
    per block. Rotations are inlined: the function-call form costs a
    Python frame per rotation, which the profiler showed dominating.
    """
    ifb = int.from_bytes
    for i in range(16):
        w[i] = ifb(block[i * 4 : i * 4 + 4], "big")
    for t in range(16, 64):
        x = w[t - 15]
        s0 = (
            ((x >> 7) | (x << 25)) ^ ((x >> 18) | (x << 14)) ^ (x >> 3)
        ) & _MASK32
        x = w[t - 2]
        s1 = (
            ((x >> 17) | (x << 15)) ^ ((x >> 19) | (x << 13)) ^ (x >> 10)
        ) & _MASK32
        w[t] = (w[t - 16] + s0 + w[t - 7] + s1) & _MASK32
    a, b, c, d, e, f, g, hh = state
    k = _K256
    for t in range(64):
        big_s1 = (
            ((e >> 6) | (e << 26)) ^ ((e >> 11) | (e << 21))
            ^ ((e >> 25) | (e << 7))
        ) & _MASK32
        ch = (e & f) ^ (~e & g)
        temp1 = (hh + big_s1 + ch + k[t] + w[t]) & _MASK32
        big_s0 = (
            ((a >> 2) | (a << 30)) ^ ((a >> 13) | (a << 19))
            ^ ((a >> 22) | (a << 10))
        ) & _MASK32
        maj = (a & b) ^ (a & c) ^ (b & c)
        temp2 = (big_s0 + maj) & _MASK32
        hh, g, f, e = g, f, e, (d + temp1) & _MASK32
        d, c, b, a = c, b, a, (temp1 + temp2) & _MASK32
    s = state
    return (
        (s[0] + a) & _MASK32, (s[1] + b) & _MASK32,
        (s[2] + c) & _MASK32, (s[3] + d) & _MASK32,
        (s[4] + e) & _MASK32, (s[5] + f) & _MASK32,
        (s[6] + g) & _MASK32, (s[7] + hh) & _MASK32,
    )


class Sha256:
    """Incremental SHA-256 with a clonable compression state.

    Mirrors the :mod:`hashlib` object API. ``copy()`` is O(1): the
    compression state is an immutable tuple and the unprocessed tail a
    bytes object, so a clone shares both — which is exactly what an
    HMAC midstate cache needs (hash the 64-byte key pad once, fork the
    state per message).
    """

    digest_size = 32
    block_size = 64

    __slots__ = ("_state", "_tail", "_length")

    def __init__(self, data: bytes = b"") -> None:
        self._state: tuple[int, ...] = _H256
        self._tail = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> "Sha256":
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise ValidationError("Sha256.update expects bytes")
        data = bytes(data)
        self._length += len(data)
        buffer = self._tail + data if self._tail else data
        full = len(buffer) - (len(buffer) % 64)
        if full:
            view = memoryview(buffer)
            state = self._state
            w = [0] * 64
            for start in range(0, full, 64):
                state = _compress256(state, view[start : start + 64], w)
            self._state = state
            self._tail = buffer[full:]
        else:
            self._tail = buffer
        return self

    def copy(self) -> "Sha256":
        clone = object.__new__(Sha256)
        clone._state = self._state
        clone._tail = self._tail
        clone._length = self._length
        return clone

    def digest(self) -> bytes:
        padded = self._tail + b"\x80"
        padded += b"\x00" * ((55 - self._length) % 64)
        padded += (self._length * 8).to_bytes(8, "big")
        view = memoryview(padded)
        state = self._state
        w = [0] * 64
        for start in range(0, len(padded), 64):
            state = _compress256(state, view[start : start + 64], w)
        return b"".join(x.to_bytes(4, "big") for x in state)

    def hexdigest(self) -> str:
        return self.digest().hex()


@profiled("crypto.sha256_pure")
def sha256_pure(message: bytes) -> bytes:
    """SHA-256 digest of *message*, pure Python."""
    if not isinstance(message, (bytes, bytearray, memoryview)):
        raise ValidationError("sha256_pure expects bytes")
    return Sha256(bytes(message)).digest()


def sha256_many(messages) -> list[bytes]:
    """Digest many independent messages in one pass (pure Python).

    One message-schedule scratch buffer is allocated for the whole
    batch instead of one per message: each message is padded FIPS-style
    and compressed in sequence over the shared scratch. Per-digest
    output is identical to :func:`sha256_pure`; the batch derivation
    engine and its reference oracle use this as the single-pass
    multi-message surface.
    """
    w = [0] * 64
    join = b"".join
    digests: list[bytes] = []
    for message in messages:
        if not isinstance(message, (bytes, bytearray, memoryview)):
            raise ValidationError("sha256_many expects bytes messages")
        message = bytes(message)
        length = len(message)
        padded = (
            message
            + b"\x80"
            + b"\x00" * ((55 - length) % 64)
            + (length * 8).to_bytes(8, "big")
        )
        view = memoryview(padded)
        state = _H256
        for start in range(0, len(padded), 64):
            state = _compress256(state, view[start : start + 64], w)
        digests.append(join(x.to_bytes(4, "big") for x in state))
    return digests


# -- SHA-512 ---------------------------------------------------------------------

_K512 = (
    0x428A2F98D728AE22, 0x7137449123EF65CD, 0xB5C0FBCFEC4D3B2F,
    0xE9B5DBA58189DBBC, 0x3956C25BF348B538, 0x59F111F1B605D019,
    0x923F82A4AF194F9B, 0xAB1C5ED5DA6D8118, 0xD807AA98A3030242,
    0x12835B0145706FBE, 0x243185BE4EE4B28C, 0x550C7DC3D5FFB4E2,
    0x72BE5D74F27B896F, 0x80DEB1FE3B1696B1, 0x9BDC06A725C71235,
    0xC19BF174CF692694, 0xE49B69C19EF14AD2, 0xEFBE4786384F25E3,
    0x0FC19DC68B8CD5B5, 0x240CA1CC77AC9C65, 0x2DE92C6F592B0275,
    0x4A7484AA6EA6E483, 0x5CB0A9DCBD41FBD4, 0x76F988DA831153B5,
    0x983E5152EE66DFAB, 0xA831C66D2DB43210, 0xB00327C898FB213F,
    0xBF597FC7BEEF0EE4, 0xC6E00BF33DA88FC2, 0xD5A79147930AA725,
    0x06CA6351E003826F, 0x142929670A0E6E70, 0x27B70A8546D22FFC,
    0x2E1B21385C26C926, 0x4D2C6DFC5AC42AED, 0x53380D139D95B3DF,
    0x650A73548BAF63DE, 0x766A0ABB3C77B2A8, 0x81C2C92E47EDAEE6,
    0x92722C851482353B, 0xA2BFE8A14CF10364, 0xA81A664BBC423001,
    0xC24B8B70D0F89791, 0xC76C51A30654BE30, 0xD192E819D6EF5218,
    0xD69906245565A910, 0xF40E35855771202A, 0x106AA07032BBD1B8,
    0x19A4C116B8D2D0C8, 0x1E376C085141AB53, 0x2748774CDF8EEB99,
    0x34B0BCB5E19B48A8, 0x391C0CB3C5C95A63, 0x4ED8AA4AE3418ACB,
    0x5B9CCA4F7763E373, 0x682E6FF3D6B2B8A3, 0x748F82EE5DEFB2FC,
    0x78A5636F43172F60, 0x84C87814A1F0AB72, 0x8CC702081A6439EC,
    0x90BEFFFA23631E28, 0xA4506CEBDE82BDE9, 0xBEF9A3F7B2C67915,
    0xC67178F2E372532B, 0xCA273ECEEA26619C, 0xD186B8C721C0C207,
    0xEADA7DD6CDE0EB1E, 0xF57D4F7FEE6ED178, 0x06F067AA72176FBA,
    0x0A637DC5A2C898A6, 0x113F9804BEF90DAE, 0x1B710B35131C471B,
    0x28DB77F523047D84, 0x32CAAB7B40C72493, 0x3C9EBE0A15C9BEBC,
    0x431D67C49C100D4C, 0x4CC5D4BECB3E42B6, 0x597F299CFC657E2A,
    0x5FCB6FAB3AD6FAEC, 0x6C44198C4A475817,
)

_H512 = (
    0x6A09E667F3BCC908, 0xBB67AE8584CAA73B, 0x3C6EF372FE94F82B,
    0xA54FF53A5F1D36F1, 0x510E527FADE682D1, 0x9B05688C2B3E6C1F,
    0x1F83D9ABFB41BD6B, 0x5BE0CD19137E2179,
)

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _rotr64(value: int, count: int) -> int:
    return ((value >> count) | (value << (64 - count))) & _MASK64


def _compress512(
    state: tuple[int, ...], block: "memoryview | bytes", w: list[int]
) -> tuple[int, ...]:
    """One compression round over a 128-byte *block* (scratch list *w*)."""
    ifb = int.from_bytes
    for i in range(16):
        w[i] = ifb(block[i * 8 : i * 8 + 8], "big")
    for t in range(16, 80):
        x = w[t - 15]
        s0 = (
            ((x >> 1) | (x << 63)) ^ ((x >> 8) | (x << 56)) ^ (x >> 7)
        ) & _MASK64
        x = w[t - 2]
        s1 = (
            ((x >> 19) | (x << 45)) ^ ((x >> 61) | (x << 3)) ^ (x >> 6)
        ) & _MASK64
        w[t] = (w[t - 16] + s0 + w[t - 7] + s1) & _MASK64
    a, b, c, d, e, f, g, hh = state
    k = _K512
    for t in range(80):
        big_s1 = (
            ((e >> 14) | (e << 50)) ^ ((e >> 18) | (e << 46))
            ^ ((e >> 41) | (e << 23))
        ) & _MASK64
        ch = (e & f) ^ (~e & g)
        temp1 = (hh + big_s1 + ch + k[t] + w[t]) & _MASK64
        big_s0 = (
            ((a >> 28) | (a << 36)) ^ ((a >> 34) | (a << 30))
            ^ ((a >> 39) | (a << 25))
        ) & _MASK64
        maj = (a & b) ^ (a & c) ^ (b & c)
        temp2 = (big_s0 + maj) & _MASK64
        hh, g, f, e = g, f, e, (d + temp1) & _MASK64
        d, c, b, a = c, b, a, (temp1 + temp2) & _MASK64
    s = state
    return (
        (s[0] + a) & _MASK64, (s[1] + b) & _MASK64,
        (s[2] + c) & _MASK64, (s[3] + d) & _MASK64,
        (s[4] + e) & _MASK64, (s[5] + f) & _MASK64,
        (s[6] + g) & _MASK64, (s[7] + hh) & _MASK64,
    )


class Sha512:
    """Incremental SHA-512 with a clonable compression state.

    Same contract as :class:`Sha256`: ``update`` / ``copy`` /
    ``digest`` / ``hexdigest``, O(1) clones.
    """

    digest_size = 64
    block_size = 128

    __slots__ = ("_state", "_tail", "_length")

    def __init__(self, data: bytes = b"") -> None:
        self._state: tuple[int, ...] = _H512
        self._tail = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> "Sha512":
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise ValidationError("Sha512.update expects bytes")
        data = bytes(data)
        self._length += len(data)
        buffer = self._tail + data if self._tail else data
        full = len(buffer) - (len(buffer) % 128)
        if full:
            view = memoryview(buffer)
            state = self._state
            w = [0] * 80
            for start in range(0, full, 128):
                state = _compress512(state, view[start : start + 128], w)
            self._state = state
            self._tail = buffer[full:]
        else:
            self._tail = buffer
        return self

    def copy(self) -> "Sha512":
        clone = object.__new__(Sha512)
        clone._state = self._state
        clone._tail = self._tail
        clone._length = self._length
        return clone

    def digest(self) -> bytes:
        padded = self._tail + b"\x80"
        padded += b"\x00" * ((111 - self._length) % 128)
        padded += (self._length * 8).to_bytes(16, "big")
        view = memoryview(padded)
        state = self._state
        w = [0] * 80
        for start in range(0, len(padded), 128):
            state = _compress512(state, view[start : start + 128], w)
        return b"".join(x.to_bytes(8, "big") for x in state)

    def hexdigest(self) -> str:
        return self.digest().hex()


@profiled("crypto.sha512_pure")
def sha512_pure(message: bytes) -> bytes:
    """SHA-512 digest of *message*, pure Python."""
    if not isinstance(message, (bytes, bytearray, memoryview)):
        raise ValidationError("sha512_pure expects bytes")
    return Sha512(bytes(message)).digest()


def sha512_many(messages) -> list[bytes]:
    """Digest many independent messages in one pass (pure Python).

    The SHA-512 counterpart of :func:`sha256_many`: one shared 80-slot
    scratch across the batch, bit-identical per-digest output to
    :func:`sha512_pure`.
    """
    w = [0] * 80
    join = b"".join
    digests: list[bytes] = []
    for message in messages:
        if not isinstance(message, (bytes, bytearray, memoryview)):
            raise ValidationError("sha512_many expects bytes messages")
        message = bytes(message)
        length = len(message)
        padded = (
            message
            + b"\x80"
            + b"\x00" * ((111 - length) % 128)
            + (length * 8).to_bytes(16, "big")
        )
        view = memoryview(padded)
        state = _H512
        for start in range(0, len(padded), 128):
            state = _compress512(state, view[start : start + 128], w)
        digests.append(join(x.to_bytes(8, "big") for x in state))
    return digests
