"""PBKDF2-HMAC-SHA256 (RFC 8018), implemented from the spec.

The Amnesia server stores ``H(MP + salt)`` exactly as Table I shows (see
:func:`repro.crypto.hashing.salted_hash`), but session cookies and the
backup encryption key need *stretched* keys, which is what PBKDF2
provides. The inner loop XOR-accumulates HMAC iterations per the RFC.

Fast path (PR 5): the original implementation called
``hmac.new(password, ...)`` once *per iteration*, re-running the RFC
2104 key schedule — two extra SHA-256 compressions plus object setup —
every round. :class:`HmacSha256Midstate` precomputes the inner
(``key ⊕ ipad``) and outer (``key ⊕ opad``) pad-block digest states
once per password and clones them (``hashlib`` ``copy()`` is a cheap C
memcpy) for every message, so each PBKDF2 round costs exactly the two
compression calls the algorithm requires. A small bounded cache reuses
midstates across calls with the same password — the vault baselines
derive from one master password hundreds of times per scenario.

The original per-iteration construction is kept as
:func:`pbkdf2_hmac_sha256_reference`; the property tests assert the
fast path is value-identical to it (and to
``hashlib.pbkdf2_hmac``) for randomized inputs.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from collections import OrderedDict

from repro.obs.profiler import profiled
from repro.util.errors import CryptoError

_HASH_LEN = 32
_BLOCK_LEN = 64
_IPAD = bytes(b ^ 0x36 for b in range(256))
_OPAD = bytes(b ^ 0x5C for b in range(256))


class HmacSha256Midstate:
    """HMAC-SHA-256 with the RFC 2104 pad blocks hashed exactly once.

    Construction hashes ``key ⊕ ipad`` and ``key ⊕ opad`` into two
    resumable SHA-256 states; :meth:`digest` clones them per message.
    Cloning a ``hashlib`` object copies the 8-word compression state in
    C, so the per-message cost collapses to the two block compressions
    HMAC fundamentally needs (the naive ``hmac.new`` per message pays
    the key schedule — two extra compressions — every time).
    """

    __slots__ = ("_inner", "_outer")

    def __init__(self, key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray, memoryview)):
            raise CryptoError("HMAC key must be bytes")
        key = bytes(key)
        if len(key) > _BLOCK_LEN:
            key = hashlib.sha256(key).digest()
        key = key.ljust(_BLOCK_LEN, b"\x00")
        self._inner = hashlib.sha256(key.translate(_IPAD))
        self._outer = hashlib.sha256(key.translate(_OPAD))

    def digest(self, message: bytes) -> bytes:
        inner = self._inner.copy()
        inner.update(message)
        outer = self._outer.copy()
        outer.update(inner.digest())
        return outer.digest()


# Midstates for recently seen passwords. Keyed by the password bytes —
# the same trust domain that already holds the password in cleartext
# while deriving, so the cache widens no exposure window beyond its
# bounded lifetime; it exists because the vault baselines and the
# recovery path derive from one master password many times in a row.
_MIDSTATE_CACHE: "OrderedDict[bytes, HmacSha256Midstate]" = OrderedDict()
_MIDSTATE_CACHE_MAX = 64


def hmac_sha256_midstate(key: bytes) -> HmacSha256Midstate:
    """A (cached) pad-precomputed HMAC-SHA-256 state for *key*."""
    key = bytes(key)
    cached = _MIDSTATE_CACHE.get(key)
    if cached is not None:
        _MIDSTATE_CACHE.move_to_end(key)
        return cached
    state = HmacSha256Midstate(key)
    _MIDSTATE_CACHE[key] = state
    if len(_MIDSTATE_CACHE) > _MIDSTATE_CACHE_MAX:
        _MIDSTATE_CACHE.popitem(last=False)
    return state


def clear_midstate_cache() -> None:
    """Drop all cached midstates (tests; key-hygiene sensitive callers)."""
    _MIDSTATE_CACHE.clear()


def _check_args(iterations: int, length: int) -> None:
    if iterations < 1:
        raise CryptoError(f"iterations must be >= 1, got {iterations}")
    if length <= 0:
        raise CryptoError(f"length must be positive, got {length}")


@profiled("crypto.pbkdf2")
def pbkdf2_hmac_sha256(
    password: bytes, salt: bytes, iterations: int, length: int
) -> bytes:
    """Derive *length* bytes from *password* with *iterations* rounds.

    Midstate fast path: the password's pad blocks are hashed once, then
    every iteration of every block clones the two states instead of
    re-keying — value-identical to the reference construction below
    (property-tested), roughly halving the compressions per round.
    """
    _check_args(iterations, length)
    prf = hmac_sha256_midstate(password)
    # Bind the hot attributes once: the loop below runs `iterations`
    # times per block and every LOAD_ATTR it avoids is measurable at
    # the default round counts.
    inner_copy = prf._inner.copy
    outer_copy = prf._outer.copy
    from_bytes = int.from_bytes
    blocks = []
    block_count = (length + _HASH_LEN - 1) // _HASH_LEN
    for index in range(1, block_count + 1):
        u = prf.digest(salt + struct.pack(">I", index))
        accum = from_bytes(u, "big")
        for __ in range(iterations - 1):
            ih = inner_copy()
            ih.update(u)
            oh = outer_copy()
            oh.update(ih.digest())
            u = oh.digest()
            accum ^= from_bytes(u, "big")
        blocks.append(accum.to_bytes(_HASH_LEN, "big"))
    return b"".join(blocks)[:length]


def pbkdf2_hmac_sha256_reference(
    password: bytes, salt: bytes, iterations: int, length: int
) -> bytes:
    """The pre-PR-5 construction: one ``hmac.new`` per iteration.

    Kept as the equality oracle for the fast path — do not optimise.
    """
    _check_args(iterations, length)
    blocks = []
    block_count = (length + _HASH_LEN - 1) // _HASH_LEN
    for index in range(1, block_count + 1):
        u = hmac.new(password, salt + struct.pack(">I", index), hashlib.sha256).digest()
        accum = int.from_bytes(u, "big")
        for __ in range(iterations - 1):
            u = hmac.new(password, u, hashlib.sha256).digest()
            accum ^= int.from_bytes(u, "big")
        blocks.append(accum.to_bytes(_HASH_LEN, "big"))
    return b"".join(blocks)[:length]
