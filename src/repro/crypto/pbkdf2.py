"""PBKDF2-HMAC-SHA256 (RFC 8018), implemented from the spec.

The Amnesia server stores ``H(MP + salt)`` exactly as Table I shows (see
:func:`repro.crypto.hashing.salted_hash`), but session cookies and the
backup encryption key need *stretched* keys, which is what PBKDF2
provides. The inner loop XOR-accumulates HMAC iterations per the RFC.
"""

from __future__ import annotations

import hashlib
import hmac
import struct

from repro.obs.profiler import profiled
from repro.util.errors import CryptoError

_HASH_LEN = 32


@profiled("crypto.pbkdf2")
def pbkdf2_hmac_sha256(
    password: bytes, salt: bytes, iterations: int, length: int
) -> bytes:
    """Derive *length* bytes from *password* with *iterations* rounds."""
    if iterations < 1:
        raise CryptoError(f"iterations must be >= 1, got {iterations}")
    if length <= 0:
        raise CryptoError(f"length must be positive, got {length}")
    blocks = []
    block_count = (length + _HASH_LEN - 1) // _HASH_LEN
    for index in range(1, block_count + 1):
        u = hmac.new(password, salt + struct.pack(">I", index), hashlib.sha256).digest()
        accum = int.from_bytes(u, "big")
        for _ in range(iterations - 1):
            u = hmac.new(password, u, hashlib.sha256).digest()
            accum ^= int.from_bytes(u, "big")
        blocks.append(accum.to_bytes(_HASH_LEN, "big"))
    return b"".join(blocks)[:length]
