"""ChaCha20-Poly1305 AEAD (RFC 8439 §2.8), pure Python.

This is the record protection used by the TLS-like channel: every
record is encrypted and authenticated (with the record header as
associated data), so the MITM experiments in :mod:`repro.attacks` can
only succeed by obtaining keys, never by splicing ciphertext.
"""

from __future__ import annotations

import struct

from repro.crypto.chacha20 import chacha20_block, chacha20_xor, KEY_SIZE, NONCE_SIZE
from repro.crypto.ct import ct_equal
from repro.crypto.poly1305 import poly1305_mac, TAG_SIZE
from repro.obs.profiler import profiled
from repro.util.errors import CryptoError


def _pad16(data: bytes) -> bytes:
    remainder = len(data) % 16
    return b"" if remainder == 0 else b"\x00" * (16 - remainder)


def _auth_input(aad: bytes, ciphertext: bytes) -> bytes:
    return b"".join(
        (
            aad,
            _pad16(aad),
            ciphertext,
            _pad16(ciphertext),
            struct.pack("<Q", len(aad)),
            struct.pack("<Q", len(ciphertext)),
        )
    )


def _one_time_key(key: bytes, nonce: bytes) -> bytes:
    return chacha20_block(key, 0, nonce)[:32]


@profiled("crypto.aead_seal")
def aead_encrypt(key: bytes, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
    """Encrypt and authenticate; returns ``ciphertext || 16-byte tag``."""
    if len(key) != KEY_SIZE:
        raise CryptoError(f"AEAD key must be {KEY_SIZE} bytes, got {len(key)}")
    if len(nonce) != NONCE_SIZE:
        raise CryptoError(f"AEAD nonce must be {NONCE_SIZE} bytes, got {len(nonce)}")
    ciphertext = chacha20_xor(key, 1, nonce, plaintext)
    tag = poly1305_mac(_one_time_key(key, nonce), _auth_input(aad, ciphertext))
    return ciphertext + tag


@profiled("crypto.aead_open")
def aead_decrypt(key: bytes, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
    """Verify the tag and decrypt; raises :class:`CryptoError` on forgery."""
    if len(key) != KEY_SIZE:
        raise CryptoError(f"AEAD key must be {KEY_SIZE} bytes, got {len(key)}")
    if len(nonce) != NONCE_SIZE:
        raise CryptoError(f"AEAD nonce must be {NONCE_SIZE} bytes, got {len(nonce)}")
    if len(sealed) < TAG_SIZE:
        raise CryptoError("sealed message shorter than the tag")
    ciphertext, tag = sealed[:-TAG_SIZE], sealed[-TAG_SIZE:]
    expected = poly1305_mac(_one_time_key(key, nonce), _auth_input(aad, ciphertext))
    if not ct_equal(tag, expected):
        raise CryptoError("AEAD tag verification failed")
    return chacha20_xor(key, 1, nonce, ciphertext)
