"""Cryptographic toolkit (the reproduction's PyCrypto substitute).

The paper's prototype uses PyCrypto on the server and ``java.security``
on the phone for hashing, and HTTPS for channel protection. We rebuild
the needed primitives from scratch so the whole stack is self-contained:

- SHA-256 / SHA-512 digest helpers and salted hashing
  (:mod:`repro.crypto.hashing`) — these implement the paper's
  ``H(...)`` everywhere it appears.
- ChaCha20 stream cipher, Poly1305 one-time MAC and the combined
  ChaCha20-Poly1305 AEAD (RFC 8439) for the TLS-like secure channel.
- HKDF and PBKDF2 key derivation.
- X25519 Diffie-Hellman (RFC 7748) for the channel handshake.
- Constant-time comparison and a pluggable randomness source so tests
  and simulations are deterministic.
"""

from repro.crypto.hashing import (
    sha256,
    sha512,
    sha256_hex,
    sha512_hex,
    salted_hash,
    verify_salted_hash,
)
from repro.crypto.ct import ct_equal
from repro.crypto.chacha20 import chacha20_block, chacha20_xor
from repro.crypto.poly1305 import poly1305_mac
from repro.crypto.aead import aead_encrypt, aead_decrypt
from repro.crypto.hkdf import hkdf_extract, hkdf_expand, hkdf
from repro.crypto.pbkdf2 import pbkdf2_hmac_sha256
from repro.crypto.x25519 import (
    x25519,
    x25519_base,
    generate_keypair,
    X25519_KEY_SIZE,
)
from repro.crypto.randomness import RandomSource, SystemRandomSource, SeededRandomSource
from repro.crypto.sha2 import sha256_pure, sha512_pure

__all__ = [
    "sha256",
    "sha512",
    "sha256_hex",
    "sha512_hex",
    "salted_hash",
    "verify_salted_hash",
    "ct_equal",
    "chacha20_block",
    "chacha20_xor",
    "poly1305_mac",
    "aead_encrypt",
    "aead_decrypt",
    "hkdf_extract",
    "hkdf_expand",
    "hkdf",
    "pbkdf2_hmac_sha256",
    "x25519",
    "x25519_base",
    "generate_keypair",
    "X25519_KEY_SIZE",
    "RandomSource",
    "SystemRandomSource",
    "SeededRandomSource",
    "sha256_pure",
    "sha512_pure",
]
