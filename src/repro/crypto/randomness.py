"""Pluggable randomness sources.

Production code paths draw from the OS CSPRNG; the simulator and the
test suite inject a seeded source so that entire end-to-end runs —
including every generated ``O_id``, ``P_id``, seed ``σ`` and entry
table — are reproducible from a single root seed.
"""

from __future__ import annotations

import hashlib
import secrets

from repro.util.errors import ValidationError


class RandomSource:
    """Interface: a source of cryptographic-quality random bytes."""

    def token_bytes(self, size: int) -> bytes:
        raise NotImplementedError

    def token_hex(self, size: int) -> str:
        """*size* random bytes, hex-encoded (2 * size characters)."""
        return self.token_bytes(size).hex()

    def randbelow(self, upper: int) -> int:
        """Uniform integer in ``[0, upper)`` via rejection sampling."""
        if upper <= 0:
            raise ValidationError(f"randbelow needs upper > 0, got {upper}")
        bits = upper.bit_length()
        byte_count = (bits + 7) // 8
        mask = (1 << bits) - 1
        while True:
            candidate = int.from_bytes(self.token_bytes(byte_count), "big") & mask
            if candidate < upper:
                return candidate


class SystemRandomSource(RandomSource):
    """Draws from the operating system CSPRNG (``secrets``)."""

    def token_bytes(self, size: int) -> bytes:
        if size < 0:
            raise ValidationError(f"size must be >= 0, got {size}")
        return secrets.token_bytes(size)


class SeededRandomSource(RandomSource):
    """Deterministic source: SHA-256 in counter mode over a seed.

    Not for production use; exists so simulations and tests are exactly
    reproducible. The stream is still uniform and unpredictable without
    the seed, so protocol-level statistics are representative.
    """

    def __init__(self, seed: bytes | str | int) -> None:
        if isinstance(seed, int):
            material = str(seed).encode("utf-8")
        elif isinstance(seed, str):
            material = seed.encode("utf-8")
        else:
            material = bytes(seed)
        self._key = hashlib.sha256(b"repro-seeded-source|" + material).digest()
        self._counter = 0
        self._buffer = b""

    def token_bytes(self, size: int) -> bytes:
        if size < 0:
            raise ValidationError(f"size must be >= 0, got {size}")
        while len(self._buffer) < size:
            block = hashlib.sha256(
                self._key + self._counter.to_bytes(8, "big")
            ).digest()
            self._counter += 1
            self._buffer += block
        out, self._buffer = self._buffer[:size], self._buffer[size:]
        return out
