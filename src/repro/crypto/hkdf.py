"""HKDF key derivation (RFC 5869) over HMAC-SHA256.

The secure channel derives its record keys from the X25519 shared
secrets with HKDF; the phone's backup encryption key is likewise
derived from ``P_id`` material.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.obs.profiler import profiled
from repro.util.errors import CryptoError

_HASH_LEN = 32


def _hmac_sha256(key: bytes, data: bytes) -> bytes:
    return hmac.new(key, data, hashlib.sha256).digest()


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """Extract a pseudorandom key from input keying material."""
    if not salt:
        salt = b"\x00" * _HASH_LEN
    return _hmac_sha256(salt, ikm)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """Expand *prk* into *length* bytes of output keying material."""
    if length <= 0:
        raise CryptoError(f"HKDF length must be positive, got {length}")
    if length > 255 * _HASH_LEN:
        raise CryptoError(f"HKDF cannot produce {length} bytes (max {255 * _HASH_LEN})")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = _hmac_sha256(prk, previous + info + bytes([counter]))
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


@profiled("crypto.hkdf")
def hkdf(ikm: bytes, salt: bytes, info: bytes, length: int) -> bytes:
    """Extract-then-expand in one call."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)
