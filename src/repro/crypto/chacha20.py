"""ChaCha20 stream cipher (RFC 8439), pure Python.

Used as the record cipher of the TLS-like secure channel in
:mod:`repro.net.tls`. The implementation follows RFC 8439 §2.1–2.4
exactly and is validated against the RFC's test vectors in
``tests/crypto/test_chacha20.py``.
"""

from __future__ import annotations

import struct

from repro.obs.profiler import profiled
from repro.util.errors import CryptoError

KEY_SIZE = 32
NONCE_SIZE = 12
BLOCK_SIZE = 64

_MASK32 = 0xFFFFFFFF
# "expand 32-byte k" as four little-endian words.
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)


def _rotl32(value: int, count: int) -> int:
    return ((value << count) | (value >> (32 - count))) & _MASK32


def _quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


def _initial_state(key: bytes, counter: int, nonce: bytes) -> list[int]:
    if len(key) != KEY_SIZE:
        raise CryptoError(f"ChaCha20 key must be {KEY_SIZE} bytes, got {len(key)}")
    if len(nonce) != NONCE_SIZE:
        raise CryptoError(
            f"ChaCha20 nonce must be {NONCE_SIZE} bytes, got {len(nonce)}"
        )
    if not (0 <= counter <= _MASK32):
        raise CryptoError(f"ChaCha20 counter out of range: {counter}")
    key_words = struct.unpack("<8I", key)
    nonce_words = struct.unpack("<3I", nonce)
    return list(_CONSTANTS) + list(key_words) + [counter] + list(nonce_words)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """Produce one 64-byte keystream block (RFC 8439 §2.3)."""
    initial = _initial_state(key, counter, nonce)
    state = list(initial)
    for _ in range(10):  # 20 rounds = 10 column/diagonal double rounds
        _quarter_round(state, 0, 4, 8, 12)
        _quarter_round(state, 1, 5, 9, 13)
        _quarter_round(state, 2, 6, 10, 14)
        _quarter_round(state, 3, 7, 11, 15)
        _quarter_round(state, 0, 5, 10, 15)
        _quarter_round(state, 1, 6, 11, 12)
        _quarter_round(state, 2, 7, 8, 13)
        _quarter_round(state, 3, 4, 9, 14)
    words = [(s + i) & _MASK32 for s, i in zip(state, initial)]
    return struct.pack("<16I", *words)


@profiled("crypto.chacha20")
def chacha20_xor(key: bytes, counter: int, nonce: bytes, data: bytes) -> bytes:
    """Encrypt or decrypt *data* (XOR with the keystream, RFC 8439 §2.4)."""
    out = bytearray(len(data))
    for block_index in range(0, len(data), BLOCK_SIZE):
        keystream = chacha20_block(key, counter + block_index // BLOCK_SIZE, nonce)
        piece = data[block_index : block_index + BLOCK_SIZE]
        for offset, byte in enumerate(piece):
            out[block_index + offset] = byte ^ keystream[offset]
    return bytes(out)
