"""Constant-time comparison.

Comparing secrets with ``==`` leaks the position of the first mismatch
through timing; every credential check in the library routes through
:func:`ct_equal` instead.
"""

from __future__ import annotations

import hmac

from repro.util.errors import ValidationError


def ct_equal(left: bytes, right: bytes) -> bool:
    """Compare two byte strings in time independent of their contents."""
    if not isinstance(left, (bytes, bytearray)) or not isinstance(
        right, (bytes, bytearray)
    ):
        raise ValidationError("ct_equal expects bytes")
    return hmac.compare_digest(bytes(left), bytes(right))
