"""Poly1305 one-time authenticator (RFC 8439 §2.5), pure Python.

Python's native big integers make the 130-bit field arithmetic direct;
the implementation mirrors the RFC's description and is validated
against its test vector.
"""

from __future__ import annotations

from repro.obs.profiler import profiled
from repro.util.errors import CryptoError

TAG_SIZE = 16
KEY_SIZE = 32

_P = (1 << 130) - 5
_R_CLAMP = 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF


@profiled("crypto.poly1305")
def poly1305_mac(key: bytes, message: bytes) -> bytes:
    """Compute the 16-byte Poly1305 tag of *message* under *key*.

    *key* is the 32-byte one-time key ``r || s``; it must never be
    reused across messages (the AEAD derives a fresh one per nonce).
    """
    if len(key) != KEY_SIZE:
        raise CryptoError(f"Poly1305 key must be {KEY_SIZE} bytes, got {len(key)}")
    r = int.from_bytes(key[:16], "little") & _R_CLAMP
    s = int.from_bytes(key[16:], "little")
    accumulator = 0
    for i in range(0, len(message), 16):
        block = message[i : i + 16]
        n = int.from_bytes(block + b"\x01", "little")
        accumulator = ((accumulator + n) * r) % _P
    accumulator = (accumulator + s) & ((1 << 128) - 1)
    return accumulator.to_bytes(TAG_SIZE, "little")
